"""Group-membership substrate.

"For information sharing, the membership of the group that shares information
must be identified.  It must also be possible to map member identifiers (for
example, URIs) to credentials in the credential management service."
(Section 3.5.)
"""

from repro.membership.service import Member, MembershipEvent, MembershipService, SharingGroup

__all__ = ["Member", "MembershipEvent", "MembershipService", "SharingGroup"]
