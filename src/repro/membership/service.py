"""Membership service for information-sharing groups.

Tracks which organisations currently share each B2BObject, maps member URIs
to their certificates/credentials, and records join/leave (connect and
disconnect, Section 3.3) events so that membership changes are auditable.
The non-repudiable connect/disconnect *protocols* themselves live in
:mod:`repro.core.sharing`; this service is the local bookkeeping they update.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.clock import Clock, SystemClock
from repro.crypto.certificates import Certificate
from repro.errors import MembershipError


@dataclass(frozen=True)
class Member:
    """One member of a sharing group."""

    uri: str
    certificate: Optional[Certificate] = None
    display_name: str = ""

    @property
    def key_id(self) -> Optional[str]:
        if self.certificate is None:
            return None
        return self.certificate.public_key.key_id


@dataclass(frozen=True)
class MembershipEvent:
    """A recorded change to a group's membership."""

    group_id: str
    member_uri: str
    action: str  # "connect" | "disconnect"
    timestamp: float
    sequence: int


@dataclass
class SharingGroup:
    """The set of members currently sharing one piece of information."""

    group_id: str
    members: Dict[str, Member] = field(default_factory=dict)

    def member_uris(self) -> List[str]:
        return sorted(self.members)

    def __contains__(self, uri: str) -> bool:
        return uri in self.members

    def __len__(self) -> int:
        return len(self.members)


class MembershipService:
    """Registry of sharing groups and their membership history."""

    ACTION_CONNECT = "connect"
    ACTION_DISCONNECT = "disconnect"

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        self._groups: Dict[str, SharingGroup] = {}
        self._events: List[MembershipEvent] = []
        self._lock = threading.RLock()

    # -- group lifecycle --------------------------------------------------------

    def create_group(self, group_id: str, founding_members: Optional[List[Member]] = None) -> SharingGroup:
        """Create a new sharing group, optionally with founding members."""
        with self._lock:
            if group_id in self._groups:
                raise MembershipError(f"group {group_id!r} already exists")
            group = SharingGroup(group_id=group_id)
            self._groups[group_id] = group
        for member in founding_members or []:
            self.connect(group_id, member)
        return group

    def group(self, group_id: str) -> SharingGroup:
        with self._lock:
            try:
                return self._groups[group_id]
            except KeyError:
                raise MembershipError(f"unknown group {group_id!r}") from None

    def has_group(self, group_id: str) -> bool:
        with self._lock:
            return group_id in self._groups

    def group_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._groups)

    # -- membership changes ------------------------------------------------------

    def connect(self, group_id: str, member: Member) -> MembershipEvent:
        """Add ``member`` to the group and record the event."""
        with self._lock:
            group = self.group(group_id)
            if member.uri in group.members:
                raise MembershipError(
                    f"{member.uri!r} is already a member of {group_id!r}"
                )
            group.members[member.uri] = member
            event = MembershipEvent(
                group_id=group_id,
                member_uri=member.uri,
                action=self.ACTION_CONNECT,
                timestamp=self._clock.now(),
                sequence=len(self._events),
            )
            self._events.append(event)
            return event

    def disconnect(self, group_id: str, member_uri: str) -> MembershipEvent:
        """Remove a member from the group and record the event."""
        with self._lock:
            group = self.group(group_id)
            if member_uri not in group.members:
                raise MembershipError(
                    f"{member_uri!r} is not a member of {group_id!r}"
                )
            del group.members[member_uri]
            event = MembershipEvent(
                group_id=group_id,
                member_uri=member_uri,
                action=self.ACTION_DISCONNECT,
                timestamp=self._clock.now(),
                sequence=len(self._events),
            )
            self._events.append(event)
            return event

    # -- queries -------------------------------------------------------------------

    def members(self, group_id: str) -> List[Member]:
        group = self.group(group_id)
        with self._lock:
            return [group.members[uri] for uri in sorted(group.members)]

    def member_uris(self, group_id: str) -> List[str]:
        return self.group(group_id).member_uris()

    def is_member(self, group_id: str, member_uri: str) -> bool:
        with self._lock:
            group = self._groups.get(group_id)
            return bool(group and member_uri in group.members)

    def certificate_for(self, group_id: str, member_uri: str) -> Optional[Certificate]:
        """Map a member URI to its certificate (Section 3.5 requirement)."""
        group = self.group(group_id)
        member = group.members.get(member_uri)
        if member is None:
            raise MembershipError(f"{member_uri!r} is not a member of {group_id!r}")
        return member.certificate

    def events(self, group_id: Optional[str] = None) -> List[MembershipEvent]:
        """Return membership events, optionally filtered by group."""
        with self._lock:
            if group_id is None:
                return list(self._events)
            return [event for event in self._events if event.group_id == group_id]

    def peers_of(self, group_id: str, member_uri: str) -> Set[str]:
        """Return the URIs of every member except ``member_uri``."""
        return {uri for uri in self.member_uris(group_id) if uri != member_uri}
