"""Dispute resolution over stored non-repudiation evidence.

"Audit ensures that evidence is available in case of dispute and to inform
future interactions" (Section 2); "to support dispute resolution, the fact
that trusted interceptors mediated the interaction provides any honest party
with irrefutable evidence of their own actions within the domain and of the
observed actions of other parties" (Section 3.1).

The :class:`DisputeResolver` is an adjudicator: given a claim (a party denies
having performed some action) and the evidence presented by the other party,
it verifies the evidence cryptographically and returns a :class:`Verdict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.core.evidence import EvidenceToken, EvidenceVerifier, TokenType, payload_digest
from repro.errors import DisputeError, EvidenceVerificationError
from repro.persistence.evidence_store import EvidenceStore


class ClaimType(Enum):
    """The denials the resolver can adjudicate."""

    #: "I (the client) never submitted that request."
    DENIES_REQUEST_ORIGIN = "denies-request-origin"
    #: "I (the server) never received that request."
    DENIES_REQUEST_RECEIPT = "denies-request-receipt"
    #: "I (the server) never produced that response."
    DENIES_RESPONSE_ORIGIN = "denies-response-origin"
    #: "I (the client) never received that response."
    DENIES_RESPONSE_RECEIPT = "denies-response-receipt"
    #: "I never proposed that update to the shared information."
    DENIES_UPDATE_ORIGIN = "denies-update-origin"
    #: "I never agreed to that update."
    DENIES_UPDATE_DECISION = "denies-update-decision"
    #: "That state was never an agreed state of the shared information."
    DENIES_AGREED_STATE = "denies-agreed-state"


#: Which token type refutes which denial, and who must have issued it.
_REFUTING_TOKEN: Dict[ClaimType, TokenType] = {
    ClaimType.DENIES_REQUEST_ORIGIN: TokenType.NRO_REQUEST,
    ClaimType.DENIES_REQUEST_RECEIPT: TokenType.NRR_REQUEST,
    ClaimType.DENIES_RESPONSE_ORIGIN: TokenType.NRO_RESPONSE,
    ClaimType.DENIES_RESPONSE_RECEIPT: TokenType.NRR_RESPONSE,
    ClaimType.DENIES_UPDATE_ORIGIN: TokenType.NRO_UPDATE,
    ClaimType.DENIES_UPDATE_DECISION: TokenType.NR_DECISION,
}


@dataclass(frozen=True)
class DisputeClaim:
    """A denial raised by ``denying_party`` about protocol run ``run_id``."""

    claim_type: ClaimType
    run_id: str
    denying_party: str
    object_id: Optional[str] = None
    disputed_payload: Any = None


@dataclass
class Verdict:
    """Outcome of adjudicating a claim."""

    claim: DisputeClaim
    upheld: bool                 # True = the denial stands (claimant wins)
    refuted: bool                # True = evidence refutes the denial
    reasoning: str = ""
    supporting_evidence: List[EvidenceToken] = field(default_factory=list)

    @property
    def decided_against_denier(self) -> bool:
        return self.refuted


class DisputeResolver:
    """Adjudicates claims by verifying the evidence presented against them."""

    def __init__(self, verifier: EvidenceVerifier) -> None:
        self._verifier = verifier

    # -- core adjudication ---------------------------------------------------------

    def adjudicate(
        self, claim: DisputeClaim, presented_evidence: List[EvidenceToken]
    ) -> Verdict:
        """Decide ``claim`` given the evidence presented by the counterparty.

        The denial is refuted if the counterparty presents a verifiable token
        of the refuting type, signed by the denying party, bound to the
        disputed run (and, when supplied, to the disputed payload).
        """
        if claim.claim_type is ClaimType.DENIES_AGREED_STATE:
            return self._adjudicate_agreed_state(claim, presented_evidence)
        refuting_type = _REFUTING_TOKEN.get(claim.claim_type)
        if refuting_type is None:
            raise DisputeError(f"cannot adjudicate claim type {claim.claim_type!r}")
        candidates = [
            token
            for token in presented_evidence
            if token.token_type == refuting_type.value
            and token.issuer == claim.denying_party
        ]
        verdicts = self._verifier.verify_all(
            (
                token,
                {
                    "expected_type": refuting_type,
                    "expected_run_id": claim.run_id,
                    "expected_issuer": claim.denying_party,
                    "expected_payload": claim.disputed_payload,
                },
            )
            for token in candidates
        )
        for token, error in zip(candidates, verdicts):
            if error is not None:
                continue
            return Verdict(
                claim=claim,
                upheld=False,
                refuted=True,
                reasoning=(
                    f"token {token.token_id} of type {token.token_type} signed by "
                    f"{token.issuer} for run {token.run_id} verifies; the denial is refuted"
                ),
                supporting_evidence=[token],
            )
        return Verdict(
            claim=claim,
            upheld=True,
            refuted=False,
            reasoning=(
                "no verifiable evidence signed by the denying party was presented; "
                "the denial stands"
            ),
        )

    def _adjudicate_agreed_state(
        self, claim: DisputeClaim, presented_evidence: List[EvidenceToken]
    ) -> Verdict:
        """Adjudicate "that state was never agreed".

        Refuted when an ``NR_OUTCOME`` token (agreement outcome) and at least
        one ``NR_DECISION`` token from the denying party verify for the run.
        """
        outcome_tokens = [
            token
            for token in presented_evidence
            if token.token_type == TokenType.NR_OUTCOME.value
        ]
        decision_tokens = [
            token
            for token in presented_evidence
            if token.token_type == TokenType.NR_DECISION.value
            and token.issuer == claim.denying_party
        ]
        # Both candidate sets are verified together in one parallel batch;
        # the first verifiable token of each kind (in presentation order)
        # supports the verdict, exactly as the sequential scan did.
        checks = [
            (token, {"expected_run_id": claim.run_id}) for token in outcome_tokens
        ] + [
            (
                token,
                {
                    "expected_run_id": claim.run_id,
                    "expected_issuer": claim.denying_party,
                },
            )
            for token in decision_tokens
        ]
        verdicts = self._verifier.verify_all(checks)
        outcome_verdicts = verdicts[: len(outcome_tokens)]
        decision_verdicts = verdicts[len(outcome_tokens):]
        verified_outcome = next(
            (
                token
                for token, error in zip(outcome_tokens, outcome_verdicts)
                if error is None
            ),
            None,
        )
        verified_decision = next(
            (
                token
                for token, error in zip(decision_tokens, decision_verdicts)
                if error is None
            ),
            None,
        )
        if verified_outcome is not None and verified_decision is not None:
            return Verdict(
                claim=claim,
                upheld=False,
                refuted=True,
                reasoning=(
                    "a verifiable agreement outcome and the denying party's own signed "
                    "decision were presented; the state was agreed"
                ),
                supporting_evidence=[verified_outcome, verified_decision],
            )
        return Verdict(
            claim=claim,
            upheld=True,
            refuted=False,
            reasoning="agreement evidence incomplete or unverifiable; the denial stands",
        )

    # -- convenience over evidence stores -----------------------------------------------

    def adjudicate_from_store(
        self, claim: DisputeClaim, store: EvidenceStore
    ) -> Verdict:
        """Adjudicate using every token the counterparty holds for the run."""
        tokens = [
            EvidenceToken.from_dict(record.token)
            for record in store.evidence_for_run(claim.run_id)
        ]
        return self.adjudicate(claim, tokens)

    def verify_state_lineage(
        self,
        store: EvidenceStore,
        object_id: str,
        state: Any,
    ) -> bool:
        """Check that ``state`` matches some agreed outcome recorded for ``object_id``.

        Walks every ``NR_OUTCOME`` token in the store and compares the digest
        of the presented state with the proposal digests the outcomes commit
        to.  Used to refute "that reconstruction of the shared information is
        not a state we ever agreed" (Section 3.4).
        """
        target_digest = payload_digest(state).hex()
        for run_id in store.run_ids():
            for record in store.tokens_of_type(run_id, TokenType.NR_OUTCOME.value):
                token = EvidenceToken.from_dict(record.token)
                try:
                    self._verifier.require_valid(token, expected_run_id=run_id)
                except EvidenceVerificationError:
                    continue
                details = record.token.get("details", {})
                if details.get("agreed_state_digest") == target_digest:
                    return True
        return False
