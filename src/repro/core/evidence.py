"""Non-repudiation evidence tokens.

"Non-repudiation tokens include a unique request identifier, to distinguish
between protocol runs and to bind protocol steps to a run, and a signature on
a secure hash of the evidence generated." (Section 3.2.)

An :class:`EvidenceToken` binds (token type, protocol run, step, issuer,
recipient, payload digest, timestamp) under the issuer's signature.  The
:class:`EvidenceBuilder` generates and signs tokens on behalf of one party's
trusted interceptor; the :class:`EvidenceVerifier` checks tokens received
from other parties against their certificates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import codec, parallel
from repro.observability.runtime import STATE as _OBS
from repro.clock import Clock, SystemClock
from repro.crypto.certificates import CertificateStore
from repro.crypto.hashing import secure_hash
from repro.crypto.keys import PublicKey
from repro.crypto.rng import new_unique_id
from repro.crypto.signature import Signature, Signer, get_scheme
from repro.crypto.timestamp import TimestampAuthority, TimestampToken, verify_timestamp
from repro.errors import EvidenceError, EvidenceVerificationError


class TokenType(Enum):
    """The kinds of evidence exchanged by the protocols.

    The invocation tokens follow Section 3.2; the sharing tokens follow the
    state-coordination requirements of Section 3.3; the TTP tokens support
    the inline-TTP and fair-exchange deployments.
    """

    NRO_REQUEST = "nro-request"            # non-repudiation of origin of request
    NRR_REQUEST = "nrr-request"            # non-repudiation of receipt of request
    NRO_RESPONSE = "nro-response"          # non-repudiation of origin of response
    NRR_RESPONSE = "nrr-response"          # non-repudiation of receipt of response
    NRO_UPDATE = "nro-update"              # origin of a proposed update to shared info
    NR_DECISION = "nr-decision"            # a member's validation decision on an update
    NR_OUTCOME = "nr-outcome"              # the collective decision on an update
    NR_MEMBERSHIP = "nr-membership"        # agreement to a membership change
    TTP_RELAY = "ttp-relay"                # TTP's record of having relayed a message
    TTP_AFFIDAVIT = "ttp-affidavit"        # TTP-generated substitute evidence (resolve)
    TTP_ABORT = "ttp-abort"                # TTP-signed abort of a protocol run


@dataclass(frozen=True)
class EvidenceToken:
    """A signed, self-contained piece of non-repudiation evidence."""

    token_id: str
    token_type: str
    run_id: str
    step: int
    issuer: str
    recipient: str
    payload_digest: bytes
    issued_at: float
    details: Mapping[str, Any] = field(default_factory=dict)
    signature: Optional[Signature] = None
    timestamp_token: Optional[TimestampToken] = None

    # Tokens are frozen, so every canonical representation is computed once
    # and memoised on the instance (plain attribute caching in __dict__,
    # which bypasses the frozen-dataclass setattr guard).

    def _details_jsonable(self) -> Any:
        cached = self.__dict__.get("_details_json")
        if cached is None:
            cached = codec.to_jsonable(dict(self.details))
            self.__dict__["_details_json"] = cached
        return cached

    def body_bytes(self) -> bytes:
        """Canonical byte encoding of the signed portion of the token."""
        cached = self.__dict__.get("_body_bytes")
        if cached is None:
            body = {
                "token_id": self.token_id,
                "token_type": self.token_type,
                "run_id": self.run_id,
                "step": self.step,
                "issuer": self.issuer,
                "recipient": self.recipient,
                "payload_digest": self.payload_digest.hex(),
                "issued_at": self.issued_at,
                "details": self._details_jsonable(),
            }
            cached = json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
            self.__dict__["_body_bytes"] = cached
        return cached

    def _build_dict(self) -> Dict[str, Any]:
        """Dictionary form sharing the instance caches; internal use only."""
        payload: Dict[str, Any] = {
            "token_id": self.token_id,
            "token_type": self.token_type,
            "run_id": self.run_id,
            "step": self.step,
            "issuer": self.issuer,
            "recipient": self.recipient,
            "payload_digest": self.payload_digest.hex(),
            "issued_at": self.issued_at,
            # Raw, not _details_jsonable(): the canonical writer converts
            # exactly once, so a second pass would escape the already-built
            # tags (e.g. {"__bytes__": ...}) and break from_dict revival.
            "details": dict(self.details),
        }
        if self.signature is not None:
            payload["signature"] = self.signature.to_dict()
        if self.timestamp_token is not None:
            payload["timestamp_token"] = self.timestamp_token.to_dict()
        return payload

    def to_dict(self) -> Dict[str, Any]:
        # Parsed fresh from the cached canonical text: C-speed, and callers
        # may freely mutate the result without corrupting the caches that
        # back body_bytes()/data_encoded().
        return self.data_encoded().jsonable()

    def data_encoded(self) -> codec.Encoded:
        """Canonical encoding of :meth:`to_dict`, computed once per token."""
        encoded = self.__dict__.get("_data_encoded")
        if encoded is None:
            encoded = codec.Encoded(codec.encode_text(self._build_dict()))
            self.__dict__["_data_encoded"] = encoded
        return encoded

    def canonical_encoded(self) -> codec.Encoded:
        """Canonical object-tagged encoding, spliced into enclosing messages."""
        encoded = self.__dict__.get("_canonical_encoded")
        if encoded is None:
            encoded = codec.Encoded(
                '{"__object__":"%s","data":%s}'
                % (type(self).__name__, self.data_encoded().text)
            )
            self.__dict__["_canonical_encoded"] = encoded
        return encoded

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], revived: bool = False
    ) -> "EvidenceToken":
        """Rebuild a token from its dictionary form.

        ``revived=True`` marks input whose nested values already went
        through :func:`codec.from_jsonable` (wire frames are revived
        bottom-up), skipping the redundant second walk over ``details``.
        """
        signature = payload.get("signature")
        timestamp_token = payload.get("timestamp_token")
        details = payload.get("details", {})
        return cls(
            token_id=payload["token_id"],
            token_type=payload["token_type"],
            run_id=payload["run_id"],
            step=payload["step"],
            issuer=payload["issuer"],
            recipient=payload["recipient"],
            payload_digest=bytes.fromhex(payload["payload_digest"]),
            issued_at=payload["issued_at"],
            details=details if revived else codec.from_jsonable(details),
            signature=Signature.from_dict(signature) if signature else None,
            timestamp_token=(
                TimestampToken.from_dict(timestamp_token) if timestamp_token else None
            ),
        )


def payload_digest(payload: Any) -> bytes:
    """Digest of the agreed (canonical) representation of ``payload``.

    This is the "meaningful snapshot" requirement of Section 3.4: value types
    are resolved to their canonical encoded state before hashing.  Payloads
    that were already canonicalised (:class:`repro.codec.Encoded`) reuse
    their cached digest without re-encoding.
    """
    if isinstance(payload, codec.Encoded):
        return payload.digest
    return secure_hash(codec.encode(payload))


class EvidenceBuilder:
    """Generates signed evidence tokens on behalf of one party."""

    def __init__(
        self,
        party: str,
        signer: Signer,
        clock: Optional[Clock] = None,
        timestamp_authority: Optional[TimestampAuthority] = None,
    ) -> None:
        self.party = party
        self._signer = signer
        self._clock = clock or SystemClock()
        self._tsa = timestamp_authority

    @property
    def key_id(self) -> str:
        return self._signer.key_id

    def build(
        self,
        token_type: TokenType,
        run_id: str,
        step: int,
        recipient: str,
        payload: Any,
        details: Optional[Mapping[str, Any]] = None,
    ) -> EvidenceToken:
        """Create and sign a token over ``payload`` (hashed canonically)."""
        if not run_id:
            raise EvidenceError("evidence token requires a run id")
        digest = payload if isinstance(payload, bytes) else payload_digest(payload)
        unsigned = EvidenceToken(
            token_id=new_unique_id("tok"),
            token_type=token_type.value,
            run_id=run_id,
            step=step,
            issuer=self.party,
            recipient=recipient,
            payload_digest=digest,
            issued_at=self._clock.now(),
            details=dict(details or {}),
        )
        body = unsigned.body_bytes()
        signature = self._signer.sign(body)
        timestamp_token = None
        if self._tsa is not None:
            timestamp_token = self._tsa.issue(digest)
        signed = EvidenceToken(
            token_id=unsigned.token_id,
            token_type=unsigned.token_type,
            run_id=unsigned.run_id,
            step=unsigned.step,
            issuer=unsigned.issuer,
            recipient=unsigned.recipient,
            payload_digest=unsigned.payload_digest,
            issued_at=unsigned.issued_at,
            details=unsigned.details,
            signature=signature,
            timestamp_token=timestamp_token,
        )
        # The signature covers only the body, which is identical for the
        # signed copy -- seed its cache instead of re-encoding.
        signed.__dict__["_body_bytes"] = body
        return signed


class EvidenceVerifier:
    """Verifies tokens received from other parties.

    Public keys are resolved through the certificate store (the credential
    management service of Section 3.5) or through explicitly pinned keys --
    the latter is how tests model out-of-band key agreement.
    """

    def __init__(
        self,
        certificate_store: Optional[CertificateStore] = None,
        pinned_keys: Optional[Mapping[str, PublicKey]] = None,
        tsa_key: Optional[PublicKey] = None,
    ) -> None:
        self._certificates = certificate_store
        self._pinned: Dict[str, PublicKey] = dict(pinned_keys or {})
        self._tsa_key = tsa_key

    def pin_key(self, party: str, key: PublicKey) -> None:
        """Associate ``party`` with ``key`` without going through certificates."""
        self._pinned[party] = key

    def key_for(self, party: str) -> Optional[PublicKey]:
        """Resolve the verification key for ``party``."""
        if party in self._pinned:
            return self._pinned[party]
        if self._certificates is not None:
            return self._certificates.public_key_for_subject(party)
        return None

    def verify(
        self,
        token: EvidenceToken,
        expected_type: Optional[TokenType] = None,
        expected_run_id: Optional[str] = None,
        expected_payload: Any = None,
        expected_issuer: Optional[str] = None,
    ) -> bool:
        """Verify a token's signature and, optionally, its binding fields."""
        try:
            self.require_valid(
                token,
                expected_type=expected_type,
                expected_run_id=expected_run_id,
                expected_payload=expected_payload,
                expected_issuer=expected_issuer,
            )
            return True
        except EvidenceVerificationError:
            return False

    def require_valid(
        self,
        token: EvidenceToken,
        expected_type: Optional[TokenType] = None,
        expected_run_id: Optional[str] = None,
        expected_payload: Any = None,
        expected_issuer: Optional[str] = None,
    ) -> None:
        """Raise :class:`EvidenceVerificationError` when verification fails."""
        if token.signature is None:
            raise EvidenceVerificationError("token carries no signature")
        if expected_type is not None and token.token_type != expected_type.value:
            raise EvidenceVerificationError(
                f"expected token type {expected_type.value!r}, got {token.token_type!r}"
            )
        if expected_run_id is not None and token.run_id != expected_run_id:
            raise EvidenceVerificationError(
                f"token belongs to run {token.run_id!r}, expected {expected_run_id!r}"
            )
        if expected_issuer is not None and token.issuer != expected_issuer:
            raise EvidenceVerificationError(
                f"token issued by {token.issuer!r}, expected {expected_issuer!r}"
            )
        if expected_payload is not None:
            digest = (
                expected_payload
                if isinstance(expected_payload, bytes)
                else payload_digest(expected_payload)
            )
            if digest != token.payload_digest:
                raise EvidenceVerificationError(
                    "token payload digest does not match the presented payload"
                )
        key = self.key_for(token.issuer)
        if key is None:
            raise EvidenceVerificationError(
                f"no verification key known for issuer {token.issuer!r}"
            )
        scheme = get_scheme(key.scheme)
        observe = _OBS.observe_verify
        if observe is None:
            valid = scheme.verify(key, token.body_bytes(), token.signature)
        else:
            started = perf_counter()
            valid = scheme.verify(key, token.body_bytes(), token.signature)
            observe(perf_counter() - started)
        if not valid:
            raise EvidenceVerificationError(
                f"signature verification failed for token {token.token_id!r} "
                f"issued by {token.issuer!r}"
            )
        if token.timestamp_token is not None and self._tsa_key is not None:
            if not verify_timestamp(token.timestamp_token, self._tsa_key):
                raise EvidenceVerificationError(
                    f"timestamp on token {token.token_id!r} failed verification"
                )

    def verify_all(
        self,
        checks: Iterable[Tuple[EvidenceToken, Mapping[str, Any]]],
        parallel_verification: bool = True,
    ) -> List[Optional[EvidenceVerificationError]]:
        """Verify a set of tokens together, one :meth:`require_valid` per entry.

        ``checks`` yields ``(token, expectations)`` pairs where
        ``expectations`` holds :meth:`require_valid` keyword arguments
        (``expected_type``, ``expected_run_id``, ...).  Returns one entry per
        check, in order: ``None`` on success, the verification error
        otherwise -- an invalid token never masks the other verdicts.

        Verification is read-only and each check is independent, so the
        checks run concurrently on the shared worker pool (the modular
        exponentiations release the GIL); dispute resolution over a full
        evidence set and outcome handling over forwarded decision tokens pay
        one slowest-verification latency instead of the sum.
        """
        checks = list(checks)

        def make_thunk(
            token: EvidenceToken, expectations: Mapping[str, Any]
        ):
            def thunk() -> None:
                self.require_valid(token, **dict(expectations))

            return thunk

        outcomes = parallel.run_all(
            [make_thunk(token, expectations) for token, expectations in checks],
            parallel=parallel_verification,
        )
        verdicts: List[Optional[EvidenceVerificationError]] = []
        for _, error in outcomes:
            if error is None or isinstance(error, EvidenceVerificationError):
                verdicts.append(error)
            else:  # infrastructure failure: never misread as "token invalid"
                raise error
        return verdicts
