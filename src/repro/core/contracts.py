"""Contract representation and run-time monitoring.

Section 6 (future work): "We intend to integrate the underlying mechanisms
presented here with work on run-time monitoring of contracts.  Contracts are
represented as executable finite state machines ... We will, for example, use
implementations of the verified state machines to validate changes to shared
information for contract compliance."

This module provides that integration:

* :class:`ContractFSM` -- an executable finite-state machine representing the
  business contract (states, event-labelled transitions, optional guards);
* :class:`ContractMonitor` -- tracks the live state of the contract, records
  every observed event and flags violations;
* :class:`ContractValidator` -- a :class:`~repro.core.validators.StateValidator`
  that accepts a proposed update to shared information only when the update
  corresponds to a legal contract transition (the event is derived from the
  proposal by an application-supplied extractor).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.validators import StateValidator, ValidationContext, ValidationDecision
from repro.errors import ContractError, ContractViolationError

#: Optional guard evaluated with the event's attributes.
TransitionGuard = Callable[[Dict[str, Any]], bool]


@dataclass(frozen=True)
class ContractTransition:
    """A legal transition of the contract FSM."""

    source: str
    event: str
    target: str
    guard: Optional[TransitionGuard] = None
    description: str = ""

    def permits(self, attributes: Dict[str, Any]) -> bool:
        if self.guard is None:
            return True
        return bool(self.guard(attributes))


class ContractFSM:
    """An executable finite-state-machine representation of a contract."""

    def __init__(
        self,
        name: str,
        initial_state: str,
        final_states: Optional[Set[str]] = None,
    ) -> None:
        self.name = name
        self.initial_state = initial_state
        self.final_states: Set[str] = set(final_states or set())
        self._states: Set[str] = {initial_state} | self.final_states
        self._transitions: List[ContractTransition] = []

    def add_state(self, state: str, final: bool = False) -> None:
        self._states.add(state)
        if final:
            self.final_states.add(state)

    def add_transition(
        self,
        source: str,
        event: str,
        target: str,
        guard: Optional[TransitionGuard] = None,
        description: str = "",
    ) -> ContractTransition:
        """Declare that ``event`` may move the contract from ``source`` to ``target``."""
        self._states.add(source)
        self._states.add(target)
        transition = ContractTransition(source, event, target, guard, description)
        self._transitions.append(transition)
        return transition

    @property
    def states(self) -> Set[str]:
        return set(self._states)

    @property
    def transitions(self) -> List[ContractTransition]:
        return list(self._transitions)

    def transitions_from(self, state: str) -> List[ContractTransition]:
        return [t for t in self._transitions if t.source == state]

    def next_state(
        self, current: str, event: str, attributes: Optional[Dict[str, Any]] = None
    ) -> Optional[str]:
        """Return the target state for ``event`` in ``current``, or ``None``."""
        attributes = attributes or {}
        for transition in self._transitions:
            if transition.source == current and transition.event == event:
                if transition.permits(attributes):
                    return transition.target
        return None

    def is_event_legal(
        self, current: str, event: str, attributes: Optional[Dict[str, Any]] = None
    ) -> bool:
        return self.next_state(current, event, attributes) is not None

    # -- model checking (reachability analysis) ------------------------------------------

    def unreachable_states(self) -> Set[str]:
        """States that cannot be reached from the initial state."""
        reachable = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            for transition in self.transitions_from(state):
                if transition.target not in reachable:
                    reachable.add(transition.target)
                    frontier.append(transition.target)
        return self._states - reachable

    def deadlock_states(self) -> Set[str]:
        """Non-final states with no outgoing transitions."""
        return {
            state
            for state in self._states
            if state not in self.final_states and not self.transitions_from(state)
        }

    def verify(self) -> None:
        """Raise :class:`ContractError` if the FSM has unreachable or deadlock states."""
        unreachable = self.unreachable_states()
        if unreachable:
            raise ContractError(
                f"contract {self.name!r} has unreachable states: {sorted(unreachable)}"
            )
        deadlocks = self.deadlock_states()
        if deadlocks:
            raise ContractError(
                f"contract {self.name!r} has deadlock states: {sorted(deadlocks)}"
            )


@dataclass
class ContractEventRecord:
    """One observed event and its effect on the monitored contract."""

    event: str
    actor: str
    legal: bool
    from_state: str
    to_state: Optional[str]
    attributes: Dict[str, Any] = field(default_factory=dict)


class ContractMonitor:
    """Tracks the live state of a contract and records observed events."""

    def __init__(self, fsm: ContractFSM, strict: bool = False) -> None:
        self.fsm = fsm
        self.strict = strict
        self._state = fsm.initial_state
        self._history: List[ContractEventRecord] = []
        self._lock = threading.RLock()

    @property
    def current_state(self) -> str:
        with self._lock:
            return self._state

    @property
    def history(self) -> List[ContractEventRecord]:
        with self._lock:
            return list(self._history)

    @property
    def violations(self) -> List[ContractEventRecord]:
        return [record for record in self.history if not record.legal]

    def is_complete(self) -> bool:
        """Return ``True`` once the contract has reached a final state."""
        return self.current_state in self.fsm.final_states

    def observe(
        self, event: str, actor: str = "", attributes: Optional[Dict[str, Any]] = None
    ) -> ContractEventRecord:
        """Record an observed event, advancing the state when it is legal.

        In strict mode an illegal event raises
        :class:`ContractViolationError`; otherwise it is recorded as a
        violation and the state does not change.
        """
        attributes = attributes or {}
        with self._lock:
            target = self.fsm.next_state(self._state, event, attributes)
            record = ContractEventRecord(
                event=event,
                actor=actor,
                legal=target is not None,
                from_state=self._state,
                to_state=target,
                attributes=dict(attributes),
            )
            self._history.append(record)
            if target is not None:
                self._state = target
        if self.strict and not record.legal:
            raise ContractViolationError(
                f"event {event!r} by {actor!r} is illegal in state "
                f"{record.from_state!r} of contract {self.fsm.name!r}"
            )
        return record


#: Derives (event, attributes) from a proposed update.
EventExtractor = Callable[[ValidationContext], Optional[str]]


class ContractValidator(StateValidator):
    """Validation listener accepting only contract-compliant updates.

    ``extractor`` maps a proposed update to the contract event it represents
    (returning ``None`` means "no contract event; accept").  When the update
    is accepted the monitor advances, so subsequent proposals are judged
    against the new contract state.
    """

    name = "contract-validator"

    def __init__(self, monitor: ContractMonitor, extractor: EventExtractor) -> None:
        self._monitor = monitor
        self._extractor = extractor

    @property
    def monitor(self) -> ContractMonitor:
        return self._monitor

    def validate(self, context: ValidationContext) -> ValidationDecision:
        event = self._extractor(context)
        if event is None:
            return ValidationDecision(accepted=True, validator=self.name)
        legal = self._monitor.fsm.is_event_legal(self._monitor.current_state, event)
        if not legal:
            self._monitor.observe(event, actor=context.proposer)
            return ValidationDecision(
                accepted=False,
                reason=(
                    f"event {event!r} is not permitted by contract "
                    f"{self._monitor.fsm.name!r} in state {self._monitor.current_state!r}"
                ),
                validator=self.name,
            )
        self._monitor.observe(event, actor=context.proposer)
        return ValidationDecision(accepted=True, validator=self.name)
