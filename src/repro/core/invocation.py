"""Non-repudiable service invocation (NR-Invocation).

Implements the exchange of Section 3.2 (Figure 4(b)), in its simplified
three-message form:

* step 1 -- client interceptor -> server interceptor: ``req, NRO_req``
* step 2 -- server interceptor -> client interceptor: ``resp, NRR_req, NRO_resp``
* step 3 -- client interceptor -> server interceptor: ``NRR_resp``

The client side is driven by a :class:`B2BInvocationHandler` (Section 4.2),
obtained through the :func:`B2BInvocationHandler.get_instance` factory for a
(platform, protocol) pair, exactly as the JBoss NR interceptor does.  The
server side is a :class:`ServerInvocationHandler` protocol handler registered
with the organisation's coordinator; at the appropriate point of the protocol
it passes the client's request through the server-side interceptor chain to
the target component and uses the result to complete the protocol.

At-most-once semantics: the server handler caches the response message per
protocol run, so a retransmitted request is answered from the cache without
re-executing the operation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import codec
from repro.container.interceptor import Invocation, InvocationResult
from repro.core.coordinator import B2BCoordinator
from repro.core.evidence import EvidenceToken, TokenType
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import B2BProtocolHandler, ProtocolRun, RunStatus
from repro.crypto.rng import new_unique_id
from repro.errors import (
    EvidenceVerificationError,
    ProtocolAbortedError,
    ProtocolError,
    RemoteInvocationError,
)

#: Protocol name used for coordinator handler registration.
NR_INVOCATION_PROTOCOL = "nr-invocation"

#: Audit categories.
AUDIT_CATEGORY_CLIENT = "nr.invocation.client"
AUDIT_CATEGORY_SERVER = "nr.invocation.server"


class InvocationStatus(Enum):
    """Outcome classification carried in the response payload."""

    EXECUTED = "executed"            # the operation ran; value/exception follow
    REJECTED = "rejected"            # request received but not executed
    ABORTED = "aborted"              # client aborted before a result was produced


@dataclass
class B2BInvocation:
    """Generic wrapper for a platform-specific invocation (Section 4.2).

    ``target_party`` identifies the organisation whose service is invoked;
    ``invocation`` is the container-level invocation to execute there.
    """

    target_party: str
    invocation: Invocation
    platform: str = "python"
    protocol: str = "direct"
    consume_response: bool = True

    def request_payload(self) -> Dict[str, Any]:
        """The agreed representation of the request (Section 3.4)."""
        return {
            "target_party": self.target_party,
            "component": self.invocation.component,
            "method": self.invocation.method,
            "args": list(self.invocation.args),
            "kwargs": dict(self.invocation.kwargs),
            "caller": self.invocation.caller,
        }


@dataclass
class InvocationOutcome:
    """Result of a non-repudiable invocation, with the evidence gathered."""

    run_id: str
    status: InvocationStatus
    value: Any = None
    exception: Optional[str] = None
    exception_type: Optional[str] = None
    evidence: Dict[str, EvidenceToken] = field(default_factory=dict)
    consumed: bool = True

    @property
    def succeeded(self) -> bool:
        return self.status is InvocationStatus.EXECUTED and self.exception is None

    def unwrap(self) -> Any:
        """Return the value or raise the propagated failure."""
        if self.status is not InvocationStatus.EXECUTED:
            raise ProtocolAbortedError(
                f"invocation run {self.run_id} was not executed ({self.status.value})"
            )
        if self.exception is not None:
            raise RemoteInvocationError(
                f"remote operation failed: {self.exception_type}: {self.exception}"
            )
        return self.value


class ServerInvocationHandler(B2BProtocolHandler):
    """Server-side protocol handler for NR-Invocation.

    ``dispatcher`` is the callable that passes the request through the
    server-side interceptor chain to the component (normally
    ``Container.dispatch``).
    """

    protocol = NR_INVOCATION_PROTOCOL

    def __init__(
        self,
        party: str,
        coordinator: B2BCoordinator,
        dispatcher: Callable[[Invocation], InvocationResult],
    ) -> None:
        super().__init__()
        self.party = party
        self._coordinator = coordinator
        self._dispatcher = dispatcher
        self._response_cache: Dict[str, B2BProtocolMessage] = {}
        self._lock = threading.RLock()

    # -- step 1: request ---------------------------------------------------------

    def process_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        if message.step != 1:
            raise ProtocolError(
                f"unexpected step {message.step} on the request path of "
                f"{self.protocol!r}"
            )
        with self._lock:
            cached = self._response_cache.get(message.run_id)
        if cached is not None:
            # Retransmission: answer from the cache, do not re-execute.
            return cached

        services = self._coordinator.services
        run = self.runs.get_or_create(
            ProtocolRun(
                run_id=message.run_id,
                protocol=self.protocol,
                initiator=message.sender,
                responder=self.party,
            )
        )
        run.record_message(message)
        request_payload = message.payload

        # Verify the client's evidence of origin before doing any work.
        nro_request = message.require_token(TokenType.NRO_REQUEST.value)
        executed = True
        rejection_reason = ""
        try:
            services.evidence_verifier.require_valid(
                nro_request,
                expected_type=TokenType.NRO_REQUEST,
                expected_run_id=message.run_id,
                expected_payload=request_payload,
                expected_issuer=message.sender,
            )
        except EvidenceVerificationError as error:
            executed = False
            rejection_reason = str(error)

        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nro_request.token_type,
            token=nro_request,
            role=services.evidence_store.ROLE_RECEIVED,
        )

        # NRR_req: evidence that the request reached this server.
        nrr_request = services.evidence_builder.build(
            token_type=TokenType.NRR_REQUEST,
            run_id=message.run_id,
            step=2,
            recipient=message.sender,
            payload=request_payload,
            details={"received_by": self.party},
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nrr_request.token_type,
            token=nrr_request,
            role=services.evidence_store.ROLE_GENERATED,
        )

        if executed:
            response_payload = self._execute(message, request_payload)
        else:
            response_payload = {
                "status": InvocationStatus.REJECTED.value,
                "value": None,
                "exception": rejection_reason,
                "exception_type": "EvidenceVerificationError",
            }
        # Canonicalise once: the same encoding backs the NRO_resp digest, the
        # response message and the client's NRR_resp verification.
        response_payload = codec.canonicalize(response_payload)

        # NRO_resp: evidence that this server produced the response.
        nro_response = services.evidence_builder.build(
            token_type=TokenType.NRO_RESPONSE,
            run_id=message.run_id,
            step=2,
            recipient=message.sender,
            payload=response_payload,
            details={"produced_by": self.party},
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nro_response.token_type,
            token=nro_response,
            role=services.evidence_store.ROLE_GENERATED,
        )

        services.audit_log.append(
            category=AUDIT_CATEGORY_SERVER,
            subject=message.run_id,
            details={
                "event": "request-processed",
                "client": message.sender,
                "component": request_payload.get("component"),
                "method": request_payload.get("method"),
                "status": response_payload["status"],
            },
        )

        response = B2BProtocolMessage(
            run_id=message.run_id,
            protocol=self.protocol,
            step=2,
            sender=self.party,
            recipient=message.sender,
            payload=response_payload,
            tokens=[nrr_request, nro_response],
            reply_to=self._coordinator.address,
        )
        run.data["response_payload"] = response_payload
        with self._lock:
            self._response_cache[message.run_id] = response
        return response

    def _execute(
        self, message: B2BProtocolMessage, request_payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Pass the request through the server-side chain and classify the result."""
        invocation = Invocation(
            component=request_payload["component"],
            method=request_payload["method"],
            args=list(request_payload.get("args", [])),
            kwargs=dict(request_payload.get("kwargs", {})),
            caller=message.sender,
            context={
                "nr.run_id": message.run_id,
                "nr.origin": message.sender,
                "nr.protocol": self.protocol,
            },
        )
        try:
            result = self._dispatcher(invocation)
        except Exception as error:  # infrastructure failure, not business failure
            return {
                "status": InvocationStatus.EXECUTED.value,
                "value": None,
                "exception": str(error),
                "exception_type": type(error).__name__,
            }
        return {
            "status": InvocationStatus.EXECUTED.value,
            "value": result.value,
            "exception": result.exception,
            "exception_type": result.exception_type,
        }

    # -- step 3: receipt of response ------------------------------------------------

    def process(self, message: B2BProtocolMessage) -> None:
        if message.step != 3:
            raise ProtocolError(
                f"unexpected step {message.step} on the one-way path of "
                f"{self.protocol!r}"
            )
        services = self._coordinator.services
        run = self.runs.get(message.run_id)
        if run is None:
            raise ProtocolError(
                f"receipt for unknown invocation run {message.run_id!r}"
            )
        if not run.record_message(message):
            return  # duplicate delivery of the receipt
        nrr_response = message.require_token(TokenType.NRR_RESPONSE.value)
        services.evidence_verifier.require_valid(
            nrr_response,
            expected_type=TokenType.NRR_RESPONSE,
            expected_run_id=message.run_id,
            expected_payload=run.data.get("response_payload"),
            expected_issuer=message.sender,
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nrr_response.token_type,
            token=nrr_response,
            role=services.evidence_store.ROLE_RECEIVED,
        )
        consumed = bool(nrr_response.details.get("consumed", True))
        services.audit_log.append(
            category=AUDIT_CATEGORY_SERVER,
            subject=message.run_id,
            details={"event": "response-receipt", "consumed": consumed},
        )
        run.complete()

    # -- queries ----------------------------------------------------------------------

    def completed_runs(self) -> List[ProtocolRun]:
        return [run for run in self.runs.all_runs() if run.status is RunStatus.COMPLETED]


class B2BInvocationHandler:
    """Client-side driver of the NR-Invocation protocol (Section 4.2).

    Subclasses (or registered factories) adapt the handler to a platform; the
    default implementation targets this library's container platform
    (``"python"``) and the direct, TTP-free protocol (``"direct"``).
    """

    _factories: Dict[Tuple[str, str], Callable[..., "B2BInvocationHandler"]] = {}

    def __init__(self, party: str, coordinator: B2BCoordinator) -> None:
        self.party = party
        self._coordinator = coordinator

    # -- factory (mirrors B2BInvocationHandler.getInstance) ------------------------

    @classmethod
    def register_factory(
        cls,
        platform: str,
        protocol: str,
        factory: Callable[..., "B2BInvocationHandler"],
        replace: bool = False,
    ) -> None:
        """Register a factory for a (platform, protocol) pair."""
        key = (platform, protocol)
        if key in cls._factories and not replace:
            raise ProtocolError(
                f"an invocation handler factory for {key!r} is already registered"
            )
        cls._factories[key] = factory

    @classmethod
    def get_instance(
        cls, platform: str, protocol: str, party: str, coordinator: B2BCoordinator
    ) -> "B2BInvocationHandler":
        """Return an invocation handler for the given platform and protocol."""
        factory = cls._factories.get((platform, protocol))
        if factory is None and platform == "python" and protocol == "direct":
            factory = cls
        if factory is None:
            raise ProtocolError(
                f"no B2BInvocationHandler registered for platform {platform!r} "
                f"and protocol {protocol!r}"
            )
        return factory(party=party, coordinator=coordinator)

    # -- client-side protocol execution -----------------------------------------------

    def invoke(self, b2b_invocation: B2BInvocation) -> Any:
        """Run the protocol and return the remote operation's value."""
        return self.invoke_with_evidence(b2b_invocation).unwrap()

    def invoke_with_evidence(self, b2b_invocation: B2BInvocation) -> InvocationOutcome:
        """Run the protocol and return the full outcome with evidence."""
        services = self._coordinator.services
        run_id = new_unique_id("inv")
        # Canonicalise once: the same encoding backs the NRO_req digest, the
        # request message body and the server-side verification.
        request_payload = codec.canonicalize(b2b_invocation.request_payload())

        nro_request = services.evidence_builder.build(
            token_type=TokenType.NRO_REQUEST,
            run_id=run_id,
            step=1,
            recipient=b2b_invocation.target_party,
            payload=request_payload,
            details={"platform": b2b_invocation.platform, "protocol": b2b_invocation.protocol},
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=nro_request.token_type,
            token=nro_request,
            role=services.evidence_store.ROLE_GENERATED,
        )

        request_message = B2BProtocolMessage(
            run_id=run_id,
            protocol=NR_INVOCATION_PROTOCOL,
            step=1,
            sender=self.party,
            recipient=b2b_invocation.target_party,
            payload=request_payload,
            tokens=[nro_request],
            reply_to=self._coordinator.address,
        )

        response = self._coordinator.request(request_message)
        return self._handle_response(
            b2b_invocation, run_id, request_payload, response
        )

    def _handle_response(
        self,
        b2b_invocation: B2BInvocation,
        run_id: str,
        request_payload: Dict[str, Any],
        response: B2BProtocolMessage,
    ) -> InvocationOutcome:
        services = self._coordinator.services
        if response.run_id != run_id:
            raise ProtocolError(
                f"response run id {response.run_id!r} does not match request {run_id!r}"
            )
        response_payload = response.payload

        nrr_request = response.require_token(TokenType.NRR_REQUEST.value)
        nro_response = response.require_token(TokenType.NRO_RESPONSE.value)
        services.evidence_verifier.require_valid(
            nrr_request,
            expected_type=TokenType.NRR_REQUEST,
            expected_run_id=run_id,
            expected_payload=request_payload,
            expected_issuer=b2b_invocation.target_party,
        )
        services.evidence_verifier.require_valid(
            nro_response,
            expected_type=TokenType.NRO_RESPONSE,
            expected_run_id=run_id,
            expected_payload=response_payload,
            expected_issuer=b2b_invocation.target_party,
        )
        for token in (nrr_request, nro_response):
            services.evidence_store.store(
                run_id=run_id,
                token_type=token.token_type,
                token=token,
                role=services.evidence_store.ROLE_RECEIVED,
            )

        # NRR_resp: receipt (and consumption indication) for the response.
        consumed = b2b_invocation.consume_response
        nrr_response = services.evidence_builder.build(
            token_type=TokenType.NRR_RESPONSE,
            run_id=run_id,
            step=3,
            recipient=b2b_invocation.target_party,
            payload=response_payload,
            details={"consumed": consumed},
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=nrr_response.token_type,
            token=nrr_response,
            role=services.evidence_store.ROLE_GENERATED,
        )
        receipt_message = B2BProtocolMessage(
            run_id=run_id,
            protocol=NR_INVOCATION_PROTOCOL,
            step=3,
            sender=self.party,
            recipient=b2b_invocation.target_party,
            payload={"consumed": consumed},
            tokens=[nrr_response],
            reply_to=self._coordinator.address,
        )
        self._coordinator.send(receipt_message)

        services.audit_log.append(
            category=AUDIT_CATEGORY_CLIENT,
            subject=run_id,
            details={
                "event": "invocation-complete",
                "server": b2b_invocation.target_party,
                "component": request_payload["component"],
                "method": request_payload["method"],
                "status": response_payload["status"],
                "consumed": consumed,
            },
        )

        status = InvocationStatus(response_payload["status"])
        value = response_payload.get("value") if consumed else None
        return InvocationOutcome(
            run_id=run_id,
            status=status,
            value=value,
            exception=response_payload.get("exception"),
            exception_type=response_payload.get("exception_type"),
            evidence={
                TokenType.NRO_REQUEST.value: nro_request_from(services, run_id),
                TokenType.NRR_REQUEST.value: nrr_request,
                TokenType.NRO_RESPONSE.value: nro_response,
                TokenType.NRR_RESPONSE.value: nrr_response,
            },
            consumed=consumed,
        )


def nro_request_from(services, run_id: str) -> Optional[EvidenceToken]:
    """Fetch the stored NRO_req token for ``run_id`` from the evidence store."""
    records = services.evidence_store.tokens_of_type(run_id, TokenType.NRO_REQUEST.value)
    if not records:
        return None
    return EvidenceToken.from_dict(records[0].token)
