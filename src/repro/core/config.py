"""Consolidated deployment configuration for :meth:`TrustDomain.create`.

Seven releases of opt-in capabilities left ``TrustDomain.create`` with
20+ keyword arguments and the rules about which combinations are valid
scattered through its body.  :class:`DomainConfig` is the redesigned
surface: one dataclass grouping the knobs by concern --

* :class:`TransportConfig` -- what carries messages (a wire transport
  bundle for cross-process domains, or a simulated network / clock /
  dispatch strategy);
* :class:`ReliabilityConfig` -- retry scheduling and the async run engine;
* :class:`DurabilityConfig` -- evidence/journal/audit persistence, either
  as one ``storage=`` profile (``"memory"``, ``"file:<dir>"``,
  ``"sqlite:<path>"``) or as explicit per-store backend factories;
* :class:`FaultConfig` -- the seeded fault plan (or legacy fault model);
* :class:`PeeringConfig` -- the lazy per-peer channel manager's bounds.

Every cross-field validity rule lives in :meth:`DomainConfig.validate`,
so invalid combinations fail the same way whether the config was built
directly or from legacy keyword arguments
(:meth:`DomainConfig.from_legacy_kwargs` -- the kwarg path on
``TrustDomain.create`` delegates here unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, List, Optional, Tuple

from repro.clock import Clock
from repro.errors import ProtocolError
from repro.faults import FaultPlan
from repro.peering import PeeringPolicy
from repro.persistence.storage import StorageBackend, StorageProfile
from repro.transport.network import DispatchStrategy, FaultModel, SimulatedNetwork

__all__ = [
    "DeploymentStyle",
    "DomainConfig",
    "DurabilityConfig",
    "FaultConfig",
    "ObservabilityConfig",
    "PeeringConfig",
    "ReliabilityConfig",
    "TransportConfig",
]

BackendFactory = Callable[[str], StorageBackend]


class DeploymentStyle(Enum):
    """The three deployment styles of Figure 3."""

    DIRECT = "direct"
    INLINE_TTP = "inline-ttp"
    DISTRIBUTED_TTP = "distributed-ttp"


@dataclass
class TransportConfig:
    """What carries the domain's messages.

    ``wire`` makes the domain one *process* of a cross-process deployment
    (a :class:`~repro.transport.wire.WireTransport` bundle); otherwise the
    domain runs on ``network`` (or builds its own simulated network with
    ``clock``/``dispatch``).  ``clock`` and ``dispatch`` also apply to a
    provided network; on a wire domain the transport owns the clock.
    """

    wire: Optional[Any] = None  # WireTransport (untyped: layering)
    network: Optional[SimulatedNetwork] = None
    clock: Optional[Clock] = None
    dispatch: Optional[DispatchStrategy] = None


@dataclass
class ReliabilityConfig:
    """Retry scheduling and run multiplexing.

    ``async_runs`` implies ``scheduled_retries``: the scheduler also
    carries the async engine's protocol deadlines, so the implication is
    structural, not a validation error.
    """

    scheduled_retries: bool = False
    async_runs: bool = False

    @property
    def effective_scheduled_retries(self) -> bool:
        return self.scheduled_retries or self.async_runs


@dataclass
class DurabilityConfig:
    """Persistence of evidence, run journals and audit logs.

    ``storage`` is the one-stop profile selector (``"memory"``,
    ``"file:<dir>"``, ``"sqlite:<path>"``) provisioning every
    per-organisation backend consistently; the explicit ``*_factory``
    hooks remain for deployments that need per-store control, but the two
    styles are mutually exclusive.  ``durable_runs`` turns on the
    write-ahead run journal (under a profile, the journal rides the same
    storage); ``orphan_run_timeout`` arms responder-side proposal-age GC.

    The self-healing knobs: ``durable_state`` persists each replica's
    agreed ``(version, state-digest)`` history through its
    :class:`~repro.persistence.StateStore` so a restarted process resumes
    shared objects at their recorded version instead of re-registering
    from configuration; ``outcome_redelivery`` makes a proposer whose
    outcome wave was (partly) undeliverable keep pushing it through the
    retry scheduler, breaker-aware per peer, until every peer acked or
    the object advanced past it; ``resync_on_connect`` makes wire peers
    compare per-object ``(version, digest)`` vectors at credential
    exchange and pull any missed signed outcomes (anti-entropy).
    """

    durable_runs: bool = False
    storage: Optional[str] = None
    evidence_backend_factory: Optional[BackendFactory] = None
    run_journal_backend_factory: Optional[BackendFactory] = None
    orphan_run_timeout: Optional[float] = None
    durable_state: bool = False
    outcome_redelivery: bool = False
    resync_on_connect: bool = False
    state_backend_factory: Optional[BackendFactory] = None

    def resolve_factories(
        self,
    ) -> Tuple[
        Optional[BackendFactory],
        Optional[BackendFactory],
        Optional[BackendFactory],
        Optional[BackendFactory],
    ]:
        """Return ``(evidence, run_journal, audit, state)`` backend factories.

        A ``storage`` profile provisions evidence and audit backends for
        every organisation, run-journal backends when ``durable_runs`` is
        on, and state backends when ``durable_state`` is on; without a
        profile the explicit factories pass through (no audit backend --
        the in-memory default applies, as before).
        """
        if self.storage is None:
            return (
                self.evidence_backend_factory,
                self.run_journal_backend_factory,
                None,
                self.state_backend_factory,
            )
        profile = StorageProfile.parse(self.storage)
        journal_factory = (
            (lambda owner: profile.backend_for(owner, "runjournal"))
            if self.durable_runs
            else None
        )
        state_factory = (
            (lambda owner: profile.backend_for(owner, "state"))
            if self.durable_state
            else None
        )
        return (
            lambda owner: profile.backend_for(owner, "evidence"),
            journal_factory,
            lambda owner: profile.backend_for(owner, "audit"),
            state_factory,
        )


@dataclass
class FaultConfig:
    """Seeded fault injection: a declarative plan, or the legacy model."""

    plan: Optional[FaultPlan] = None
    model: Optional[FaultModel] = None


@dataclass
class PeeringConfig:
    """Bounds for the lazy per-peer channel manager (wire domains only).

    Enables :meth:`WireTransport.enable_peering` on the domain's
    transport: peer channels (credentials, routes, pooled sockets,
    breaker entries) are created on first use and evicted
    least-recently-used over ``max_live_channels`` (plus after
    ``idle_timeout_seconds`` of inactivity), instead of the domain
    eagerly exchanging credentials with its whole peer set.
    """

    max_live_channels: int = 128
    idle_timeout_seconds: Optional[float] = None

    def to_policy(self) -> PeeringPolicy:
        return PeeringPolicy(
            max_live_channels=self.max_live_channels,
            idle_timeout_seconds=self.idle_timeout_seconds,
        )


@dataclass
class ObservabilityConfig:
    """The process-global observability plane (tracing/metrics/exporters).

    Attaching one to a :class:`DomainConfig` turns observability on for
    the *process* when the domain is built (the plane is process-global
    and idempotent across domains).  ``tracing`` collects run-scoped
    spans into a bounded buffer of ``span_capacity``; ``metrics``
    creates the process :class:`~repro.observability.MetricsRegistry`
    and registers the domain's pull collectors (network statistics,
    scheduler quiescence, breaker states, peering occupancy, store
    sizes, nonce pools, executor depth); ``http_port`` (wire domains
    only; 0 binds an ephemeral port) serves ``/metrics`` (Prometheus
    text), ``/metrics.json`` and ``/spans.json`` from the transport.
    ``message_trace_cap`` bounds the debug message recorder on the
    domain's network.  Without an ``ObservabilityConfig`` nothing is
    enabled and every instrumented call site reduces to one attribute
    load.
    """

    tracing: bool = True
    metrics: bool = True
    span_capacity: int = 10_000
    message_trace_cap: int = 10_000
    http_port: Optional[int] = None


@dataclass
class DomainConfig:
    """Everything :meth:`TrustDomain.create` needs beyond the party list."""

    style: DeploymentStyle = DeploymentStyle.DIRECT
    scheme: str = "rsa"
    use_timestamping: bool = False
    relayed_protocols: Optional[List[str]] = None
    with_arbitrator: bool = False
    keypair_factory: Optional[Callable[[str], Any]] = None  # KeyPair
    transport: TransportConfig = field(default_factory=TransportConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    peering: Optional[PeeringConfig] = None
    observability: Optional[ObservabilityConfig] = None

    @classmethod
    def from_legacy_kwargs(
        cls,
        style: DeploymentStyle = DeploymentStyle.DIRECT,
        network: Optional[SimulatedNetwork] = None,
        fault_model: Optional[FaultModel] = None,
        clock: Optional[Clock] = None,
        scheme: str = "rsa",
        use_timestamping: bool = False,
        relayed_protocols: Optional[List[str]] = None,
        with_arbitrator: bool = False,
        dispatch: Optional[DispatchStrategy] = None,
        scheduled_retries: bool = False,
        async_runs: bool = False,
        evidence_backend_factory: Optional[BackendFactory] = None,
        transport: Optional[Any] = None,
        durable_runs: bool = False,
        run_journal_backend_factory: Optional[BackendFactory] = None,
        orphan_run_timeout: Optional[float] = None,
        keypair_factory: Optional[Callable[[str], Any]] = None,
        fault_plan: Optional[FaultPlan] = None,
        storage: Optional[str] = None,
        peering: Optional[PeeringConfig] = None,
        durable_state: bool = False,
        outcome_redelivery: bool = False,
        resync_on_connect: bool = False,
        state_backend_factory: Optional[BackendFactory] = None,
    ) -> "DomainConfig":
        """Build a config from the historical flat keyword surface."""
        return cls(
            style=style,
            scheme=scheme,
            use_timestamping=use_timestamping,
            relayed_protocols=relayed_protocols,
            with_arbitrator=with_arbitrator,
            keypair_factory=keypair_factory,
            transport=TransportConfig(
                wire=transport, network=network, clock=clock, dispatch=dispatch
            ),
            reliability=ReliabilityConfig(
                scheduled_retries=scheduled_retries, async_runs=async_runs
            ),
            durability=DurabilityConfig(
                durable_runs=durable_runs,
                storage=storage,
                evidence_backend_factory=evidence_backend_factory,
                run_journal_backend_factory=run_journal_backend_factory,
                orphan_run_timeout=orphan_run_timeout,
                durable_state=durable_state,
                outcome_redelivery=outcome_redelivery,
                resync_on_connect=resync_on_connect,
                state_backend_factory=state_backend_factory,
            ),
            faults=FaultConfig(plan=fault_plan, model=fault_model),
            peering=peering,
        )

    def validate(self) -> None:
        """Raise :class:`ProtocolError` on any invalid field combination.

        The single home of every cross-field rule: both the ``config=``
        path and the legacy kwarg path of :meth:`TrustDomain.create` run
        through here, so invalid combinations fail identically (and with
        the historical messages).
        """
        if self.faults.model is not None and self.faults.plan is not None:
            raise ProtocolError(
                "pass fault_model= or fault_plan=, not both (a FaultModel "
                "is expressible as a FaultPlan via from_fault_model)"
            )
        if self.durability.storage is not None and (
            self.durability.evidence_backend_factory is not None
            or self.durability.run_journal_backend_factory is not None
            or self.durability.state_backend_factory is not None
        ):
            raise ProtocolError(
                "pass storage= or explicit backend factories, not both: a "
                "storage profile provisions every per-organisation backend"
            )
        if self.durability.storage is not None:
            StorageProfile.parse(self.durability.storage)  # raises on nonsense
        if self.durability.resync_on_connect and not self.durability.durable_state:
            raise ProtocolError(
                "resync_on_connect= needs durable_state=: the (version, "
                "digest) vectors and stored outcome records that anti-entropy "
                "serves live in the durable state store"
            )
        if self.peering is not None:
            self.peering.to_policy()  # bounds-checks the policy fields
        observability = self.observability
        if observability is not None:
            if observability.span_capacity <= 0:
                raise ProtocolError("observability span_capacity must be positive")
            if observability.message_trace_cap <= 0:
                raise ProtocolError("observability message_trace_cap must be positive")
            port = observability.http_port
            if port is not None and not (0 <= port <= 65535):
                raise ProtocolError(
                    f"observability http_port must be 0..65535, got {port}"
                )
        wire = self.transport.wire
        if wire is None:
            if self.peering is not None:
                raise ProtocolError(
                    "peering= needs a wire transport: lazy channel management "
                    "applies to socket-backed deployments (pass transport=)"
                )
            if (
                self.observability is not None
                and self.observability.http_port is not None
            ):
                raise ProtocolError(
                    "observability http_port= needs a wire transport: the "
                    "exporter endpoint is served from the WireTransport "
                    "(in-process domains dump snapshots directly)"
                )
            return
        from repro.transport.wire import WireTransport  # local: avoid cycle

        if not isinstance(wire, WireTransport):
            raise ProtocolError(
                f"transport must be a WireTransport, got {type(wire).__name__}"
            )
        if (
            self.style is not DeploymentStyle.DIRECT
            or self.relayed_protocols is not None
        ):
            raise ProtocolError(
                "wire transports support the DIRECT deployment style only "
                "(no relayed protocols); TTP-relayed styles need an "
                "in-process TTP host"
            )
        if self.transport.network is not None:
            raise ProtocolError(
                "a wire domain uses the transport's own network; to inject "
                "faults pass fault_plan= (or fault_model=) instead of a "
                "SimulatedNetwork"
            )
        if self.use_timestamping or self.with_arbitrator:
            raise ProtocolError(
                "timestamping authorities and arbitrators are in-process "
                "services; host them as parties instead on a wire domain"
            )
        clock = self.transport.clock
        if clock is not None and clock is not wire.network.clock:
            # A half-applied clock (organisations virtual, network/scheduler
            # wall) would mix timestamp domains; the transport owns the
            # clock, so it must be set there.
            raise ProtocolError(
                "a wire domain runs on its transport's clock; pass clock= to "
                "WireTransport(...) instead"
            )
