"""Trusted third party (TTP) services.

Figure 3(a)/(b) of the paper routes communication between organisations
through inline TTPs: "however constructed, the inline TTP is an interceptor
between the organisations and is responsible for ensuring that agreed safety
and liveness guarantees are delivered to honest parties."

A :class:`RelayProtocolHandler` registered with a TTP's coordinator forwards
protocol messages to their real destination and notarises every relayed
message with a ``TTP_RELAY`` evidence token, countersigned by the TTP and
appended to the message, so both parties (and the TTP itself) hold
third-party evidence of the exchange.

The :class:`TTPArbitrator` supports the optimistic fair-exchange protocol of
:mod:`repro.core.fair_exchange`: it resolves or aborts a protocol run on
request and issues ``TTP_AFFIDAVIT`` / ``TTP_ABORT`` tokens.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.core.coordinator import B2BCoordinator
from repro.core.evidence import TokenType, payload_digest
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import B2BProtocolHandler
from repro.errors import EvidenceVerificationError, FairExchangeError, ProtocolError

AUDIT_CATEGORY_TTP = "ttp.relay"

#: Protocol name the arbitrator listens on.
FAIR_EXCHANGE_PROTOCOL = "fair-exchange"


class RelayProtocolHandler(B2BProtocolHandler):
    """Forwards messages of one protocol through the TTP, notarising each."""

    def __init__(
        self,
        protocol: str,
        party: str,
        coordinator: B2BCoordinator,
        notarise: bool = True,
    ) -> None:
        self.protocol = protocol
        super().__init__()
        self.party = party
        self._coordinator = coordinator
        self._notarise = notarise
        self.relayed_messages = 0

    def _notarise_message(self, message: B2BProtocolMessage, direction: str) -> None:
        """Attach (and store) the TTP's evidence of having relayed ``message``."""
        if not self._notarise:
            return
        services = self._coordinator.services
        relay_payload = {
            "message_id": message.message_id,
            "run_id": message.run_id,
            "protocol": message.protocol,
            "step": message.step,
            "sender": message.sender,
            "recipient": message.recipient,
            "direction": direction,
            "payload_digest": payload_digest(message.payload).hex(),
        }
        token = services.evidence_builder.build(
            token_type=TokenType.TTP_RELAY,
            run_id=message.run_id,
            step=message.step,
            recipient=message.recipient,
            payload=relay_payload,
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=token.token_type,
            token=token,
            role=services.evidence_store.ROLE_GENERATED,
        )
        # Reassign (rather than append in place) so the message's cached
        # canonical encoding is invalidated before the relay re-sends it.
        message.tokens = message.tokens + [token]
        services.audit_log.append(
            category=AUDIT_CATEGORY_TTP,
            subject=message.run_id,
            details={
                "event": "relayed",
                "protocol": message.protocol,
                "step": message.step,
                "sender": message.sender,
                "recipient": message.recipient,
                "direction": direction,
            },
        )

    def process_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        self.relayed_messages += 1
        self._notarise_message(message, direction="forward")
        response = self._coordinator.request(message)
        self._notarise_message(response, direction="return")
        return response

    def process(self, message: B2BProtocolMessage) -> None:
        self.relayed_messages += 1
        self._notarise_message(message, direction="forward")
        self._coordinator.send(message)


class TTPArbitrator(B2BProtocolHandler):
    """Resolve/abort arbitrator for optimistic fair exchange.

    A run can be *resolved* (the requesting party presents the origin
    evidence of both request and response and receives a TTP affidavit that
    stands in for the missing receipt) or *aborted* (the requesting party
    receives a signed abort token).  A run can never be both: the first
    decision is final, which is what guarantees consistency for honest
    parties.
    """

    protocol = FAIR_EXCHANGE_PROTOCOL

    def __init__(self, party: str, coordinator: B2BCoordinator) -> None:
        super().__init__()
        self.party = party
        self._coordinator = coordinator
        self._decisions: Dict[str, str] = {}
        self._lock = threading.RLock()

    def decision_for(self, run_id: str) -> Optional[str]:
        with self._lock:
            return self._decisions.get(run_id)

    def process_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        action = message.attributes.get("action")
        if action == "resolve":
            return self._resolve(message)
        if action == "abort":
            return self._abort(message)
        raise ProtocolError(f"unsupported fair-exchange action {action!r}")

    def _decide(self, run_id: str, decision: str) -> str:
        """Record the first decision for ``run_id``; later calls see the first."""
        with self._lock:
            return self._decisions.setdefault(run_id, decision)

    def _resolve(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        services = self._coordinator.services
        run_id = message.payload["run_id"]
        nro_request = message.token_of_type(TokenType.NRO_REQUEST.value)
        nro_response = message.token_of_type(TokenType.NRO_RESPONSE.value)
        if nro_request is None or nro_response is None:
            raise FairExchangeError(
                "resolution requires the NRO_request and NRO_response tokens"
            )
        try:
            services.evidence_verifier.require_valid(
                nro_request, expected_type=TokenType.NRO_REQUEST, expected_run_id=run_id
            )
            services.evidence_verifier.require_valid(
                nro_response, expected_type=TokenType.NRO_RESPONSE, expected_run_id=run_id
            )
        except EvidenceVerificationError as error:
            raise FairExchangeError(f"resolution evidence invalid: {error}") from error

        decision = self._decide(run_id, "resolved")
        if decision == "aborted":
            token_type = TokenType.TTP_ABORT
            verdict = "aborted"
        else:
            token_type = TokenType.TTP_AFFIDAVIT
            verdict = "resolved"
        affidavit_payload = {
            "run_id": run_id,
            "verdict": verdict,
            "requested_by": message.sender,
            "request_digest": nro_request.payload_digest.hex(),
            "response_digest": nro_response.payload_digest.hex(),
        }
        token = services.evidence_builder.build(
            token_type=token_type,
            run_id=run_id,
            step=message.step,
            recipient=message.sender,
            payload=affidavit_payload,
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=token.token_type,
            token=token,
            role=services.evidence_store.ROLE_GENERATED,
        )
        services.audit_log.append(
            category="ttp.fair-exchange",
            subject=run_id,
            details={"event": "resolve", "verdict": verdict, "requested_by": message.sender},
        )
        return B2BProtocolMessage(
            run_id=run_id,
            protocol=self.protocol,
            step=message.step + 1,
            sender=self.party,
            recipient=message.sender,
            payload=affidavit_payload,
            tokens=[token],
            attributes={"action": "resolution"},
            reply_to=self._coordinator.address,
        )

    def _abort(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        services = self._coordinator.services
        run_id = message.payload["run_id"]
        decision = self._decide(run_id, "aborted")
        verdict = "aborted" if decision == "aborted" else "resolved"
        abort_payload = {
            "run_id": run_id,
            "verdict": verdict,
            "requested_by": message.sender,
        }
        token = services.evidence_builder.build(
            token_type=TokenType.TTP_ABORT if verdict == "aborted" else TokenType.TTP_AFFIDAVIT,
            run_id=run_id,
            step=message.step,
            recipient=message.sender,
            payload=abort_payload,
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=token.token_type,
            token=token,
            role=services.evidence_store.ROLE_GENERATED,
        )
        services.audit_log.append(
            category="ttp.fair-exchange",
            subject=run_id,
            details={"event": "abort", "verdict": verdict, "requested_by": message.sender},
        )
        return B2BProtocolMessage(
            run_id=run_id,
            protocol=self.protocol,
            step=message.step + 1,
            sender=self.party,
            recipient=message.sender,
            payload=abort_payload,
            tokens=[token],
            attributes={"action": "resolution"},
            reply_to=self._coordinator.address,
        )


def install_relays(
    ttp_coordinator: B2BCoordinator,
    protocols: List[str],
    notarise: bool = True,
) -> Dict[str, RelayProtocolHandler]:
    """Register relay handlers for the given protocols on a TTP coordinator."""
    relays: Dict[str, RelayProtocolHandler] = {}
    for protocol in protocols:
        relay = RelayProtocolHandler(
            protocol=protocol,
            party=ttp_coordinator.party,
            coordinator=ttp_coordinator,
            notarise=notarise,
        )
        ttp_coordinator.register_handler(relay, replace=True)
        relays[protocol] = relay
    return relays
