"""Trust domains: direct, inline-TTP and distributed-inline-TTP deployments.

Section 3.1 (Figure 3) describes three ways of using trusted interceptors to
construct a trust domain between organisations:

* **direct** -- each organisation hosts its own interceptor and they exchange
  protocol messages directly (Figure 3(c));
* **inline TTP** -- a single TTP mediates all communication between the
  organisations (Figure 3(a));
* **distributed inline TTP** -- each organisation communicates through its own
  TTP, and the TTPs communicate with each other (Figure 3(b)).

:class:`TrustDomain` builds a fully wired deployment of either style on a
simulated network: it creates the certificate authority, the organisations,
any TTPs, exchanges keys and installs the routing appropriate to the style.
The same application code then runs unchanged on any deployment -- which is
the point of the trusted-interceptor abstraction -- and the benchmarks use
this to compare the message/latency cost of the three styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.clock import Clock, SimulatedClock
from repro.core.config import (
    DeploymentStyle,
    DomainConfig,
    PeeringConfig,
)
from repro.core.invocation import NR_INVOCATION_PROTOCOL
from repro.core.organisation import Organisation
from repro.core.sharing import NR_SHARING_PROTOCOL
from repro.core.ttp import RelayProtocolHandler, TTPArbitrator, install_relays
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.timestamp import TimestampAuthority
from repro.errors import ProtocolError
from repro.faults import FaultPlan
from repro.faults.breaker import STATE_HALF_OPEN, STATE_OPEN
from repro.persistence.storage import StorageBackend
from repro.transport.network import DispatchStrategy, FaultModel, SimulatedNetwork
from repro.transport.scheduler import RetryScheduler

__all__ = ["DEFAULT_RELAYED_PROTOCOLS", "DeploymentStyle", "TrustDomain"]

#: Protocols relayed by inline TTPs by default.
DEFAULT_RELAYED_PROTOCOLS = [NR_INVOCATION_PROTOCOL, NR_SHARING_PROTOCOL]


@dataclass
class TrustDomain:
    """A wired deployment of organisations (and TTPs) forming a trust domain."""

    style: DeploymentStyle
    network: SimulatedNetwork
    certificate_authority: CertificateAuthority
    organisations: Dict[str, Organisation] = field(default_factory=dict)
    ttps: Dict[str, Organisation] = field(default_factory=dict)
    arbitrator: Optional[TTPArbitrator] = None
    relays: Dict[str, Dict[str, RelayProtocolHandler]] = field(default_factory=dict)
    timestamp_authority: Optional[TimestampAuthority] = None
    #: Parties of the domain hosted by *other processes* (wire deployments):
    #: they are routable and verifiable but have no local Organisation.
    remote_parties: List[str] = field(default_factory=list)
    #: The per-process wire bundle, when this domain spans processes.
    transport: Optional["WireTransport"] = None  # noqa: F821 - lazy import

    # -- construction ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        party_uris: List[str],
        style: DeploymentStyle = DeploymentStyle.DIRECT,
        network: Optional[SimulatedNetwork] = None,
        fault_model: Optional[FaultModel] = None,
        clock: Optional[Clock] = None,
        scheme: str = "rsa",
        use_timestamping: bool = False,
        relayed_protocols: Optional[List[str]] = None,
        with_arbitrator: bool = False,
        dispatch: Optional[DispatchStrategy] = None,
        scheduled_retries: bool = False,
        async_runs: bool = False,
        evidence_backend_factory: Optional[Callable[[str], StorageBackend]] = None,
        transport: Optional["WireTransport"] = None,  # noqa: F821 - lazy import
        durable_runs: bool = False,
        run_journal_backend_factory: Optional[
            Callable[[str], StorageBackend]
        ] = None,
        orphan_run_timeout: Optional[float] = None,
        keypair_factory: Optional[Callable[[str], "KeyPair"]] = None,  # noqa: F821
        fault_plan: Optional[FaultPlan] = None,
        storage: Optional[str] = None,
        peering: Optional[PeeringConfig] = None,
        durable_state: bool = False,
        outcome_redelivery: bool = False,
        resync_on_connect: bool = False,
        config: Optional[DomainConfig] = None,
    ) -> "TrustDomain":
        """Build a trust domain of the requested style for ``party_uris``.

        ``config`` (a :class:`repro.core.config.DomainConfig`) is the
        primary way to describe the deployment: the knobs below, grouped
        by concern, with every cross-field rule checked in
        :meth:`DomainConfig.validate`.  The individual keyword arguments
        remain supported for backward compatibility and delegate through
        the same config path unchanged (deprecation note: prefer
        ``config=`` in new code; the flat kwargs may gain a
        ``DeprecationWarning`` in a future release).  Passing ``config=``
        together with a non-default individual kwarg is an error.

        ``storage`` provisions persistence for *every* organisation from
        one profile string -- ``"memory"``, ``"file:<dir>"`` or
        ``"sqlite:<path>"`` -- covering evidence stores and audit logs
        always and run journals when ``durable_runs`` is set (the SQLite
        profile keeps all stores in one embedded-KV file that many
        processes can share).  ``peering`` (a
        :class:`~repro.core.config.PeeringConfig`) enables the lazy
        per-peer channel manager on a wire domain: no eager credential
        exchange at build time; channels are created on first touch and
        evicted LRU/idle under the configured cap.

        ``dispatch`` selects the network's handler-dispatch strategy (e.g.
        :class:`repro.transport.network.ParallelDispatch` to run batched
        protocol fan-outs concurrently); it is only consulted when the domain
        constructs its own network.  ``scheduled_retries`` attaches a
        :class:`repro.transport.scheduler.RetryScheduler` to the network, so
        delivery retries wait as deadline timers that overlap across
        concurrent protocol runs instead of blocking their proposer threads.
        ``async_runs`` opts every organisation into the run-multiplexing
        protocol engine: blocking sharing calls become thin ``.result()``
        wrappers over ``propose_update_async`` and friends, whose phase
        transitions run as continuations instead of occupying a thread per
        run; it implies ``scheduled_retries`` (the scheduler also carries
        the engine's protocol deadlines).  ``evidence_backend_factory`` maps
        a party URI to the storage backend its evidence store should persist
        into (e.g. a :class:`repro.persistence.storage.FileBackend`
        directory for multi-process deployments); the default keeps evidence
        in memory.  ``transport`` turns the domain into one *process* of a
        cross-process deployment (see
        :class:`repro.transport.wire.WireTransport`): organisations are
        built only for the transport's local parties, registered on its
        socket-backed :class:`~repro.transport.wire.WireNetwork`, and every
        other party of ``party_uris`` is resolved through the wire
        credential exchange instead of direct object access.

        ``durable_runs`` (optionally with a ``run_journal_backend_factory``
        mapping each party URI to a storage backend, e.g. a
        :class:`~repro.persistence.storage.FileBackend` directory) gives
        every organisation a write-ahead run journal;
        :meth:`recover_runs` replays open runs after a restart.
        ``orphan_run_timeout`` (seconds) arms the responder-side
        proposal-age expiry: a proposal whose outcome never arrives is
        garbage-collected instead of stranding run state forever.
        ``keypair_factory`` maps a party URI to the key pair it should use
        -- a restarted process must present the *same* key its peers pinned
        (wire key pinning is trust-on-first-use), so durable deployments
        persist keys and rebuild organisations through this hook.
        ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects seeded
        deterministic faults into message admission on *either* transport:
        simulated domains build their network with it, wire domains install
        it on the transport's :class:`~repro.transport.wire.WireNetwork`
        (``fault_model`` is likewise accepted on wire domains, converted via
        :meth:`FaultPlan.from_fault_model`).  Pass at most one of the two.
        """
        if config is None:
            config = DomainConfig.from_legacy_kwargs(
                style=style,
                network=network,
                fault_model=fault_model,
                clock=clock,
                scheme=scheme,
                use_timestamping=use_timestamping,
                relayed_protocols=relayed_protocols,
                with_arbitrator=with_arbitrator,
                dispatch=dispatch,
                scheduled_retries=scheduled_retries,
                async_runs=async_runs,
                evidence_backend_factory=evidence_backend_factory,
                transport=transport,
                durable_runs=durable_runs,
                run_journal_backend_factory=run_journal_backend_factory,
                orphan_run_timeout=orphan_run_timeout,
                keypair_factory=keypair_factory,
                fault_plan=fault_plan,
                storage=storage,
                peering=peering,
                durable_state=durable_state,
                outcome_redelivery=outcome_redelivery,
                resync_on_connect=resync_on_connect,
            )
        else:
            # A config fully describes the deployment; a non-default flat
            # kwarg next to it would be silently ignored -- reject instead.
            overridden = sorted(
                name
                for name, (value, default) in {
                    "style": (style, DeploymentStyle.DIRECT),
                    "network": (network, None),
                    "fault_model": (fault_model, None),
                    "clock": (clock, None),
                    "scheme": (scheme, "rsa"),
                    "use_timestamping": (use_timestamping, False),
                    "relayed_protocols": (relayed_protocols, None),
                    "with_arbitrator": (with_arbitrator, False),
                    "dispatch": (dispatch, None),
                    "scheduled_retries": (scheduled_retries, False),
                    "async_runs": (async_runs, False),
                    "evidence_backend_factory": (evidence_backend_factory, None),
                    "transport": (transport, None),
                    "durable_runs": (durable_runs, False),
                    "run_journal_backend_factory": (
                        run_journal_backend_factory,
                        None,
                    ),
                    "orphan_run_timeout": (orphan_run_timeout, None),
                    "keypair_factory": (keypair_factory, None),
                    "fault_plan": (fault_plan, None),
                    "storage": (storage, None),
                    "peering": (peering, None),
                    "durable_state": (durable_state, False),
                    "outcome_redelivery": (outcome_redelivery, False),
                    "resync_on_connect": (resync_on_connect, False),
                }.items()
                if value != default
            )
            if overridden:
                raise ProtocolError(
                    "pass config= or individual keyword arguments, not both "
                    f"(also given: {', '.join(overridden)})"
                )
        return cls._build(party_uris, config)

    @classmethod
    def _build(cls, party_uris: List[str], config: DomainConfig) -> "TrustDomain":
        """One implementation path behind both ``create`` surfaces."""
        if len(party_uris) < 2:
            raise ProtocolError("a trust domain needs at least two organisations")
        if len(set(party_uris)) != len(party_uris):
            raise ProtocolError("party URIs must be unique")
        config.validate()
        if config.transport.wire is not None:
            return cls._create_wired(party_uris, config)
        style = config.style
        scheme = config.scheme
        keypair_factory = config.keypair_factory
        reliability = config.reliability
        evidence_factory, journal_factory, audit_factory, state_factory = (
            config.durability.resolve_factories()
        )
        clock = config.transport.clock or SimulatedClock()
        network = config.transport.network or SimulatedNetwork(
            fault_model=config.faults.model,
            clock=clock,
            dispatch=config.transport.dispatch,
            fault_plan=config.faults.plan,
        )
        if (
            reliability.effective_scheduled_retries
            and network.retry_scheduler is None
        ):
            network.set_retry_scheduler(RetryScheduler(network.clock))
        ca = CertificateAuthority("urn:repro:ca", scheme=scheme, clock=clock)
        tsa = (
            TimestampAuthority("urn:repro:tsa", scheme=scheme, clock=clock)
            if config.use_timestamping
            else None
        )
        domain = cls(
            style=style,
            network=network,
            certificate_authority=ca,
            timestamp_authority=tsa,
        )
        for uri in party_uris:
            domain.organisations[uri] = Organisation(
                uri=uri,
                network=network,
                ca=ca,
                keypair=keypair_factory(uri) if keypair_factory else None,
                scheme=scheme,
                clock=clock,
                timestamp_authority=tsa,
                evidence_backend=(
                    evidence_factory(uri) if evidence_factory else None
                ),
                async_runs=reliability.async_runs,
                durable_runs=config.durability.durable_runs,
                run_journal_backend=(
                    journal_factory(uri) if journal_factory else None
                ),
                orphan_run_timeout=config.durability.orphan_run_timeout,
                audit_backend=audit_factory(uri) if audit_factory else None,
                state_backend=state_factory(uri) if state_factory else None,
                durable_state=config.durability.durable_state,
                outcome_redelivery=config.durability.outcome_redelivery,
            )
        # Everybody learns everybody's keys (credential exchange).
        organisations = list(domain.organisations.values())
        for org in organisations:
            for other in organisations:
                if org is not other:
                    org.trust(other)

        relayed = config.relayed_protocols or list(DEFAULT_RELAYED_PROTOCOLS)
        if style is DeploymentStyle.INLINE_TTP:
            domain._wire_inline_ttp(ca, clock, scheme, tsa, relayed)
        elif style is DeploymentStyle.DISTRIBUTED_TTP:
            domain._wire_distributed_ttp(ca, clock, scheme, tsa, relayed)

        if config.with_arbitrator:
            domain._install_arbitrator(ca, clock, scheme, tsa)
        domain._install_observability(config)
        return domain

    @classmethod
    def _create_wired(
        cls, party_uris: List[str], config: DomainConfig
    ) -> "TrustDomain":
        """Build one process's share of a socket-connected trust domain.

        Organisations are created for the transport's local parties only
        and registered on its :class:`~repro.transport.wire.WireNetwork`;
        remote parties are learned through the wire credential exchange
        (pinned keys plus routed coordinator addresses).  The wire carries
        no relayed styles: every party talks to every other directly.  A
        ``fault_plan`` (or a ``fault_model``, converted to a plan) installs
        seeded fault injection on the wire network, where injected resets
        and corrupt frames kill *real* sockets and recover through the real
        retry machinery.

        With ``peering`` configured (or peering already enabled on the
        transport), the eager credential exchange with every remote party
        is skipped: each local coordinator gets a route resolver backed by
        :meth:`WireTransport.ensure_party`, so credentials and routes are
        fetched on the first message to a peer and the per-peer transport
        state lives in the transport's bounded channel manager.
        """
        transport = config.transport.wire
        scheme = config.scheme
        keypair_factory = config.keypair_factory
        reliability = config.reliability
        evidence_factory, journal_factory, audit_factory, state_factory = (
            config.durability.resolve_factories()
        )
        local = list(transport.local_parties)
        unknown = sorted(set(local) - set(party_uris))
        if unknown:
            raise ProtocolError(
                f"transport hosts parties outside the domain: {unknown}"
            )
        wire_network = transport.network
        # Route either fault surface to the wire-side injector: a legacy
        # FaultModel becomes an equivalent plan, a FaultPlan installs as-is.
        plan = (
            FaultPlan.from_fault_model(config.faults.model)
            if config.faults.model is not None
            else config.faults.plan
        )
        if plan is not None:
            wire_network.set_fault_plan(plan)
        clock = wire_network.clock
        if config.transport.dispatch is not None:
            wire_network.set_dispatch(config.transport.dispatch)
        if (
            reliability.effective_scheduled_retries
            and wire_network.retry_scheduler is None
        ):
            wire_network.set_retry_scheduler(RetryScheduler(wire_network.clock))
        if config.peering is not None and transport.peer_manager is None:
            transport.enable_peering(config.peering.to_policy())
        ca = CertificateAuthority("urn:repro:ca", scheme=scheme, clock=clock)
        domain = cls(
            style=config.style,
            network=wire_network,
            certificate_authority=ca,
            remote_parties=sorted(set(party_uris) - set(local)),
            transport=transport,
        )
        for uri in local:
            domain.organisations[uri] = Organisation(
                uri=uri,
                network=wire_network,
                ca=ca,
                keypair=keypair_factory(uri) if keypair_factory else None,
                scheme=scheme,
                clock=clock,
                evidence_backend=(
                    evidence_factory(uri) if evidence_factory else None
                ),
                async_runs=reliability.async_runs,
                durable_runs=config.durability.durable_runs,
                run_journal_backend=(
                    journal_factory(uri) if journal_factory else None
                ),
                orphan_run_timeout=config.durability.orphan_run_timeout,
                audit_backend=audit_factory(uri) if audit_factory else None,
                state_backend=state_factory(uri) if state_factory else None,
                durable_state=config.durability.durable_state,
                outcome_redelivery=config.durability.outcome_redelivery,
            )
        # Local parties exchange credentials directly; publishing them on
        # the transport makes them introducible to (and by) peer processes.
        organisations = list(domain.organisations.values())
        for org in organisations:
            for other in organisations:
                if org is not other:
                    org.trust(other)
        for org in organisations:
            transport.publish(org)
        if config.durability.resync_on_connect:
            # Anti-entropy rides every introduction from here on: each
            # (re)connect and credential re-exchange compares per-object
            # (version, digest) vectors and the stale side pulls the
            # missing signed outcomes.  Objects are usually registered
            # *after* create() (share_object), so a restarted process also
            # calls transport.resync_with_peers() once its replicas are
            # resumed -- see Organisation.share_object's resume path.
            transport.resync_on_connect = True
        if transport.peer_manager is not None:
            # Lazy peering: skip the eager exchange.  First contact with a
            # peer resolves credentials and a route through the channel
            # manager instead (ensure_party), bounded by the peering cap.
            # Channel evictions must leave an audit trail; anchor it in the
            # process's first organisation unless one is already attached.
            if wire_network.audit_log is None:
                wire_network.attach_audit_log(organisations[0].audit_log)
            for org in organisations:
                org.coordinator.set_route_resolver(transport.ensure_party)
        elif transport.await_remote_credentials and domain.remote_parties:
            transport.exchange(domain.remote_parties)
        domain._install_observability(config)
        return domain

    def _install_observability(self, config: DomainConfig) -> None:
        """Turn on the process-wide observability plane for this domain.

        Idempotent across domains sharing a process: ``enable`` reuses the
        live span collector and metrics registry, and collector names are
        qualified per network/organisation so re-registration (a rebuilt
        domain) overwrites rather than duplicates.  All metric sources are
        *pull* collectors -- they cost nothing until a snapshot is taken.
        """
        settings = config.observability
        if settings is None:
            return
        from repro import parallel
        from repro.crypto import dsa
        from repro.observability import runtime as observability_runtime

        observability_runtime.enable(settings)
        self.network.set_trace_capacity(settings.message_trace_cap)
        registry = observability_runtime.STATE.metrics
        if registry is None:
            return
        network = self.network
        transport = self.transport

        def network_metrics() -> Dict[str, float]:
            stats = network.statistics
            metrics = {
                "network.messages_sent": stats.messages_sent,
                "network.messages_delivered": stats.messages_delivered,
                "network.messages_dropped": stats.messages_dropped,
                "network.messages_duplicated": stats.messages_duplicated,
                "network.messages_shed": stats.messages_shed,
                "network.bytes_delivered": stats.bytes_delivered,
                "network.circuit_open_refusals": stats.circuit_open_refusals,
                "executor.queue_depth": parallel.executor_queue_depth(),
            }
            scheduler = network.retry_scheduler
            if scheduler is not None:
                metrics["scheduler.pending_timers"] = scheduler.pending_timers()
            breaker = network.circuit_breaker
            if breaker is not None:
                states = list(breaker.states().values())
                metrics["breaker.circuits_open"] = states.count(STATE_OPEN)
                metrics["breaker.circuits_half_open"] = states.count(
                    STATE_HALF_OPEN
                )
            pools = dsa.nonce_pool_stats().values()
            metrics["crypto.nonce_pool_size"] = sum(p["size"] for p in pools)
            metrics["crypto.nonce_pool_hits"] = sum(p["hits"] for p in pools)
            metrics["crypto.nonce_pool_misses"] = sum(
                p["misses"] for p in pools
            )
            if transport is not None and transport.peer_manager is not None:
                manager = transport.peer_manager
                metrics["peering.live_channels"] = manager.live_channels
                metrics["peering.channels_created"] = manager.stats.created
                metrics["peering.channels_evicted"] = manager.stats.evicted
            return metrics

        registry.register_collector(
            f"network:{id(network):x}", network_metrics
        )

        def org_metrics(org: Organisation, uri: str) -> Dict[str, float]:
            metrics = {
                f"evidence.records.{uri}": org.evidence_store.total_records(),
                f"audit.records.{uri}": len(org.audit_log),
            }
            journal = org.coordinator.services.run_journal
            if journal is not None:
                metrics[f"journal.open_runs.{uri}"] = len(journal.open_runs())
            return metrics

        for uri, org in self.organisations.items():
            registry.register_collector(
                f"org:{uri}",
                lambda org=org, uri=uri: org_metrics(org, uri),
            )
        if settings.http_port is not None and transport is not None:
            transport.serve_observability(settings.http_port)

    def _new_ttp(
        self,
        uri: str,
        ca: CertificateAuthority,
        clock: Clock,
        scheme: str,
        tsa: Optional[TimestampAuthority],
    ) -> Organisation:
        ttp = Organisation(
            uri=uri,
            network=self.network,
            ca=ca,
            scheme=scheme,
            clock=clock,
            timestamp_authority=tsa,
        )
        self.ttps[uri] = ttp
        # The TTP must be able to verify every party's evidence and reach
        # every party's coordinator; every party must trust the TTP's key.
        for org in self.organisations.values():
            ttp.trust(org)
            org.evidence_verifier.pin_key(ttp.uri, ttp.public_key)
            ttp.evidence_verifier.pin_key(org.uri, org.public_key)
        return ttp

    def _wire_inline_ttp(
        self,
        ca: CertificateAuthority,
        clock: Clock,
        scheme: str,
        tsa: Optional[TimestampAuthority],
        relayed_protocols: List[str],
    ) -> None:
        """Single TTP acting on behalf of all organisations (Figure 3(a))."""
        ttp = self._new_ttp("urn:ttp:inline", ca, clock, scheme, tsa)
        self.relays[ttp.uri] = install_relays(ttp.coordinator, relayed_protocols)
        for org in self.organisations.values():
            for other_uri in self.organisations:
                if other_uri != org.uri:
                    org.route_via(other_uri, ttp.coordinator.address)

    def _wire_distributed_ttp(
        self,
        ca: CertificateAuthority,
        clock: Clock,
        scheme: str,
        tsa: Optional[TimestampAuthority],
        relayed_protocols: List[str],
    ) -> None:
        """One TTP per organisation, TTPs talk to each other (Figure 3(b))."""
        org_to_ttp: Dict[str, Organisation] = {}
        for uri in self.organisations:
            ttp = self._new_ttp(f"urn:ttp:for:{uri.split(':')[-1]}", ca, clock, scheme, tsa)
            self.relays[ttp.uri] = install_relays(ttp.coordinator, relayed_protocols)
            org_to_ttp[uri] = ttp
        for uri, org in self.organisations.items():
            own_ttp = org_to_ttp[uri]
            for other_uri in self.organisations:
                if other_uri == uri:
                    continue
                # The organisation sends everything to its own TTP; its TTP
                # forwards to the destination organisation's TTP, which
                # finally delivers to the destination organisation.
                org.route_via(other_uri, own_ttp.coordinator.address)
                own_ttp.route_via(
                    other_uri, org_to_ttp[other_uri].coordinator.address
                )
                org_to_ttp[other_uri].route_via(
                    other_uri, self.organisations[other_uri].coordinator.address
                )

    def _install_arbitrator(
        self,
        ca: CertificateAuthority,
        clock: Clock,
        scheme: str,
        tsa: Optional[TimestampAuthority],
    ) -> None:
        """Add an offline TTP arbitrator for optimistic fair exchange."""
        uri = "urn:ttp:arbitrator"
        if uri in self.ttps:
            arbitrator_host = self.ttps[uri]
        else:
            arbitrator_host = self._new_ttp(uri, ca, clock, scheme, tsa)
        self.arbitrator = TTPArbitrator(
            party=arbitrator_host.uri, coordinator=arbitrator_host.coordinator
        )
        arbitrator_host.coordinator.register_handler(self.arbitrator, replace=True)
        for org in self.organisations.values():
            org.trust_key(
                arbitrator_host.uri,
                arbitrator_host.public_key,
                arbitrator_host.coordinator.address,
            )

    # -- access ------------------------------------------------------------------------

    @property
    def arbitrator_uri(self) -> Optional[str]:
        return self.arbitrator.party if self.arbitrator else None

    @property
    def retry_scheduler(self) -> Optional[RetryScheduler]:
        """The network's event-driven retry scheduler, when one is attached."""
        return self.network.retry_scheduler

    def organisation(self, uri: str) -> Organisation:
        try:
            return self.organisations[uri]
        except KeyError:
            raise ProtocolError(f"no organisation {uri!r} in this trust domain") from None

    def party_uris(self) -> List[str]:
        """Every party of the domain, including remotely hosted ones."""
        return sorted(set(self.organisations) | set(self.remote_parties))

    def share_object(
        self, object_id: str, initial_state, member_uris: Optional[List[str]] = None
    ) -> None:
        """Register a shared object on every *locally hosted* member's controller.

        Remote members of a wire domain register the object in their own
        process (their ``TrustDomain.create`` + ``share_object`` call); the
        full member list still includes them, so coordination fans out to
        them over the wire.
        """
        members = member_uris or self.party_uris()
        for uri in members:
            if uri in self.organisations:
                self.organisation(uri).share_object(object_id, initial_state, members)
            elif uri not in self.remote_parties:
                raise ProtocolError(f"no organisation {uri!r} in this trust domain")

    def recover_runs(self) -> Dict[str, Dict[str, str]]:
        """Replay every local organisation's run journal after a restart.

        Returns ``party uri -> {run_id: action}`` for the runs recovered
        (``"resumed"`` past the commit barrier, ``"aborted"`` before it).
        Deterministic -- organisations in sorted order, runs in run-id order
        -- and idempotent: recovered runs are settled in their journals.
        """
        return {
            uri: self.organisations[uri].recover_runs()
            for uri in sorted(self.organisations)
        }

    def total_relayed_messages(self) -> int:
        """Number of protocol messages that passed through TTP relays."""
        return sum(
            relay.relayed_messages
            for per_ttp in self.relays.values()
            for relay in per_ttp.values()
        )
