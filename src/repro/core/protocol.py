"""Protocol handler base classes and protocol-run bookkeeping.

"To execute specific protocols, and meet different application or platform
requirements, custom protocol handlers are registered with the coordinator
service.  The coordinator is responsible for mapping an incoming protocol
message to an appropriate handler." (Section 4.1.)

All protocol handlers provide ``process`` (one-way delivery) and
``process_request`` (request/response delivery) and use the coordinator to
send outgoing messages.  :class:`ProtocolRun` captures the per-run state an
interceptor keeps while the protocol executes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.core.messages import B2BProtocolMessage
from repro.errors import ProtocolError, ProtocolStateError

#: Per-run bounds on duplicate-suppression state.  The dedup window caps how
#: many message ids a run remembers (evicting oldest-first); the response
#: cache keeps the replies recorded for replay to transport duplicates.
#: Real runs see a handful of messages -- the bounds only matter under
#: sustained injected duplication, where they keep memory flat.
DEDUP_WINDOW = 256
RESPONSE_CACHE = 64


class RunStatus(Enum):
    """Lifecycle of a protocol run as seen by one party."""

    ACTIVE = "active"
    COMPLETED = "completed"
    ABORTED = "aborted"
    FAILED = "failed"


@dataclass
class ProtocolRun:
    """State kept by a handler for one protocol run."""

    run_id: str
    protocol: str
    initiator: str
    responder: str
    status: RunStatus = RunStatus.ACTIVE
    last_step: int = 0
    data: Dict[str, Any] = field(default_factory=dict)
    messages_seen: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Set-backed mirror of messages_seen for O(1) duplicate checks (the
        # list stays the public record, e.g. for recovered runs built with
        # pre-populated ids).
        self._seen_ids = set(self.messages_seen)
        self._responses: "OrderedDict[str, B2BProtocolMessage]" = OrderedDict()

    def record_message(self, message: B2BProtocolMessage) -> bool:
        """Record a message against this run.

        Returns ``False`` when the message id was already seen (a transport
        duplicate, or a sender's retry of a request whose reply was lost),
        which handlers use for at-most-once semantics.  The window is
        bounded at :data:`DEDUP_WINDOW` ids, oldest evicted first.
        """
        if message.message_id in self._seen_ids:
            return False
        self.messages_seen.append(message.message_id)
        self._seen_ids.add(message.message_id)
        while len(self.messages_seen) > DEDUP_WINDOW:
            self._seen_ids.discard(self.messages_seen.pop(0))
        self.last_step = max(self.last_step, message.step)
        return True

    def cache_response(
        self, message_id: str, response: B2BProtocolMessage
    ) -> None:
        """Remember the response produced for ``message_id`` for replay."""
        self._responses[message_id] = response
        while len(self._responses) > RESPONSE_CACHE:
            self._responses.popitem(last=False)

    def cached_response(self, message_id: str) -> Optional[B2BProtocolMessage]:
        """The recorded response for a duplicate request, if still cached."""
        return self._responses.get(message_id)

    def complete(self) -> None:
        self.status = RunStatus.COMPLETED

    def abort(self) -> None:
        self.status = RunStatus.ABORTED

    def fail(self) -> None:
        self.status = RunStatus.FAILED

    @property
    def finished(self) -> bool:
        return self.status is not RunStatus.ACTIVE


class RunRegistry:
    """Thread-safe registry of protocol runs for one handler."""

    def __init__(self) -> None:
        self._runs: Dict[str, ProtocolRun] = {}
        self._lock = threading.RLock()

    def create(self, run: ProtocolRun) -> ProtocolRun:
        with self._lock:
            if run.run_id in self._runs:
                raise ProtocolStateError(f"run {run.run_id!r} already exists")
            self._runs[run.run_id] = run
            return run

    def get_or_create(self, run: ProtocolRun) -> ProtocolRun:
        with self._lock:
            return self._runs.setdefault(run.run_id, run)

    def get(self, run_id: str) -> Optional[ProtocolRun]:
        with self._lock:
            return self._runs.get(run_id)

    def require(self, run_id: str) -> ProtocolRun:
        run = self.get(run_id)
        if run is None:
            raise ProtocolStateError(f"unknown protocol run {run_id!r}")
        return run

    def all_runs(self) -> List[ProtocolRun]:
        with self._lock:
            return list(self._runs.values())

    def active_runs(self) -> List[ProtocolRun]:
        return [run for run in self.all_runs() if not run.finished]


class B2BProtocolHandler:
    """Base class for protocol handlers registered with a coordinator.

    Concrete handlers implement :meth:`process` and/or
    :meth:`process_request`; the coordinator dispatches incoming messages to
    the handler registered under the message's ``protocol`` name.
    """

    #: protocol name this handler serves (used for coordinator registration)
    protocol: str = ""

    def __init__(self) -> None:
        self.runs = RunRegistry()

    def process(self, message: B2BProtocolMessage) -> None:
        """Handle a one-way protocol message."""
        raise ProtocolError(
            f"handler for {self.protocol!r} does not accept one-way messages"
        )

    def process_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Handle a request message and return the response message."""
        raise ProtocolError(
            f"handler for {self.protocol!r} does not accept request messages"
        )
