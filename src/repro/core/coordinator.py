"""The B2BCoordinator service.

"Each trusted interceptor provides a B2BCoordinator service for the exchange
of messages with other trusted interceptors.  In the J2EE implementation,
this service is exported as a remote object that remote trusted interceptors
make invocations on to deliver messages. ... Remote invocation of ``deliver``
results in delivery of the given message from the remote party ...
``deliverRequest`` is a convenience method that allows a remote party to
deliver a message and then to wait synchronously for a response. ... The
coordinator is responsible for mapping an incoming protocol message to an
appropriate handler.  The coordinator also provides access to local services
that are not protocol or platform specific." (Section 4.1.)

Routing: the coordinator holds a route table from party URI to the network
address of the coordinator that should receive messages for that party.  In
a *direct* trust domain each peer routes to the peer's own coordinator; in an
*inline TTP* domain peers route to the TTP, whose relay handler forwards the
message (Section 3.1, Figure 3).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clock import Clock, SystemClock
from repro.core.evidence import EvidenceBuilder, EvidenceVerifier
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import B2BProtocolHandler
from repro.errors import ProtocolError
from repro.observability.runtime import STATE as _OBS
from repro.persistence.audit_log import AuditLog
from repro.persistence.evidence_store import EvidenceStore
from repro.persistence.run_journal import RunJournal
from repro.persistence.state_store import StateStore
from repro.transport.delivery import RetryPolicy
from repro.transport.network import SimulatedNetwork
from repro.transport.rmi import RemoteCallBatch, RemoteInvoker

#: Name under which every coordinator is exported on its invoker.
COORDINATOR_OBJECT_NAME = "b2b-coordinator"


@dataclass
class LocalServices:
    """The generic, protocol-independent services a coordinator exposes.

    These correspond to the supporting infrastructure of Section 3.5:
    evidence generation and verification (credential management), evidence
    and state persistence, auditing, and a clock for timeouts.
    """

    evidence_builder: EvidenceBuilder
    evidence_verifier: EvidenceVerifier
    evidence_store: EvidenceStore
    state_store: StateStore
    audit_log: AuditLog
    clock: Clock = field(default_factory=SystemClock)
    #: Write-ahead journal of in-flight coordination runs; ``None`` keeps
    #: runs process-local (no durability, no recovery on restart).
    run_journal: Optional[RunJournal] = None


class B2BCoordinator:
    """Message exchange and handler dispatch for one trusted interceptor."""

    def __init__(
        self,
        party: str,
        invoker: RemoteInvoker,
        services: LocalServices,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.party = party
        self.services = services
        self._invoker = invoker
        self._retry_policy = retry_policy
        self._handlers: Dict[str, B2BProtocolHandler] = {}
        self._routes: Dict[str, str] = {}
        self._route_resolver: Optional[Callable[[str], str]] = None
        self._lock = threading.RLock()
        invoker.export(
            COORDINATOR_OBJECT_NAME, self, methods=["deliver", "deliver_request"]
        )

    # -- configuration ----------------------------------------------------------

    @property
    def address(self) -> str:
        """Network address where this coordinator can be reached."""
        return self._invoker.address

    @property
    def network(self) -> SimulatedNetwork:
        return self._invoker._network  # noqa: SLF001 - deliberate internal access

    def register_handler(self, handler: B2BProtocolHandler, replace: bool = False) -> None:
        """Register a protocol handler under its protocol name."""
        if not handler.protocol:
            raise ProtocolError("protocol handler has no protocol name")
        with self._lock:
            if handler.protocol in self._handlers and not replace:
                raise ProtocolError(
                    f"a handler for {handler.protocol!r} is already registered"
                )
            self._handlers[handler.protocol] = handler

    def handler_for(self, protocol: str) -> B2BProtocolHandler:
        with self._lock:
            handler = self._handlers.get(protocol)
        if handler is None:
            raise ProtocolError(
                f"coordinator of {self.party!r} has no handler for protocol {protocol!r}"
            )
        return handler

    def has_handler(self, protocol: str) -> bool:
        with self._lock:
            return protocol in self._handlers

    def registered_protocols(self) -> List[str]:
        with self._lock:
            return sorted(self._handlers)

    # -- routing -----------------------------------------------------------------

    def add_route(self, party: str, coordinator_address: str) -> None:
        """Route messages for ``party`` to ``coordinator_address``.

        In a direct trust domain the address is the party's own coordinator;
        in an inline-TTP domain it is the TTP's coordinator.
        """
        with self._lock:
            self._routes[party] = coordinator_address

    def set_route_resolver(self, resolver: Optional[Callable[[str], str]]) -> None:
        """Resolve unknown parties on demand instead of failing.

        ``resolver(party)`` is invoked on a :meth:`route_for` miss and
        returns the party's coordinator address (a lazy wire transport
        performs the credential introduction as a side effect -- see
        :meth:`WireTransport.ensure_party`).  The result is cached as an
        ordinary route.  The resolver must be thread-safe; a failure
        surfaces as the standard no-route :class:`ProtocolError` carrying
        the underlying error, so per-recipient fan-out isolation treats it
        like any unroutable party.
        """
        with self._lock:
            self._route_resolver = resolver

    def route_for(self, party: str) -> str:
        with self._lock:
            address = self._routes.get(party)
            resolver = self._route_resolver
        if address is None and resolver is not None:
            try:
                address = resolver(party)
            except ProtocolError:
                raise
            except Exception as error:  # noqa: BLE001 - taxonomy-normalising
                raise ProtocolError(
                    f"coordinator of {self.party!r} could not resolve a route "
                    f"to party {party!r}: {error}"
                ) from error
            if address is not None:
                self.add_route(party, address)
        if address is None:
            raise ProtocolError(
                f"coordinator of {self.party!r} has no route to party {party!r}"
            )
        return address

    def known_parties(self) -> List[str]:
        with self._lock:
            return sorted(self._routes)

    # -- incoming (exported remotely) ---------------------------------------------

    def deliver(self, message: B2BProtocolMessage) -> None:
        """Deliver a one-way protocol message from a remote party."""
        handler = self.handler_for(message.protocol)
        handler.process(message)

    def deliver_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Deliver a request message and return the handler's response."""
        handler = self.handler_for(message.protocol)
        return handler.process_request(message)

    # -- outgoing --------------------------------------------------------------------

    def _remote_coordinator(self, party: str):
        address = self.route_for(party)
        return self._invoker.proxy_for(
            address, COORDINATOR_OBJECT_NAME, retry_policy=self._retry_policy
        )

    def send(self, message: B2BProtocolMessage) -> None:
        """Send a one-way message to the recipient's (routed) coordinator."""
        message.reply_to = message.reply_to or self.address
        remote = self._remote_coordinator(message.recipient)
        remote.invoke("deliver", [message], {})

    def request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Send a request message and return the recipient's response."""
        message.reply_to = message.reply_to or self.address
        remote = self._remote_coordinator(message.recipient)
        return remote.invoke("deliver_request", [message], {})

    # -- batched fan-out ---------------------------------------------------------

    def _fan_out_async(
        self, messages: List[B2BProtocolMessage], method: str
    ) -> "CoordinatorFanOut":
        calls = []
        results: List[Tuple[Any, Optional[Exception]]] = [(None, None)] * len(messages)
        indices: List[int] = []
        run_id: Optional[str] = None
        tracer = _OBS.tracing
        span_kind = "request" if method == "deliver_request" else "send"
        spans: Dict[int, Any] = {}
        for index, message in enumerate(messages):
            message.reply_to = message.reply_to or self.address
            run_id = run_id or message.run_id
            try:
                address = self.route_for(message.recipient)
            except ProtocolError as error:
                results[index] = (None, error)
                if tracer is not None:
                    tracer.start_span(f"{span_kind}:{message.recipient}").end("error")
                continue
            if tracer is not None:
                spans[index] = tracer.start_span(f"{span_kind}:{message.recipient}")
            calls.append((address, COORDINATOR_OBJECT_NAME, method, [message], {}))
            indices.append(index)
        batch = None
        if calls:
            # A fan-out serves one protocol run; tagging its retry timers
            # with the run id lets a run-level abort withdraw them together.
            batch = self._invoker.call_batch_async(
                calls, retry_policy=self._retry_policy, run_id=run_id
            )
        fan_out = CoordinatorFanOut(results, indices, batch)
        if spans:
            def _end_spans(handle: "CoordinatorFanOut") -> None:
                outcomes = handle.results()
                for span_index, span in spans.items():
                    error = outcomes[span_index][1]
                    span.end("error" if error is not None else "ok")

            fan_out.add_done_callback(_end_spans)
        return fan_out

    def send_all(
        self, messages: List[B2BProtocolMessage]
    ) -> List[Optional[Exception]]:
        """Send one-way messages to each message's routed coordinator.

        The whole fan-out is delivered through one batched network call, so
        shared message content (tokens, a common proposal payload) is encoded
        once rather than once per recipient; under a parallel dispatch
        strategy the recipients process their deliveries concurrently.
        Returns one entry per message: ``None`` on delivery, the
        delivery/handler error otherwise.
        """
        return self.send_all_async(messages).errors()

    def request_all(
        self, messages: List[B2BProtocolMessage]
    ) -> List[Tuple[Optional[B2BProtocolMessage], Optional[Exception]]]:
        """Send request messages as one batched fan-out and collect replies.

        Returns one ``(response, error)`` pair per message, in order; at most
        one element of each pair is set.  Under a parallel dispatch strategy
        the peers validate and respond concurrently -- an 8-party proposal
        round pays one slowest-peer round trip instead of the sum -- so the
        registered protocol handlers must be thread-safe.
        """
        return self.request_all_async(messages).results()

    def send_all_async(
        self, messages: List[B2BProtocolMessage]
    ) -> "CoordinatorFanOut":
        """Start a one-way fan-out; returns its completion handle.

        With a retry scheduler on the network the handle completes as
        deliveries succeed (retries wait as timers, not sleeps); without one
        it is already complete on return.  Await it with
        :meth:`CoordinatorFanOut.errors`.
        """
        return self._fan_out_async(messages, "deliver")

    def request_all_async(
        self, messages: List[B2BProtocolMessage]
    ) -> "CoordinatorFanOut":
        """Start a request fan-out; await replies with
        :meth:`CoordinatorFanOut.results`."""
        return self._fan_out_async(messages, "deliver_request")

    def send_to_address(self, address: str, message: B2BProtocolMessage) -> None:
        """Send a one-way message to an explicit coordinator address.

        Used by relays and by handlers that learned the peer's coordinator
        address from a message's ``reply_to`` field.
        """
        message.reply_to = message.reply_to or self.address
        proxy = self._invoker.proxy_for(
            address, COORDINATOR_OBJECT_NAME, retry_policy=self._retry_policy
        )
        proxy.invoke("deliver", [message], {})

    def request_to_address(
        self, address: str, message: B2BProtocolMessage
    ) -> B2BProtocolMessage:
        """Send a request message to an explicit coordinator address."""
        message.reply_to = message.reply_to or self.address
        proxy = self._invoker.proxy_for(
            address, COORDINATOR_OBJECT_NAME, retry_policy=self._retry_policy
        )
        return proxy.invoke("deliver_request", [message], {})


class CoordinatorFanOut:
    """Completion handle of one coordinator fan-out (requests or one-ways).

    Wraps the underlying :class:`repro.transport.rmi.RemoteCallBatch`
    together with the route-resolution failures that never reached the
    network, preserving per-message result order.  Waiting on the handle
    drives the retry scheduler (when one is configured), so the proposer's
    thread services other runs' due retries while its own fan-out completes.
    """

    def __init__(
        self,
        results: List[Tuple[Any, Optional[Exception]]],
        indices: List[int],
        batch: Optional["RemoteCallBatch"],
    ) -> None:
        self._results = results
        self._indices = indices
        self._batch = batch
        self._resolved = batch is None

    def done(self) -> bool:
        return self._resolved or self._batch.done()

    def add_done_callback(
        self, callback: Callable[["CoordinatorFanOut"], None]
    ) -> None:
        """Invoke ``callback(self)`` once the whole fan-out has resolved.

        This is what lets a protocol phase *register a continuation* instead
        of blocking on :meth:`results`: an already-complete fan-out (no
        scheduler, or no failures) fires on the calling thread, otherwise the
        thread resolving the last delivery fires it.  Continuations should
        offload non-trivial work through :func:`repro.parallel.submit`.
        """
        if self._batch is None:
            callback(self)
            return
        self._batch.add_done_callback(lambda _batch: callback(self))

    def results(self) -> List[Tuple[Any, Optional[Exception]]]:
        """Wait for completion; one ``(response, error)`` pair per message."""
        if not self._resolved:
            for index, outcome in zip(self._indices, self._batch.results()):
                self._results[index] = outcome
            self._resolved = True
        return list(self._results)

    def errors(self) -> List[Optional[Exception]]:
        """Wait for completion; one ``None``-or-error entry per message."""
        return [error for _, error in self.results()]

    def cancel(self) -> None:
        """Withdraw the fan-out's pending retries (see RemoteCallBatch.cancel)."""
        if self._batch is not None:
            self._batch.cancel()
