"""Transactional non-repudiable information sharing.

Section 6 (future work): "Our preliminary work in this area shows how
B2BObjects can participate in distributed (JTA) transactions.  We intend to
build on this work to provide component-based transactional and
non-repudiable interaction."

This module provides the JTA-analogue: a :class:`SharedStateTransaction`
groups updates to several B2BObjects so that either every update is agreed
and applied or none of them (compensating already-applied updates when a
later one is vetoed).  The grouping is coordinated from the proposing
organisation; every individual update still runs the full non-repudiable
state-coordination protocol, so the evidence trail is preserved per object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.core.sharing import B2BObjectController, SharingOutcome
from repro.crypto.rng import new_unique_id
from repro.errors import TransactionAbortedError, TransactionError


class TransactionStatus(Enum):
    """Lifecycle of a shared-state transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled-back"
    FAILED = "failed"


@dataclass
class _StagedUpdate:
    object_id: str
    new_state: Any
    original_state: Any = None
    outcome: Optional[SharingOutcome] = None


@dataclass
class TransactionReport:
    """What happened when the transaction completed."""

    transaction_id: str
    status: TransactionStatus
    outcomes: Dict[str, SharingOutcome] = field(default_factory=dict)
    compensations: Dict[str, SharingOutcome] = field(default_factory=dict)
    failure_reason: str = ""


class SharedStateTransaction:
    """Groups several B2BObject updates into one all-or-nothing unit."""

    def __init__(self, controller: B2BObjectController, transaction_id: Optional[str] = None) -> None:
        self._controller = controller
        self.transaction_id = transaction_id or new_unique_id("tx")
        self.status = TransactionStatus.ACTIVE
        self._staged: List[_StagedUpdate] = []

    # -- staging ---------------------------------------------------------------------

    def stage_update(self, object_id: str, new_state: Any) -> None:
        """Add an update to the transaction (coordinated at commit time)."""
        self._require_active()
        if not self._controller.is_shared(object_id):
            raise TransactionError(
                f"{self._controller.party!r} does not share object {object_id!r}"
            )
        self._staged.append(_StagedUpdate(object_id=object_id, new_state=new_state))

    def stage_change(self, object_id: str, mutator) -> None:
        """Stage the state produced by applying ``mutator`` to the current state."""
        self._require_active()
        current = self._controller.get_state(object_id)
        new_state = mutator(current)
        if new_state is None:
            new_state = current
        self.stage_update(object_id, new_state)

    def staged_object_ids(self) -> List[str]:
        return [staged.object_id for staged in self._staged]

    def _require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.transaction_id} is {self.status.value}, not active"
            )

    # -- completion -------------------------------------------------------------------

    def commit(self) -> TransactionReport:
        """Coordinate every staged update; compensate and abort on any veto.

        Raises :class:`TransactionAbortedError` when the transaction rolls
        back; the raised error carries the :class:`TransactionReport` as its
        ``report`` attribute.
        """
        self._require_active()
        report = TransactionReport(
            transaction_id=self.transaction_id, status=TransactionStatus.ACTIVE
        )
        applied: List[_StagedUpdate] = []
        for staged in self._staged:
            staged.original_state = self._controller.get_state(staged.object_id)
            outcome = self._controller.propose_update(staged.object_id, staged.new_state)
            staged.outcome = outcome
            report.outcomes[staged.object_id] = outcome
            if not outcome.agreed:
                report.failure_reason = (
                    f"update to {staged.object_id!r} vetoed: {outcome.reason}"
                )
                self._compensate(applied, report)
                self.status = TransactionStatus.ROLLED_BACK
                report.status = self.status
                error = TransactionAbortedError(
                    f"transaction {self.transaction_id} rolled back: {report.failure_reason}"
                )
                error.report = report
                raise error
            applied.append(staged)
        self.status = TransactionStatus.COMMITTED
        report.status = self.status
        return report

    def rollback(self) -> TransactionReport:
        """Discard staged updates without coordinating anything."""
        self._require_active()
        self.status = TransactionStatus.ROLLED_BACK
        return TransactionReport(
            transaction_id=self.transaction_id, status=self.status
        )

    def _compensate(self, applied: List[_StagedUpdate], report: TransactionReport) -> None:
        """Propose the original state back for every already-applied update."""
        for staged in reversed(applied):
            compensation = self._controller.propose_update(
                staged.object_id, staged.original_state
            )
            report.compensations[staged.object_id] = compensation
            if not compensation.agreed:
                # Compensation refused: surface it, the evidence trail shows
                # exactly which state each party agreed to.
                report.failure_reason += (
                    f"; compensation of {staged.object_id!r} also vetoed: "
                    f"{compensation.reason}"
                )


class TransactionManager:
    """Factory/registry for shared-state transactions of one organisation."""

    def __init__(self, controller: B2BObjectController) -> None:
        self._controller = controller
        self._transactions: Dict[str, SharedStateTransaction] = {}

    def begin(self) -> SharedStateTransaction:
        """Start a new transaction."""
        transaction = SharedStateTransaction(self._controller)
        self._transactions[transaction.transaction_id] = transaction
        return transaction

    def get(self, transaction_id: str) -> SharedStateTransaction:
        try:
            return self._transactions[transaction_id]
        except KeyError:
            raise TransactionError(f"unknown transaction {transaction_id!r}") from None

    def active_transactions(self) -> List[SharedStateTransaction]:
        return [
            transaction
            for transaction in self._transactions.values()
            if transaction.status is TransactionStatus.ACTIVE
        ]
