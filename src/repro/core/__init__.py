"""The paper's primary contribution: non-repudiation middleware.

This package implements the trusted-interceptor abstraction (Section 3) and
its component-middleware realisation (Section 4):

* :mod:`repro.core.evidence` -- non-repudiation tokens and their verification.
* :mod:`repro.core.messages` -- ``B2BProtocolMessage``.
* :mod:`repro.core.coordinator` -- the ``B2BCoordinator`` service.
* :mod:`repro.core.protocol` -- protocol handler base classes and run state.
* :mod:`repro.core.invocation` -- non-repudiable service invocation
  (NR-Invocation, Section 3.2 / 4.2).
* :mod:`repro.core.nr_interceptors` -- the client/server NR interceptors that
  plug into the component container.
* :mod:`repro.core.sharing` -- non-repudiable information sharing
  (NR-Sharing / B2BObjects, Section 3.3 / 4.3).
* :mod:`repro.core.validators` -- application-specific validation listeners.
* :mod:`repro.core.trust_domain` / :mod:`repro.core.ttp` -- direct, inline-TTP
  and distributed-TTP deployments (Section 3.1, Figure 3).
* :mod:`repro.core.fair_exchange` -- TTP-supported optimistic fair exchange.
* :mod:`repro.core.dispute` -- dispute resolution over stored evidence.
* :mod:`repro.core.contracts` -- contract monitoring (Section 6 future work).
* :mod:`repro.core.transactions` -- transactional sharing (Section 6).
* :mod:`repro.core.organisation` -- the per-organisation facade.
"""

from repro.core.evidence import EvidenceBuilder, EvidenceToken, EvidenceVerifier, TokenType
from repro.core.messages import B2BProtocolMessage
from repro.core.coordinator import B2BCoordinator
from repro.core.protocol import B2BProtocolHandler, ProtocolRun, RunStatus
from repro.core.organisation import Organisation
from repro.core.invocation import B2BInvocation, B2BInvocationHandler, InvocationOutcome
from repro.core.sharing import B2BObjectController, SharingOutcome
from repro.core.validators import (
    CallableValidator,
    CompositeValidator,
    StateValidator,
    ValidationDecision,
)
from repro.core.trust_domain import DeploymentStyle, TrustDomain
from repro.core.dispute import DisputeClaim, DisputeResolver, Verdict

__all__ = [
    "B2BCoordinator",
    "B2BInvocation",
    "B2BInvocationHandler",
    "B2BObjectController",
    "B2BProtocolHandler",
    "B2BProtocolMessage",
    "CallableValidator",
    "CompositeValidator",
    "DeploymentStyle",
    "DisputeClaim",
    "DisputeResolver",
    "EvidenceBuilder",
    "EvidenceToken",
    "EvidenceVerifier",
    "InvocationOutcome",
    "Organisation",
    "ProtocolRun",
    "RunStatus",
    "SharingOutcome",
    "StateValidator",
    "TokenType",
    "TrustDomain",
    "ValidationDecision",
    "Verdict",
]
