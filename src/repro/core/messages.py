"""Protocol messages exchanged between trusted interceptors.

"A ``B2BProtocolMessage`` is an interface to information common to
non-repudiation protocol messages -- request (protocol run) identifier,
sender, protocol step, signed content, payload etc.  Concrete implementations
of ``B2BProtocolMessage`` meet protocol-specific requirements."
(Section 4.1.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import codec
from repro.core.evidence import EvidenceToken
from repro.crypto.rng import new_unique_id
from repro.errors import ProtocolError


@dataclass
class B2BProtocolMessage:
    """One message of a non-repudiation protocol run.

    Attributes:
        message_id: unique id of this message.
        run_id: the protocol-run (request) identifier binding steps together.
        protocol: name of the protocol this message belongs to (used by the
            coordinator to select a handler).
        step: protocol step number.
        sender / recipient: party URIs.
        reply_to: network address of the sender's coordinator, so the
            recipient can deliver subsequent protocol messages ("a reference
            to its local coordinator service", Section 4.2).
        payload: protocol-specific content (the request, the response, the
            proposed state...).
        tokens: evidence tokens carried by this message.
        attributes: free-form extra fields for concrete protocols.
    """

    run_id: str
    protocol: str
    step: int
    sender: str
    recipient: str
    payload: Any = None
    tokens: List[EvidenceToken] = field(default_factory=list)
    reply_to: str = ""
    attributes: Dict[str, Any] = field(default_factory=dict)
    message_id: str = field(default_factory=lambda: new_unique_id("msg"))

    def token_of_type(self, token_type: str) -> Optional[EvidenceToken]:
        """Return the first carried token of the given type, if any."""
        for token in self.tokens:
            if token.token_type == token_type:
                return token
        return None

    def require_token(self, token_type: str) -> EvidenceToken:
        """Return the carried token of ``token_type`` or raise."""
        token = self.token_of_type(token_type)
        if token is None:
            raise ProtocolError(
                f"message {self.message_id!r} (step {self.step} of {self.protocol!r}) "
                f"does not carry a {token_type!r} token"
            )
        return token

    # -- encode-once support -----------------------------------------------------
    #
    # A message is canonically encoded at most once: the encoding is cached
    # on the instance and dropped automatically when any public field is
    # reassigned.  Payloads, tokens and attribute values are treated as
    # immutable once attached (the encode-once invariant); pre-canonicalised
    # payloads (codec.Encoded) and the tokens' own cached encodings are
    # spliced into the output instead of being re-walked.

    def __setattr__(self, name: str, value: Any) -> None:
        if not name.startswith("_") and "_data_encoded" in self.__dict__:
            del self.__dict__["_data_encoded"]
            self.__dict__.pop("_canonical_encoded", None)
        object.__setattr__(self, name, value)

    def data_encoded(self) -> codec.Encoded:
        """Canonical encoding of :meth:`to_dict`, computed once per message."""
        encoded = self.__dict__.get("_data_encoded")
        if encoded is None:
            body = {
                "message_id": self.message_id,
                "run_id": self.run_id,
                "protocol": self.protocol,
                "step": self.step,
                "sender": self.sender,
                "recipient": self.recipient,
                "reply_to": self.reply_to,
                "payload": self.payload,
                "tokens": [token.data_encoded() for token in self.tokens],
                "attributes": self.attributes,
            }
            encoded = codec.Encoded(codec.encode_text(body))
            self.__dict__["_data_encoded"] = encoded
        return encoded

    def canonical_encoded(self) -> codec.Encoded:
        """Canonical object-tagged encoding, spliced into network envelopes."""
        encoded = self.__dict__.get("_canonical_encoded")
        if encoded is None:
            encoded = codec.Encoded(
                '{"__object__":"%s","data":%s}'
                % (type(self).__name__, self.data_encoded().text)
            )
            self.__dict__["_canonical_encoded"] = encoded
        return encoded

    def encoded_size(self) -> int:
        """Canonical size of the message in bytes (for overhead accounting)."""
        return self.data_encoded().size

    def to_dict(self) -> Dict[str, Any]:
        return {
            "message_id": self.message_id,
            "run_id": self.run_id,
            "protocol": self.protocol,
            "step": self.step,
            "sender": self.sender,
            "recipient": self.recipient,
            "reply_to": self.reply_to,
            "payload": codec.to_jsonable(self.payload),
            "tokens": [token.to_dict() for token in self.tokens],
            "attributes": codec.to_jsonable(self.attributes),
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], revived: bool = False
    ) -> "B2BProtocolMessage":
        """Rebuild a message from its dictionary form.

        ``revived=True`` marks input whose nested values already went
        through :func:`codec.from_jsonable` (the wire transport revives
        frame bodies bottom-up), skipping a second -- guaranteed no-op --
        walk over the payload and attributes on the receive hot path.
        """
        decode = (lambda value: value) if revived else codec.from_jsonable
        return cls(
            message_id=payload["message_id"],
            run_id=payload["run_id"],
            protocol=payload["protocol"],
            step=payload["step"],
            sender=payload["sender"],
            recipient=payload["recipient"],
            reply_to=payload.get("reply_to", ""),
            payload=decode(payload.get("payload")),
            tokens=[
                EvidenceToken.from_dict(token, revived=revived)
                for token in payload.get("tokens", [])
            ],
            attributes=decode(payload.get("attributes", {})),
        )
