"""The NR interceptors that plug into the component container.

"We add an extra interceptor -- the JBoss NR interceptor -- to both client
and server invocation paths.  These NR interceptors are responsible for
triggering execution of a non-repudiation protocol that achieves the
exchange described in Section 3.2." (Section 4.2.)

* :class:`ClientNRInterceptor` sits first in the client-side proxy chain.
  For components that require non-repudiation it takes control of the
  invocation, obtains a :class:`~repro.core.invocation.B2BInvocationHandler`
  for the configured (platform, protocol) pair and runs the protocol instead
  of letting the plain invocation proceed.
* :class:`ServerNRInterceptor` sits first in the server-side chain of
  NR-enabled components.  Requests arriving through the NR protocol carry the
  run id in their context and are passed through (and audited); plain
  requests that bypass the protocol are rejected, which is how the server
  "controls activation of non-repudiation".
* :func:`nr_interceptor_provider` is the deployment hook the container
  consults so that components whose descriptor sets ``non_repudiation`` get
  the server-side interceptor automatically.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.container.component import ComponentDescriptor
from repro.container.container import Container
from repro.container.interceptor import (
    Interceptor,
    Invocation,
    InvocationResult,
    NextInterceptor,
)
from repro.core.coordinator import B2BCoordinator
from repro.core.invocation import B2BInvocation, B2BInvocationHandler
from repro.errors import ProtocolError
from repro.persistence.audit_log import AuditLog


class ClientNRInterceptor(Interceptor):
    """Client-side NR interceptor (first on the outgoing path).

    ``target_party`` is the organisation hosting the invoked component;
    ``platform`` and ``protocol`` select the invocation-handler
    implementation, mirroring
    ``B2BInvocationHandler.getInstance("JBossJ2EE", "direct")``.
    """

    name = "nr-client"

    def __init__(
        self,
        party: str,
        coordinator: B2BCoordinator,
        target_party: str,
        platform: str = "python",
        protocol: str = "direct",
        consume_response: bool = True,
    ) -> None:
        self.party = party
        self._coordinator = coordinator
        self._target_party = target_party
        self._platform = platform
        self._protocol = protocol
        self._consume_response = consume_response

    def invoke(
        self, invocation: Invocation, next_interceptor: NextInterceptor
    ) -> InvocationResult:
        handler = B2BInvocationHandler.get_instance(
            self._platform, self._protocol, self.party, self._coordinator
        )
        b2b_invocation = B2BInvocation(
            target_party=self._target_party,
            invocation=invocation,
            platform=self._platform,
            protocol=self._protocol,
            consume_response=self._consume_response,
        )
        outcome = handler.invoke_with_evidence(b2b_invocation)
        context = dict(invocation.context)
        context["nr.run_id"] = outcome.run_id
        context["nr.status"] = outcome.status.value
        return InvocationResult(
            value=outcome.value,
            exception=outcome.exception,
            exception_type=outcome.exception_type,
            context=context,
        )


class ServerNRInterceptor(Interceptor):
    """Server-side NR interceptor (first on the incoming path).

    Lets through invocations that arrived via the NR protocol (their context
    carries ``nr.run_id``) and rejects plain invocations on NR-protected
    components, unless the deployment explicitly allows local callers via
    ``allow_local``.
    """

    name = "nr-server"

    def __init__(
        self,
        party: str,
        component_name: str,
        audit_log: Optional[AuditLog] = None,
        allow_local: bool = False,
    ) -> None:
        self.party = party
        self._component_name = component_name
        self._audit_log = audit_log
        self._allow_local = allow_local

    def invoke(
        self, invocation: Invocation, next_interceptor: NextInterceptor
    ) -> InvocationResult:
        run_id = invocation.context.get("nr.run_id")
        local_call = invocation.context.get("nr.local", False)
        if run_id is None and not (self._allow_local and local_call):
            return InvocationResult(
                exception=(
                    f"component {self._component_name!r} requires non-repudiable "
                    f"invocation; plain invocation rejected"
                ),
                exception_type=ProtocolError.__name__,
                context=dict(invocation.context),
            )
        result = next_interceptor(invocation)
        if self._audit_log is not None:
            self._audit_log.append(
                category="nr.invocation.dispatch",
                subject=run_id or "local",
                details={
                    "component": invocation.component,
                    "method": invocation.method,
                    "caller": invocation.caller,
                    "succeeded": result.succeeded,
                },
            )
        return result


def nr_interceptor_provider(
    party: str, audit_log: Optional[AuditLog] = None
) -> Callable[[Container, ComponentDescriptor], Optional[Interceptor]]:
    """Container deployment hook adding the server NR interceptor when required.

    The application programmer "is responsible for identifying, in a bean's
    deployment descriptor, when non-repudiation is required" (Section 4.2);
    this provider reads that flag and contributes the interceptor.
    """

    def provider(
        container: Container, descriptor: ComponentDescriptor
    ) -> Optional[Interceptor]:
        if not descriptor.non_repudiation:
            return None
        allow_local = bool(descriptor.metadata.get("nr_allow_local", False))
        return ServerNRInterceptor(
            party=party,
            component_name=descriptor.name,
            audit_log=audit_log,
            allow_local=allow_local,
        )

    return provider
