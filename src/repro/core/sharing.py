"""Non-repudiable information sharing (NR-Sharing / B2BObjects).

Implements the state-coordination abstraction of Section 3.3 and its
component-based realisation of Section 4.3 (Figure 8):

* each organisation holds a local replica of the shared information,
  encapsulated by a :class:`B2BObjectController`;
* when a party proposes an update, its controller runs a non-repudiable state
  coordination protocol with every other member of the sharing group:

  1. the proposal, with evidence of origin (``NRO_UPDATE``), is delivered to
     every peer;
  2. each peer independently validates the proposal using locally configured,
     application-specific validators and returns a signed decision
     (``NR_DECISION``);
  3. the collective outcome (``NR_OUTCOME``), together with every peer's
     decision evidence, is distributed to all members so that everyone has a
     consistent, verifiable view of the agreed state;

* the update is applied everywhere if and only if agreement was unanimous;
  otherwise every replica stays in the state prior to the proposal;
* non-repudiable *connect* and *disconnect* protocols govern changes to the
  membership of the sharing group.

The :class:`B2BObjectInterceptor` traps invocations on entity components
marked as B2BObjects so that "the enhancement of an entity bean to become a
B2BObject is effectively transparent to the local EJB client and its
application interface".
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import codec
from repro.container.component import ComponentDescriptor
from repro.container.container import Container
from repro.container.interceptor import (
    Interceptor,
    Invocation,
    InvocationResult,
    NextInterceptor,
)
from repro.core.coordinator import B2BCoordinator
from repro.core.evidence import EvidenceToken, TokenType, payload_digest
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import B2BProtocolHandler, ProtocolRun
from repro.core.validators import (
    CompositeValidator,
    StateValidator,
    ValidationContext,
    ValidationDecision,
)
from repro.crypto.rng import new_unique_id
from repro.errors import (
    CoordinationError,
    EvidenceVerificationError,
    MembershipError,
    ProtocolError,
)
from repro.membership.service import Member, MembershipService

#: Protocol name for state and membership coordination.
NR_SHARING_PROTOCOL = "nr-sharing"

AUDIT_CATEGORY_SHARING = "nr.sharing"

#: Actions carried in message attributes.
ACTION_PROPOSE = "propose"
ACTION_OUTCOME = "outcome"
ACTION_MEMBERSHIP_PROPOSE = "membership-propose"
ACTION_MEMBERSHIP_OUTCOME = "membership-outcome"


@dataclass
class SharingOutcome:
    """Result of one coordination round, with the evidence gathered."""

    run_id: str
    object_id: str
    agreed: bool
    new_version: Optional[int]
    proposer: str
    decisions: Dict[str, ValidationDecision] = field(default_factory=dict)
    evidence: Dict[str, EvidenceToken] = field(default_factory=dict)
    reason: str = ""

    def require_agreed(self) -> None:
        """Raise :class:`CoordinationError` unless the update was agreed."""
        if not self.agreed:
            rejecting = [
                party
                for party, decision in self.decisions.items()
                if not decision.accepted
            ]
            raise CoordinationError(
                f"update to {self.object_id!r} was not agreed "
                f"(vetoed by {', '.join(rejecting) or 'unknown'}): {self.reason}"
            )


@dataclass
class _SharedObject:
    """Local bookkeeping for one shared object.

    Outside a rollup, ``state`` is held as its canonical encoding
    (:class:`repro.codec.Encoded`), so the digest and byte form of the agreed
    state are computed exactly once per agreed version -- the
    content-addressed-version idiom.  During a rollup the tentative state is
    kept raw, since it mutates without coordination.
    """

    object_id: str
    state: Any
    version: int = 0
    validators: CompositeValidator = field(default_factory=CompositeValidator)
    bound_instance: Any = None
    rollup_depth: int = 0
    rollup_base_state: Any = None

    def state_copy(self) -> Any:
        """A defensive plain copy of the state, decoded from canonical bytes."""
        return codec.decode(codec.encode(self.state))


class B2BObjectController:
    """Local interface to configuration, initiation and control of sharing.

    One controller per organisation manages every B2BObject the organisation
    shares.  It is "the local interface to configuration, initiation and
    control of information sharing" (Section 4.3).
    """

    def __init__(
        self,
        party: str,
        coordinator: B2BCoordinator,
        membership: Optional[MembershipService] = None,
    ) -> None:
        self.party = party
        self._coordinator = coordinator
        self.membership = membership or MembershipService()
        self._objects: Dict[str, _SharedObject] = {}
        self._lock = threading.RLock()
        self._handler = SharingProtocolHandler(self)
        if not coordinator.has_handler(NR_SHARING_PROTOCOL):
            coordinator.register_handler(self._handler)

    # -- configuration -----------------------------------------------------------

    @property
    def coordinator(self) -> B2BCoordinator:
        return self._coordinator

    @property
    def handler(self) -> "SharingProtocolHandler":
        return self._handler

    def register_object(
        self,
        object_id: str,
        initial_state: Any,
        member_uris: List[str],
        validators: Optional[List[StateValidator]] = None,
    ) -> None:
        """Register a shared object and its sharing group on this controller.

        The initial registration is part of deployment/configuration (like
        identifying an entity bean as a B2BObject in its descriptor);
        subsequent membership changes go through the non-repudiable connect
        and disconnect protocols.
        """
        with self._lock:
            if object_id in self._objects:
                raise CoordinationError(f"object {object_id!r} is already registered")
            if self.party not in member_uris:
                raise MembershipError(
                    f"{self.party!r} must be a member of the group sharing {object_id!r}"
                )
            shared = _SharedObject(
                object_id=object_id, state=codec.canonicalize(initial_state)
            )
            for validator in validators or []:
                shared.validators.add(validator)
            self._objects[object_id] = shared
        if not self.membership.has_group(object_id):
            self.membership.create_group(
                object_id, [Member(uri=uri) for uri in member_uris]
            )
        self._coordinator.services.state_store.record_version(object_id, shared.state)
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=object_id,
            details={"event": "object-registered", "members": sorted(member_uris)},
        )

    def add_validator(self, object_id: str, validator: StateValidator) -> None:
        """Attach an application-specific validation listener to an object."""
        self._shared(object_id).validators.add(validator)

    def bind_component(self, object_id: str, instance: Any) -> None:
        """Bind a local entity component whose state mirrors the replica.

        The instance must expose ``get_state()`` / ``set_state(state)``; the
        controller pushes agreed state into it so that the component and the
        replica can never diverge.
        """
        for required in ("get_state", "set_state"):
            if not callable(getattr(instance, required, None)):
                raise CoordinationError(
                    f"component bound to {object_id!r} must implement {required}()"
                )
        shared = self._shared(object_id)
        with self._lock:
            shared.bound_instance = instance
            instance.set_state(shared.state_copy())

    # -- queries --------------------------------------------------------------------

    def _shared(self, object_id: str) -> _SharedObject:
        with self._lock:
            try:
                return self._objects[object_id]
            except KeyError:
                raise CoordinationError(
                    f"{self.party!r} does not share an object {object_id!r}"
                ) from None

    def is_shared(self, object_id: str) -> bool:
        with self._lock:
            return object_id in self._objects

    def object_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._objects)

    def get_state(self, object_id: str) -> Any:
        """Return (a copy of) the current agreed state of the object."""
        return self._shared(object_id).state_copy()

    def get_version(self, object_id: str) -> int:
        return self._shared(object_id).version

    def state_digest(self, object_id: str) -> bytes:
        """Digest of the current agreed state (comparable across parties)."""
        return payload_digest(self._shared(object_id).state)

    def members(self, object_id: str) -> List[str]:
        return self.membership.member_uris(object_id)

    def peers(self, object_id: str) -> List[str]:
        return sorted(self.membership.peers_of(object_id, self.party))

    # -- proposing updates -------------------------------------------------------------

    def propose_update(self, object_id: str, new_state: Any) -> SharingOutcome:
        """Propose ``new_state`` for ``object_id`` and coordinate agreement.

        Returns the :class:`SharingOutcome`; the update is applied locally
        (and at every peer) only when agreement was unanimous.
        """
        shared = self._shared(object_id)
        if shared.rollup_depth > 0:
            # Inside a rollup: defer coordination, just update the tentative state.
            with self._lock:
                shared.state = new_state
            return SharingOutcome(
                run_id="(rollup-deferred)",
                object_id=object_id,
                agreed=True,
                new_version=shared.version,
                proposer=self.party,
                reason="deferred until rollup completes",
            )

        services = self._coordinator.services
        run_id = new_unique_id("share")
        base_version = shared.version
        # Encode once: the proposed state and the proposal envelope are
        # canonicalised here and their (bytes, digest, size) shared by every
        # evidence token, per-peer message and traffic account downstream.
        proposal = codec.canonicalize(
            {
                "object_id": object_id,
                "proposer": self.party,
                "base_version": base_version,
                "proposed_state": codec.canonicalize(new_state),
            }
        )
        nro_update = services.evidence_builder.build(
            token_type=TokenType.NRO_UPDATE,
            run_id=run_id,
            step=1,
            recipient=object_id,
            payload=proposal,
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=nro_update.token_type,
            token=nro_update,
            role=services.evidence_store.ROLE_GENERATED,
        )

        # Phase 1: collect signed decisions from every peer through one
        # batched fan-out; the shared proposal body is encoded exactly once.
        peers = self.peers(object_id)
        decisions: Dict[str, ValidationDecision] = {}
        decision_tokens: Dict[str, EvidenceToken] = {}
        reason = ""
        proposal_messages = [
            B2BProtocolMessage(
                run_id=run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=1,
                sender=self.party,
                recipient=peer,
                payload=proposal,
                tokens=[nro_update],
                attributes={"action": ACTION_PROPOSE},
                reply_to=self._coordinator.address,
            )
            for peer in peers
        ]
        # The fan-out completes through per-peer delivery futures: while a
        # flaky link waits out its backoff as a scheduler timer, this thread
        # drives other runs' retries instead of sleeping (event-driven mode).
        decision_fan_out = self._coordinator.request_all_async(proposal_messages)
        for peer, (response, error) in zip(peers, decision_fan_out.results()):
            if error is not None:
                decisions[peer] = ValidationDecision(
                    accepted=False,
                    reason=f"peer unreachable: {error}",
                    validator="coordinator",
                )
                reason = reason or f"peer {peer} unreachable"
                continue
            decision, token = self._verify_decision(run_id, peer, proposal, response)
            decisions[peer] = decision
            if token is not None:
                decision_tokens[peer] = token
                services.evidence_store.store(
                    run_id=run_id,
                    token_type=token.token_type,
                    token=token,
                    role=services.evidence_store.ROLE_RECEIVED,
                )
            if not decision.accepted and not reason:
                reason = decision.reason

        agreed = all(decision.accepted for decision in decisions.values())
        new_version = base_version + 1 if agreed else None

        # Phase 2: distribute the collective decision to every member.
        outcome = codec.canonicalize(
            {
                "object_id": object_id,
                "proposer": self.party,
                "agreed": agreed,
                "base_version": base_version,
                "new_version": new_version,
                "proposed_state_digest": proposal.digest.hex(),
                "decisions": {
                    party: decision.to_dict() for party, decision in decisions.items()
                },
            }
        )
        nr_outcome = services.evidence_builder.build(
            token_type=TokenType.NR_OUTCOME,
            run_id=run_id,
            step=3,
            recipient=object_id,
            payload=outcome,
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=nr_outcome.token_type,
            token=nr_outcome,
            role=services.evidence_store.ROLE_GENERATED,
        )
        outcome_tokens = [nr_outcome] + list(decision_tokens.values())
        outcome_messages = [
            B2BProtocolMessage(
                run_id=run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=3,
                sender=self.party,
                recipient=peer,
                payload=outcome,
                tokens=outcome_tokens,
                attributes={"action": ACTION_OUTCOME, "proposal": proposal},
                reply_to=self._coordinator.address,
            )
            for peer in peers
        ]
        # A peer that is temporarily unreachable misses the outcome
        # notification; the proposer still holds the signed outcome and every
        # decision, so the peer can recover the result later.  A
        # failed-to-validate peer cannot have agreed, so the outcome for it
        # is never an apply.
        outcome_fan_out = self._coordinator.send_all_async(outcome_messages)
        undelivered_outcomes = [
            peer
            for peer, error in zip(peers, outcome_fan_out.errors())
            if error is not None
        ]

        if agreed:
            self._apply_update(object_id, proposal["proposed_state"], new_version)
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=run_id,
            details={
                "event": "update-coordinated",
                "object_id": object_id,
                "agreed": agreed,
                "new_version": new_version,
                "decisions": {
                    party: decision.accepted for party, decision in decisions.items()
                },
                "undelivered_outcomes": undelivered_outcomes,
            },
        )
        evidence = {TokenType.NRO_UPDATE.value: nro_update, TokenType.NR_OUTCOME.value: nr_outcome}
        for party, token in decision_tokens.items():
            evidence[f"{TokenType.NR_DECISION.value}:{party}"] = token
        return SharingOutcome(
            run_id=run_id,
            object_id=object_id,
            agreed=agreed,
            new_version=new_version,
            proposer=self.party,
            decisions=decisions,
            evidence=evidence,
            reason=reason,
        )

    def apply_change(
        self, object_id: str, mutator: Callable[[Any], Any]
    ) -> SharingOutcome:
        """Propose the state produced by applying ``mutator`` to the current state."""
        current = self.get_state(object_id)
        new_state = mutator(current)
        if new_state is None:
            new_state = current
        return self.propose_update(object_id, new_state)

    def _verify_decision(
        self,
        run_id: str,
        peer: str,
        proposal_payload: Dict[str, Any],
        response: B2BProtocolMessage,
    ) -> tuple:
        """Verify a peer's decision message; invalid evidence counts as a veto."""
        services = self._coordinator.services
        decision_payload = response.payload or {}
        token = response.token_of_type(TokenType.NR_DECISION.value)
        if token is None:
            return (
                ValidationDecision(
                    accepted=False,
                    reason="peer returned no decision evidence",
                    validator="coordinator",
                ),
                None,
            )
        try:
            services.evidence_verifier.require_valid(
                token,
                expected_type=TokenType.NR_DECISION,
                expected_run_id=run_id,
                expected_payload=decision_payload,
                expected_issuer=peer,
            )
        except EvidenceVerificationError as error:
            return (
                ValidationDecision(
                    accepted=False,
                    reason=f"decision evidence invalid: {error}",
                    validator="coordinator",
                ),
                None,
            )
        return (
            ValidationDecision(
                accepted=bool(decision_payload.get("accepted", False)),
                reason=decision_payload.get("reason", ""),
                validator=decision_payload.get("validator", peer),
            ),
            token,
        )

    # -- applying agreed updates ----------------------------------------------------------

    def _apply_update(self, object_id: str, new_state: Any, new_version: int) -> None:
        shared = self._shared(object_id)
        agreed_state = codec.canonicalize(new_state)
        with self._lock:
            shared.state = agreed_state
            shared.version = new_version
            if shared.bound_instance is not None:
                shared.bound_instance.set_state(shared.state_copy())
        self._coordinator.services.state_store.record_version(object_id, agreed_state)

    def revert_component_state(self, object_id: str) -> None:
        """Push the agreed replica state back into the bound component."""
        shared = self._shared(object_id)
        with self._lock:
            if shared.bound_instance is not None:
                shared.bound_instance.set_state(shared.state_copy())

    # -- rollup -------------------------------------------------------------------------

    @contextmanager
    def rollup(self, object_id: str) -> Iterator[None]:
        """Roll several operations into a single coordination event.

        "Optionally, the application programmer may specify that a method in
        the application interface should result in a series of operations on
        an underlying B2BObject bean being rolled-up into a single
        coordination event." (Section 4.3.)
        """
        shared = self._shared(object_id)
        with self._lock:
            if shared.rollup_depth == 0:
                shared.rollup_base_state = shared.state_copy()
            shared.rollup_depth += 1
        try:
            yield
        except Exception:
            with self._lock:
                shared.rollup_depth -= 1
                if shared.rollup_depth == 0:
                    shared.state = shared.rollup_base_state
                    shared.rollup_base_state = None
                    self.revert_component_state(object_id)
            raise
        with self._lock:
            shared.rollup_depth -= 1
            finished = shared.rollup_depth == 0
            tentative_state = shared.state_copy()
            base_state = shared.rollup_base_state
        if not finished:
            return
        with self._lock:
            # Coordination happens against the pre-rollup agreed state.
            shared.state = base_state
            shared.rollup_base_state = None
        outcome = self.propose_update(object_id, tentative_state)
        if not outcome.agreed:
            self.revert_component_state(object_id)
            outcome.require_agreed()

    def in_rollup(self, object_id: str) -> bool:
        return self._shared(object_id).rollup_depth > 0

    # -- membership (connect / disconnect protocols) -----------------------------------------

    def connect_member(self, object_id: str, new_member: str) -> SharingOutcome:
        """Run the non-repudiable connect protocol to admit ``new_member``."""
        return self._coordinate_membership(object_id, "connect", new_member)

    def disconnect_member(self, object_id: str, member: str) -> SharingOutcome:
        """Run the non-repudiable disconnect protocol to remove ``member``."""
        return self._coordinate_membership(object_id, "disconnect", member)

    def _coordinate_membership(
        self, object_id: str, action: str, member: str
    ) -> SharingOutcome:
        services = self._coordinator.services
        shared = self._shared(object_id)
        run_id = new_unique_id("member")
        current_members = self.members(object_id)
        if action == "connect" and member in current_members:
            raise MembershipError(f"{member!r} already shares {object_id!r}")
        if action == "disconnect" and member not in current_members:
            raise MembershipError(f"{member!r} does not share {object_id!r}")

        proposal = codec.canonicalize(
            {
                "object_id": object_id,
                "proposer": self.party,
                "membership_action": action,
                "member": member,
                "current_members": current_members,
                "state_digest": self.state_digest(object_id).hex(),
                "version": shared.version,
            }
        )
        nro_update = services.evidence_builder.build(
            token_type=TokenType.NR_MEMBERSHIP,
            run_id=run_id,
            step=1,
            recipient=object_id,
            payload=proposal,
        )
        services.evidence_store.store(
            run_id=run_id,
            token_type=nro_update.token_type,
            token=nro_update,
            role=services.evidence_store.ROLE_GENERATED,
        )

        decisions: Dict[str, ValidationDecision] = {}
        decision_tokens: Dict[str, EvidenceToken] = {}
        # The affected member only votes on its own disconnection, not on its
        # own admission (it is not yet part of the trust domain for connect).
        voters = [peer for peer in self.peers(object_id) if peer != member or action == "disconnect"]
        proposal_messages = [
            B2BProtocolMessage(
                run_id=run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=1,
                sender=self.party,
                recipient=peer,
                payload=proposal,
                tokens=[nro_update],
                attributes={"action": ACTION_MEMBERSHIP_PROPOSE},
                reply_to=self._coordinator.address,
            )
            for peer in voters
        ]
        decision_fan_out = self._coordinator.request_all_async(proposal_messages)
        for peer, (response, error) in zip(voters, decision_fan_out.results()):
            if error is not None:
                decisions[peer] = ValidationDecision(
                    accepted=False, reason=f"peer unreachable: {error}", validator="coordinator"
                )
                continue
            decision, token = self._verify_decision(run_id, peer, proposal, response)
            decisions[peer] = decision
            if token is not None:
                decision_tokens[peer] = token

        agreed = all(decision.accepted for decision in decisions.values())
        outcome = codec.canonicalize(
            {
                "object_id": object_id,
                "proposer": self.party,
                "membership_action": action,
                "member": member,
                "agreed": agreed,
                "decisions": {p: d.to_dict() for p, d in decisions.items()},
            }
        )
        nr_outcome = services.evidence_builder.build(
            token_type=TokenType.NR_OUTCOME,
            run_id=run_id,
            step=3,
            recipient=object_id,
            payload=outcome,
        )
        recipients = set(self.peers(object_id))
        if action == "connect" and agreed:
            recipients.add(member)
        ordered_recipients = sorted(recipients)
        outcome_tokens = [nr_outcome] + list(decision_tokens.values())
        outcome_messages = [
            B2BProtocolMessage(
                run_id=run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=3,
                sender=self.party,
                recipient=peer,
                payload=outcome,
                tokens=outcome_tokens,
                attributes={
                    "action": ACTION_MEMBERSHIP_OUTCOME,
                    "proposal": proposal,
                    "object_state": shared.state if action == "connect" else None,
                    "object_version": shared.version,
                },
                reply_to=self._coordinator.address,
            )
            for peer in ordered_recipients
        ]
        outcome_fan_out = self._coordinator.send_all_async(outcome_messages)
        for peer, error in zip(ordered_recipients, outcome_fan_out.errors()):
            if error is not None and peer == member and action == "connect":
                agreed = False
        if agreed:
            self._apply_membership_change(object_id, action, member)
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=run_id,
            details={
                "event": "membership-coordinated",
                "object_id": object_id,
                "action": action,
                "member": member,
                "agreed": agreed,
            },
        )
        return SharingOutcome(
            run_id=run_id,
            object_id=object_id,
            agreed=agreed,
            new_version=shared.version,
            proposer=self.party,
            decisions=decisions,
            evidence={TokenType.NR_MEMBERSHIP.value: nro_update, TokenType.NR_OUTCOME.value: nr_outcome},
        )

    def _apply_membership_change(self, object_id: str, action: str, member: str) -> None:
        if action == "connect":
            if not self.membership.is_member(object_id, member):
                self.membership.connect(object_id, Member(uri=member))
        else:
            if self.membership.is_member(object_id, member):
                self.membership.disconnect(object_id, member)
            if member == self.party and self.is_shared(object_id):
                with self._lock:
                    self._objects.pop(object_id, None)

    # -- handling incoming protocol messages (called by the handler) ----------------------------

    def handle_proposal(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Validate a remote party's proposed update and return a signed decision."""
        services = self._coordinator.services
        proposal = message.payload
        object_id = proposal["object_id"]
        nro_update = message.require_token(TokenType.NRO_UPDATE.value)

        decision: ValidationDecision
        try:
            services.evidence_verifier.require_valid(
                nro_update,
                expected_type=TokenType.NRO_UPDATE,
                expected_run_id=message.run_id,
                expected_payload=proposal,
                expected_issuer=message.sender,
            )
        except EvidenceVerificationError as error:
            decision = ValidationDecision(
                accepted=False, reason=f"origin evidence invalid: {error}", validator="controller"
            )
        else:
            services.evidence_store.store(
                run_id=message.run_id,
                token_type=nro_update.token_type,
                token=nro_update,
                role=services.evidence_store.ROLE_RECEIVED,
            )
            decision = self._validate_proposal(message.sender, proposal)

        decision_payload = codec.canonicalize(
            {
                "object_id": object_id,
                "run_id": message.run_id,
                "accepted": decision.accepted,
                "reason": decision.reason,
                "validator": decision.validator,
                "responder": self.party,
                "proposal_digest": payload_digest(proposal).hex(),
            }
        )
        nr_decision = services.evidence_builder.build(
            token_type=TokenType.NR_DECISION,
            run_id=message.run_id,
            step=2,
            recipient=message.sender,
            payload=decision_payload,
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nr_decision.token_type,
            token=nr_decision,
            role=services.evidence_store.ROLE_GENERATED,
        )
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=message.run_id,
            details={
                "event": "proposal-validated",
                "object_id": object_id,
                "proposer": message.sender,
                "accepted": decision.accepted,
                "reason": decision.reason,
            },
        )
        return B2BProtocolMessage(
            run_id=message.run_id,
            protocol=NR_SHARING_PROTOCOL,
            step=2,
            sender=self.party,
            recipient=message.sender,
            payload=decision_payload,
            tokens=[nr_decision],
            attributes={"action": "decision"},
            reply_to=self._coordinator.address,
        )

    def _validate_proposal(self, proposer: str, proposal: Dict[str, Any]) -> ValidationDecision:
        object_id = proposal["object_id"]
        if not self.is_shared(object_id):
            return ValidationDecision(
                accepted=False,
                reason=f"{self.party} does not share {object_id}",
                validator="controller",
            )
        if not self.membership.is_member(object_id, proposer):
            return ValidationDecision(
                accepted=False,
                reason=f"{proposer} is not a member of the sharing group",
                validator="controller",
            )
        shared = self._shared(object_id)
        if proposal.get("base_version") != shared.version:
            return ValidationDecision(
                accepted=False,
                reason=(
                    f"stale base version {proposal.get('base_version')} "
                    f"(current is {shared.version})"
                ),
                validator="controller",
            )
        context = ValidationContext(
            object_id=object_id,
            proposer=proposer,
            current_state=self.get_state(object_id),
            proposed_state=codec.unwrap(proposal.get("proposed_state")),
            base_version=proposal.get("base_version", 0),
        )
        return shared.validators.validate(context)

    def handle_outcome(self, message: B2BProtocolMessage) -> None:
        """Apply (or discard) a proposer's distributed outcome."""
        services = self._coordinator.services
        outcome_payload = message.payload
        object_id = outcome_payload["object_id"]
        nr_outcome = message.require_token(TokenType.NR_OUTCOME.value)
        services.evidence_verifier.require_valid(
            nr_outcome,
            expected_type=TokenType.NR_OUTCOME,
            expected_run_id=message.run_id,
            expected_payload=outcome_payload,
            expected_issuer=message.sender,
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nr_outcome.token_type,
            token=nr_outcome,
            role=services.evidence_store.ROLE_RECEIVED,
        )
        # Keep every peer's decision evidence for dispute resolution: the
        # forwarded tokens are verified as a set and only verifiable evidence
        # is retained.  Verification stays on this thread: under parallel
        # dispatch handle_outcome itself already runs on a worker (one per
        # recipient), and the proposer verified each decision once, so these
        # re-checks hit the process-wide signature memo -- offloading
        # microsecond memo hits would cost more than it saves.
        decision_tokens = [
            token
            for token in message.tokens
            if token.token_type == TokenType.NR_DECISION.value
        ]
        verdicts = services.evidence_verifier.verify_all(
            (
                (
                    token,
                    {
                        "expected_type": TokenType.NR_DECISION,
                        "expected_run_id": message.run_id,
                    },
                )
                for token in decision_tokens
            ),
            parallel_verification=False,
        )
        rejected_decisions = []
        for token, error in zip(decision_tokens, verdicts):
            if error is not None:
                rejected_decisions.append(token.token_id)
                continue
            services.evidence_store.store(
                run_id=message.run_id,
                token_type=token.token_type,
                token=token,
                role=services.evidence_store.ROLE_RECEIVED,
            )
        agreed = bool(outcome_payload.get("agreed"))
        applied = False
        if agreed and self.is_shared(object_id):
            proposal = message.attributes.get("proposal") or {}
            proposed_state = proposal.get("proposed_state")
            new_version = outcome_payload.get("new_version")
            shared = self._shared(object_id)
            if proposed_state is not None and new_version == shared.version + 1:
                self._apply_update(object_id, proposed_state, new_version)
                applied = True
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=message.run_id,
            details={
                "event": "outcome-received",
                "object_id": object_id,
                "agreed": agreed,
                "applied": applied,
                "rejected_decisions": rejected_decisions,
            },
        )

    def handle_membership_proposal(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Validate a proposed membership change and return a signed decision."""
        services = self._coordinator.services
        proposal = message.payload
        object_id = proposal["object_id"]
        token = message.require_token(TokenType.NR_MEMBERSHIP.value)
        try:
            services.evidence_verifier.require_valid(
                token,
                expected_type=TokenType.NR_MEMBERSHIP,
                expected_run_id=message.run_id,
                expected_payload=proposal,
                expected_issuer=message.sender,
            )
        except EvidenceVerificationError as error:
            decision = ValidationDecision(
                accepted=False, reason=str(error), validator="controller"
            )
        else:
            if not self.is_shared(object_id):
                decision = ValidationDecision(
                    accepted=False,
                    reason=f"{self.party} does not share {object_id}",
                    validator="controller",
                )
            elif not self.membership.is_member(object_id, message.sender):
                decision = ValidationDecision(
                    accepted=False,
                    reason=f"{message.sender} is not a member",
                    validator="controller",
                )
            else:
                decision = ValidationDecision(accepted=True, validator="controller")
        decision_payload = codec.canonicalize(
            {
                "object_id": object_id,
                "run_id": message.run_id,
                "accepted": decision.accepted,
                "reason": decision.reason,
                "validator": decision.validator,
                "responder": self.party,
                "proposal_digest": payload_digest(proposal).hex(),
            }
        )
        nr_decision = services.evidence_builder.build(
            token_type=TokenType.NR_DECISION,
            run_id=message.run_id,
            step=2,
            recipient=message.sender,
            payload=decision_payload,
        )
        return B2BProtocolMessage(
            run_id=message.run_id,
            protocol=NR_SHARING_PROTOCOL,
            step=2,
            sender=self.party,
            recipient=message.sender,
            payload=decision_payload,
            tokens=[nr_decision],
            attributes={"action": "membership-decision"},
            reply_to=self._coordinator.address,
        )

    def handle_membership_outcome(self, message: B2BProtocolMessage) -> None:
        """Apply an agreed membership change (and bootstrap new members)."""
        services = self._coordinator.services
        outcome = message.payload
        object_id = outcome["object_id"]
        nr_outcome = message.require_token(TokenType.NR_OUTCOME.value)
        services.evidence_verifier.require_valid(
            nr_outcome,
            expected_type=TokenType.NR_OUTCOME,
            expected_run_id=message.run_id,
            expected_payload=outcome,
            expected_issuer=message.sender,
        )
        if not outcome.get("agreed"):
            return
        action = outcome["membership_action"]
        member = outcome["member"]
        if action == "connect" and member == self.party and not self.is_shared(object_id):
            # Bootstrap: a newly admitted member initialises its replica from
            # the outcome message.
            proposal = message.attributes.get("proposal") or {}
            members = list(proposal.get("current_members", [])) + [self.party]
            state = message.attributes.get("object_state")
            self.register_object(object_id, state, members)
            shared = self._shared(object_id)
            shared.version = int(message.attributes.get("object_version", 0))
            return
        if self.is_shared(object_id):
            self._apply_membership_change(object_id, action, member)


class SharingProtocolHandler(B2BProtocolHandler):
    """Coordinator-facing protocol handler delegating to the controller."""

    protocol = NR_SHARING_PROTOCOL

    def __init__(self, controller: B2BObjectController) -> None:
        super().__init__()
        self._controller = controller

    def process_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        action = message.attributes.get("action")
        run = self.runs.get_or_create(
            ProtocolRun(
                run_id=message.run_id,
                protocol=self.protocol,
                initiator=message.sender,
                responder=self._controller.party,
            )
        )
        run.record_message(message)
        if action == ACTION_PROPOSE:
            return self._controller.handle_proposal(message)
        if action == ACTION_MEMBERSHIP_PROPOSE:
            return self._controller.handle_membership_proposal(message)
        raise ProtocolError(f"unsupported sharing request action {action!r}")

    def process(self, message: B2BProtocolMessage) -> None:
        action = message.attributes.get("action")
        run = self.runs.get_or_create(
            ProtocolRun(
                run_id=message.run_id,
                protocol=self.protocol,
                initiator=message.sender,
                responder=self._controller.party,
            )
        )
        if not run.record_message(message):
            return
        if action == ACTION_OUTCOME:
            self._controller.handle_outcome(message)
            run.complete()
            return
        if action == ACTION_MEMBERSHIP_OUTCOME:
            self._controller.handle_membership_outcome(message)
            run.complete()
            return
        raise ProtocolError(f"unsupported sharing one-way action {action!r}")


#: Method-name prefixes treated as state mutators when no explicit list is given.
DEFAULT_MUTATOR_PREFIXES = ("set", "update", "add", "remove", "delete", "put", "apply")


class B2BObjectInterceptor(Interceptor):
    """Container interceptor trapping invocations on B2BObject entity components.

    Read-only methods pass straight through.  Mutating methods execute
    tentatively on the component, after which the resulting state is proposed
    to the sharing group; if agreement is not reached the component is rolled
    back to the previously agreed state and the invocation fails.
    """

    name = "b2b-object"

    def __init__(
        self,
        controller: B2BObjectController,
        object_id: str,
        mutator_methods: Optional[List[str]] = None,
    ) -> None:
        self._controller = controller
        self._object_id = object_id
        self._mutators = set(mutator_methods or [])

    def _is_mutator(self, method: str) -> bool:
        if self._mutators:
            return method in self._mutators
        return method.split("_")[0] in DEFAULT_MUTATOR_PREFIXES

    def invoke(
        self, invocation: Invocation, next_interceptor: NextInterceptor
    ) -> InvocationResult:
        if not self._is_mutator(invocation.method):
            return next_interceptor(invocation)

        controller = self._controller
        object_id = self._object_id
        before = controller.get_state(object_id)
        result = next_interceptor(invocation)
        if not result.succeeded:
            controller.revert_component_state(object_id)
            return result

        shared = controller._shared(object_id)  # noqa: SLF001 - same-package access
        instance = shared.bound_instance
        after = instance.get_state() if instance is not None else before
        if codec.encode(after) == codec.encode(before):
            return result
        if controller.in_rollup(object_id):
            with controller._lock:  # noqa: SLF001
                shared.state = after
            return result

        outcome = controller.propose_update(object_id, after)
        if not outcome.agreed:
            controller.revert_component_state(object_id)
            return InvocationResult(
                exception=(
                    f"update to shared object {object_id!r} was vetoed: {outcome.reason}"
                ),
                exception_type=CoordinationError.__name__,
                context={**invocation.context, "nr.sharing.run_id": outcome.run_id},
            )
        result.context = {**result.context, "nr.sharing.run_id": outcome.run_id}
        return result


class RollupInterceptor(Interceptor):
    """Session-bean interceptor rolling nested B2BObject operations into one event."""

    name = "b2b-rollup"

    def __init__(
        self,
        controller: B2BObjectController,
        object_id: str,
        rollup_methods: List[str],
    ) -> None:
        self._controller = controller
        self._object_id = object_id
        self._rollup_methods = set(rollup_methods)

    def invoke(
        self, invocation: Invocation, next_interceptor: NextInterceptor
    ) -> InvocationResult:
        if invocation.method not in self._rollup_methods:
            return next_interceptor(invocation)
        try:
            with self._controller.rollup(self._object_id):
                result = next_interceptor(invocation)
                if not result.succeeded:
                    raise CoordinationError(result.exception or "invocation failed")
        except CoordinationError as error:
            return InvocationResult(
                exception=str(error),
                exception_type=CoordinationError.__name__,
                context=dict(invocation.context),
            )
        return result


def b2b_object_interceptor_provider(
    controller: B2BObjectController,
) -> Callable[[Container, ComponentDescriptor], Optional[Interceptor]]:
    """Container deployment hook attaching B2BObject/rollup interceptors.

    Entity components with ``b2b_object`` set get a
    :class:`B2BObjectInterceptor`; session components with ``rollup_methods``
    get a :class:`RollupInterceptor`.  The object id defaults to the
    component name and can be overridden with the ``b2b_object_id`` metadata
    entry.
    """

    def provider(
        container: Container, descriptor: ComponentDescriptor
    ) -> Optional[Interceptor]:
        object_id = descriptor.metadata.get("b2b_object_id", descriptor.name)
        if descriptor.b2b_object:
            mutators = descriptor.metadata.get("mutator_methods")
            return B2BObjectInterceptor(controller, object_id, mutators)
        if descriptor.rollup_methods:
            return RollupInterceptor(controller, object_id, descriptor.rollup_methods)
        return None

    return provider
