"""Non-repudiable information sharing (NR-Sharing / B2BObjects).

Implements the state-coordination abstraction of Section 3.3 and its
component-based realisation of Section 4.3 (Figure 8):

* each organisation holds a local replica of the shared information,
  encapsulated by a :class:`B2BObjectController`;
* when a party proposes an update, its controller runs a non-repudiable state
  coordination protocol with every other member of the sharing group:

  1. the proposal, with evidence of origin (``NRO_UPDATE``), is delivered to
     every peer;
  2. each peer independently validates the proposal using locally configured,
     application-specific validators and returns a signed decision
     (``NR_DECISION``);
  3. the collective outcome (``NR_OUTCOME``), together with every peer's
     decision evidence, is distributed to all members so that everyone has a
     consistent, verifiable view of the agreed state;

* the update is applied everywhere if and only if agreement was unanimous;
  otherwise every replica stays in the state prior to the proposal;
* non-repudiable *connect* and *disconnect* protocols govern changes to the
  membership of the sharing group.

The :class:`B2BObjectInterceptor` traps invocations on entity components
marked as B2BObjects so that "the enhancement of an entity bean to become a
B2BObject is effectively transparent to the local EJB client and its
application interface".

Execution model: every coordination round (state update or membership
change) is one :class:`_CoordinationRun` -- an explicit two-phase state
machine whose protocol logic lives in three hooks (build the phase-1
proposal fan-out, turn the collected decisions into the phase-2 outcome
fan-out, finalise).  Two drivers execute the same hooks:

* ``run_inline()`` awaits each fan-out on the calling thread -- the
  blocking reference behaviour, byte-identical to the pre-async engine;
* ``start()`` registers each subsequent phase as a *continuation* on its
  :class:`~repro.core.coordinator.CoordinatorFanOut` (running on the shared
  :mod:`repro.parallel` executor) and returns a :class:`RunFuture`
  immediately, so a bounded worker pool can multiplex thousands of
  concurrent runs: between phases a run occupies no thread at all, only
  scheduler timers and completion callbacks.

Runs started asynchronously may carry a *deadline*: a
:class:`~repro.transport.scheduler.RetryScheduler` timer that aborts the
pending run (cancelling its delivery retries via their run tag and
resolving its future as not-agreed) instead of parking a thread in a
timeout wait.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import codec, parallel
from repro.container.component import ComponentDescriptor
from repro.container.container import Container
from repro.container.interceptor import (
    Interceptor,
    Invocation,
    InvocationResult,
    NextInterceptor,
)
from repro.core.coordinator import B2BCoordinator
from repro.core.evidence import EvidenceToken, TokenType, payload_digest
from repro.core.messages import B2BProtocolMessage
from repro.core.protocol import B2BProtocolHandler, ProtocolRun
from repro.core.validators import (
    CompositeValidator,
    StateValidator,
    ValidationContext,
    ValidationDecision,
)
from repro.crypto.rng import new_unique_id
from repro.errors import (
    CoordinationError,
    EvidenceVerificationError,
    MembershipError,
    ProtocolError,
)
from repro.faults.breaker import STATE_OPEN as BREAKER_STATE_OPEN
from repro.membership.service import Member, MembershipService
from repro.observability import tracing as _tracing
from repro.observability.runtime import STATE as _OBS
from repro.persistence.run_journal import (
    PHASE_COMMITTED,
    JournaledRun,
    RunJournal,
)
from repro.transport.scheduler import DeliveryFuture, RetryScheduler, TimerHandle
from repro.transport.wire.wirecodec import wire_type

#: Protocol name for state and membership coordination.
NR_SHARING_PROTOCOL = "nr-sharing"

AUDIT_CATEGORY_SHARING = "nr.sharing"

#: Actions carried in message attributes.
ACTION_PROPOSE = "propose"
ACTION_OUTCOME = "outcome"
ACTION_MEMBERSHIP_PROPOSE = "membership-propose"
ACTION_MEMBERSHIP_OUTCOME = "membership-outcome"
ACTION_ABORT = "abort"

#: Outcome re-delivery backoff (seconds): the delay doubles per attempt from
#: the base up to the cap; re-delivery itself is unbounded (it stops only on
#: full acknowledgement or when the object advances past the outcome).
REDELIVERY_BASE_DELAY = 0.25
REDELIVERY_MAX_DELAY = 5.0

#: Responder-side span names keyed by the action that triggered the handler.
_HANDLE_SPAN_NAMES = {
    ACTION_PROPOSE: "handle:proposal",
    ACTION_OUTCOME: "handle:outcome",
    ACTION_MEMBERSHIP_PROPOSE: "handle:membership-proposal",
    ACTION_MEMBERSHIP_OUTCOME: "handle:membership-outcome",
    ACTION_ABORT: "handle:abort",
}


class _NullScope:
    """Stateless no-op context manager (safe to share and re-enter)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SCOPE = _NullScope()


def _span_scope(span):
    """Activate ``span``'s trace context for a block; no-op when ``span`` is None."""
    if span is None:
        return _NULL_SCOPE
    return span.activate()


@wire_type
@dataclass(frozen=True)
class RunAbortNotice:
    """Wire-level notification that a coordination run died before commit.

    Sent by a recovering proposer for every journaled run that never passed
    the commit barrier, so peers learn the run is dead instead of holding
    its responder state until their orphan expiry fires.  Registered for
    wire revival through the :func:`~repro.transport.wire.wire_type`
    decorator, so it crosses process boundaries without per-deployment
    registration.
    """

    run_id: str
    object_id: str
    proposer: str
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "object_id": self.object_id,
            "proposer": self.proposer,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "RunAbortNotice":
        return cls(
            run_id=data["run_id"],
            object_id=data["object_id"],
            proposer=data["proposer"],
            reason=data.get("reason", ""),
        )


#: Test seam for crash-fault injection: when set, called as
#: ``injector(stage, run)`` right after each durable journal write and may
#: raise (simulating an in-process crash) or SIGKILL the process (chaos
#: suites).  Stages: ``"after-journal-proposed"``, ``"after-journal-committed"``.
_run_fault_injector: Optional[Callable[[str, "_CoordinationRun"], None]] = None


def set_run_fault_injector(
    injector: Optional[Callable[[str, "_CoordinationRun"], None]],
) -> None:
    """Install (or clear, with ``None``) the crash-fault injection hook."""
    global _run_fault_injector
    _run_fault_injector = injector


@dataclass
class SharingOutcome:
    """Result of one coordination round, with the evidence gathered."""

    run_id: str
    object_id: str
    agreed: bool
    new_version: Optional[int]
    proposer: str
    decisions: Dict[str, ValidationDecision] = field(default_factory=dict)
    evidence: Dict[str, EvidenceToken] = field(default_factory=dict)
    reason: str = ""

    def require_agreed(self) -> None:
        """Raise :class:`CoordinationError` unless the update was agreed."""
        if not self.agreed:
            rejecting = [
                party
                for party, decision in self.decisions.items()
                if not decision.accepted
            ]
            raise CoordinationError(
                f"update to {self.object_id!r} was not agreed "
                f"(vetoed by {', '.join(rejecting) or 'unknown'}): {self.reason}"
            )


class RunFuture(DeliveryFuture):
    """Completion handle of one asynchronous coordination run.

    Resolves to the run's :class:`SharingOutcome`.  Like every
    :class:`~repro.transport.scheduler.DeliveryFuture`, waiting on it drives
    the retry scheduler, so a thread blocked on one run keeps every other
    run's timers (and deadlines) moving.  A timed-out or aborted run
    *completes* -- with ``agreed=False`` and the abort reason -- rather than
    failing, so ``result()`` only raises for unexpected engine errors.
    """

    def __init__(
        self, run_id: str, scheduler: Optional[RetryScheduler] = None
    ) -> None:
        super().__init__(scheduler)
        self.run_id = run_id
        self._machine: Optional["_CoordinationRun"] = None

    def abort(self, reason: str = "aborted by caller") -> bool:
        """Abort the pending run; returns False when it can no longer abort.

        Cancels the run's scheduled delivery retries and deadline timer and
        completes the future with a not-agreed outcome.  Refused once the
        run has settled or has dispatched its outcome fan-out (the peers are
        applying the decision; disowning it would diverge the replicas).
        """
        if self._machine is None:
            return False
        return self._machine.abort(reason)


class _CoordinationRun:
    """One two-phase coordination round as an explicit state machine.

    Subclasses implement the protocol logic as pure phase hooks; the base
    class owns run lifecycle (deadline timer, abort/settle races) and the
    two drivers described in the module docstring.  Whichever of normal
    completion, failure, abort or deadline expiry happens first settles the
    run; the losers become no-ops, and every settle path cancels the
    deadline timer so settled runs leak no timers.
    """

    def __init__(
        self,
        controller: "B2BObjectController",
        object_id: str,
        run_id: str,
        deadline: Optional[float] = None,
    ) -> None:
        self._controller = controller
        self._coordinator = controller.coordinator
        self._services = controller.coordinator.services
        self.object_id = object_id
        self.run_id = run_id
        self._scheduler: Optional[RetryScheduler] = (
            controller.coordinator.network.retry_scheduler
        )
        self._deadline = deadline
        self._deadline_handle: Optional[TimerHandle] = None
        self._state_lock = threading.Lock()
        self._settled = False
        # Once the outcome fan-out is dispatched the collective decision is
        # out in the world; from that point the run can complete but no
        # longer abort (a late abort would leave peers applying an outcome
        # the proposer disowned -- permanent divergence).
        self._committed = False
        self._fan_outs: List = []
        #: The built outcome wave, stashed by the phase-2 hook even when the
        #: dispatch is skipped (degraded run): the journal and the proposer's
        #: re-delivery task resend exactly these messages, so peers dedup on
        #: the original message ids no matter which path reaches them first.
        self._outcome_wave: List[B2BProtocolMessage] = []
        self._journal: Optional[RunJournal] = self._services.run_journal
        # Root span for the whole coordination round: the run id *is* the
        # trace id, so every message stamped inside an activation below (and
        # every handler span a peer opens for it, in-process or across the
        # wire) lands in the same tree.
        self._span = None
        self._run_started = 0.0
        tracer = _OBS.tracing
        if tracer is not None:
            self._span = tracer.start_span(
                f"run:{self._journal_kind}",
                trace_id=run_id,
                use_ambient_parent=False,
                attributes={
                    "object_id": object_id,
                    "party": controller.party,
                },
            )
        self.future = RunFuture(run_id, self._scheduler)
        self.future._machine = self
        if self._span is not None or _OBS.metrics is not None:
            self._run_started = perf_counter()
            self.future.add_done_callback(self._end_root_span)
        if self._journal is not None:
            # Whichever way the run resolves -- completion, abort, deadline
            # expiry or engine failure -- the settled record marks it as
            # needing no recovery.  The callback fires after the future is
            # resolved, so the journal can never declare settled a run whose
            # outcome is still undecided.
            self.future.add_done_callback(self._journal_settled)

    #: Journal tag for the run kind; subclasses override.
    _journal_kind = "run"

    # -- protocol hooks (one coordination round = three steps) -------------------

    def _phase1_messages(self) -> List[B2BProtocolMessage]:
        """Build (and evidence) the proposal; returns the request fan-out."""
        raise NotImplementedError

    def _phase2_messages(self, results: List) -> List[B2BProtocolMessage]:
        """Digest phase-1 replies into the outcome; returns the one-way fan-out."""
        raise NotImplementedError

    def _finalize(self, errors: List[Optional[Exception]]) -> SharingOutcome:
        """Apply the agreed change (if any), audit, and build the outcome."""
        raise NotImplementedError

    def _aborted_outcome(self, reason: str) -> SharingOutcome:
        """Audit the abort and build the not-agreed outcome it resolves to."""
        raise NotImplementedError

    # -- blocking driver ---------------------------------------------------------

    def run_inline(self) -> SharingOutcome:
        """Drive the round to completion on the calling thread.

        The reference behaviour the continuation driver is property-tested
        against: each fan-out is awaited in place (the wait itself drives
        the retry scheduler when one is attached).
        """
        with _span_scope(self._span):
            decision_fan_out = self._phase1_fan_out()
            outcome_messages = self._phase2_messages(decision_fan_out.results())
            outcome_fan_out = self._commit_outcome(outcome_messages)
            if outcome_fan_out is None:  # aborted concurrently; future holds why
                return self.future.result()
            outcome = self._finalize(outcome_fan_out.errors())
            self._settle(lambda: self.future.complete(outcome))
            return outcome

    def _commit_outcome(self, outcome_messages: List[B2BProtocolMessage]):
        """Mark the run committed and dispatch the outcome fan-out.

        The committed flag flips atomically with the settled check, so an
        abort either wins *before* any outcome message leaves (and nothing
        is sent) or is refused forever after.  Returns ``None`` when an
        abort won the race.
        """
        with self._state_lock:
            if self._settled:
                return None
            self._committed = True
        # Only now is the outcome part of the run's permanent record: an
        # abort that won the race above must leave no generated evidence
        # asserting an outcome that never shipped.  The journal record is
        # written before any side effect (evidence persistence, outcome
        # dispatch), so a crash from here on recovers by *resuming* the
        # committed run -- peers may already hold the outcome.
        # The commit barrier gets its own span so the outcome wave (sends
        # stamped inside the activation) and every peer's ``handle:outcome``
        # parent under it rather than directly under the run root.
        tracer = _OBS.tracing
        commit_span = None
        if tracer is not None:
            commit_span = tracer.start_span(
                "commit",
                trace_id=self.run_id,
                parent=self._span.ctx if self._span is not None else None,
                use_ambient_parent=False,
            )
        try:
            with _span_scope(commit_span):
                self._journal_committed(outcome_messages)
                self._inject_fault("after-journal-committed")
                self._on_committed()
                fan_out = self._register_fan_out(
                    self._coordinator.send_all_async(outcome_messages)
                )
        except Exception:
            if commit_span is not None:
                commit_span.end("error")
            raise
        if commit_span is not None:
            commit_span.end("ok")
        return fan_out

    def _on_committed(self) -> None:
        """Persist outcome evidence; runs only when the outcome really ships."""

    # -- durability (write-ahead journal) ------------------------------------------

    def _phase1_fan_out(self):
        """Build phase 1, journal the intent, then dispatch the fan-out.

        The journal record lands *before* the first proposal message leaves:
        a run a peer has heard of is always a run the journal can recover
        (abort-and-notify), while a crash before the record behaves as if
        the run never existed -- no peer saw it either, since nothing was
        dispatched.
        """
        messages = self._phase1_messages()
        self._journal_proposed(messages)
        self._inject_fault("after-journal-proposed")
        return self._register_fan_out(
            self._coordinator.request_all_async(messages)
        )

    def _journal_proposed(self, messages: List[B2BProtocolMessage]) -> None:
        if self._journal is None:
            return
        self._journal.record_proposed(
            self.run_id,
            kind=self._journal_kind,
            object_id=self.object_id,
            proposer=self._controller.party,
            peers=[message.recipient for message in messages],
            proposal=self._proposal,
            deadline=self._deadline,
        )

    def _journal_commit_apply(self) -> Dict[str, Any]:
        """Declarative local-apply spec for the committed record; subclass hook."""
        raise NotImplementedError

    def _journal_committed(self, messages: List[B2BProtocolMessage]) -> None:
        if self._journal is None:
            return
        # A degraded run skips its dispatch but still built the wave: journal
        # the *built* wave, not the (empty) dispatched one, so a recovering
        # proposer resends the exact messages the peers never saw instead of
        # forgetting them.
        wave = messages or self._outcome_wave
        if wave:
            first = wave[0]
            payload, attributes, step = first.payload, first.attributes, first.step
        else:  # a wave with no recipients still commits its local apply
            payload, attributes, step = None, {}, 3
        self._journal.record_committed(
            self.run_id,
            payload=payload,
            attributes=attributes,
            recipients=[message.recipient for message in wave],
            message_ids={
                message.recipient: message.message_id for message in wave
            },
            step=step,
            nr_outcome=self._nr_outcome,
            apply=self._journal_commit_apply(),
        )

    def _journal_settled(self, future: DeliveryFuture) -> None:
        error = future.error
        if error is not None:
            agreed, reason = False, f"run failed: {error}"
        else:
            outcome = future.result()
            agreed, reason = outcome.agreed, outcome.reason
        try:
            self._journal.record_settled(self.run_id, agreed=agreed, reason=reason)
        except Exception as journal_error:  # noqa: BLE001 - resolution beats GC
            # The run resolved; failing the resolver over a lost GC marker
            # would strand waiters, so record the failure and move on (the
            # worst case is a spurious recovery pass on next restart).
            self._services.audit_log.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=self.run_id,
                details={
                    "event": "journal-settle-failed",
                    "error": str(journal_error),
                },
            )

    def _end_root_span(self, future: DeliveryFuture) -> None:
        """Close the run's root span and record its end-to-end latency."""
        observe = _OBS.observe_run_duration
        if observe is not None:
            observe(perf_counter() - self._run_started)
        span, self._span = self._span, None
        if span is None:
            return
        if future.error is not None:
            span.end("failed")
        else:
            outcome = future.result()
            span.end("agreed" if outcome.agreed else "not-agreed")

    def _inject_fault(self, stage: str) -> None:
        if _run_fault_injector is not None:
            _run_fault_injector(stage, self)

    def _register_fan_out(self, fan_out):
        """Track a live fan-out so an abort can close its retry channel.

        Timer-heap sweeps alone cannot stop a retry wave that is already
        firing (its timer left the heap before its callback ran); closing
        the channel flips the flag that every firing reattempt re-checks, so
        no post-abort timer is ever rescheduled.
        """
        with self._state_lock:
            self._fan_outs.append(fan_out)
            aborted = self._settled
        if aborted:  # abort won while the fan-out was being created
            fan_out.cancel()
        return fan_out

    # -- continuation driver ------------------------------------------------------

    def start(self) -> RunFuture:
        """Start the round without blocking; returns its :class:`RunFuture`.

        Phase 1's first delivery attempts run on the calling thread (a
        healthy fan-out is exactly as fast as the blocking driver); every
        subsequent step runs as a continuation on the shared executor when
        the fan-out it waits for completes.  Errors raised while *building*
        phase 1 (unknown object, membership violations) propagate
        synchronously, exactly like the blocking driver.
        """
        hold = self._hold_advance()
        try:
            with _span_scope(self._span):
                if self._deadline is not None:
                    if self._scheduler is None:
                        raise CoordinationError(
                            f"a deadline for the run on {self.object_id!r} requires a "
                            "retry scheduler on the network"
                        )
                    self._deadline_handle = self._scheduler.schedule(
                        self._deadline, self._expire, run_id=self.run_id
                    )
                try:
                    decision_fan_out = self._phase1_fan_out()
                except Exception:
                    self._cancel_deadline()
                    raise
                self._chain(decision_fan_out, self._after_phase1)
        finally:
            if hold is not None:
                hold.release()
        return self.future

    def _hold_advance(self):
        """Keep drivers from advancing virtual time while this run computes.

        A run that is between phases -- verifying decisions, building the
        outcome -- holds no earlier timer, so without the hold a concurrent
        driver could advance a virtual clock straight to the run's own
        deadline and expire it mid-stride.
        """
        if self._scheduler is None:
            return None
        return self._scheduler.hold_advance()

    def _chain(self, fan_out, continuation: Callable[[Any], None]) -> None:
        """Register ``continuation(fan_out)`` to run once the fan-out settles.

        The continuation executes on the shared executor (inline when the
        resolving thread is itself a pool worker), bridged by an advance
        hold so the hop to the worker is invisible to virtual time.
        """

        def resume(done_fan_out) -> None:
            hold = self._hold_advance()

            def step() -> None:
                try:
                    continuation(done_fan_out)
                finally:
                    if hold is not None:
                        hold.release()

            parallel.submit(step)

        fan_out.add_done_callback(resume)

    def _after_phase1(self, decision_fan_out) -> None:
        # Continuations run on executor workers, which carry whatever trace
        # context their previous task left behind -- re-activate the run root
        # explicitly so everything this phase sends is attributed correctly.
        with _span_scope(self._span):
            if self._done():
                return
            try:
                outcome_messages = self._phase2_messages(
                    decision_fan_out.results()
                )
                outcome_fan_out = self._commit_outcome(outcome_messages)
                if outcome_fan_out is None:  # aborted while verifying
                    return
            except Exception as error:  # noqa: BLE001 - resolve, never strand waiters
                self._settle(lambda: self.future.fail(error))
                return
            self._chain(outcome_fan_out, self._after_phase2)

    def _after_phase2(self, outcome_fan_out) -> None:
        with _span_scope(self._span):
            if self._done():
                return
            try:
                outcome = self._finalize(outcome_fan_out.errors())
            except Exception as error:  # noqa: BLE001 - resolve, never strand waiters
                self._settle(lambda: self.future.fail(error))
                return
            self._settle(lambda: self.future.complete(outcome))

    # -- abort / timeout ----------------------------------------------------------

    def abort(self, reason: str = "aborted by caller") -> bool:
        """Settle the run as not-agreed and withdraw its pending timers.

        Refused (returns False) once the run has settled *or committed its
        outcome fan-out*: after the collective decision has been dispatched
        to peers, disowning it locally would diverge the replicas, so a late
        abort/deadline lets the run finish instead.
        """

        def settle_abort() -> None:
            # Close the live fan-outs' retry channels first: the closed flag
            # stops even a concurrently firing retry wave from rescheduling,
            # and resolves their futures -- any registered continuation then
            # fires, observes the settled run and sends no further phase.
            with self._state_lock:
                fan_outs = list(self._fan_outs)
            for fan_out in fan_outs:
                fan_out.cancel()
            if self._scheduler is not None:
                # Sweep whatever else carries the run tag (the deadline
                # timer if still pending, externally scheduled run timers).
                self._scheduler.cancel_run(self.run_id)
            self.future.complete(self._aborted_outcome(reason))

        with self._state_lock:
            if self._settled or self._committed:
                return False
            self._settled = True
        self._cancel_deadline()
        self._resolve_settled(settle_abort)
        return True

    def _expire(self) -> None:
        self.abort(f"run deadline of {self._deadline}s expired")

    def _done(self) -> bool:
        with self._state_lock:
            return self._settled

    def _settle(self, resolve: Callable[[], None]) -> bool:
        """Run ``resolve`` iff the run has not settled yet (exactly once)."""
        with self._state_lock:
            if self._settled:
                return False
            self._settled = True
        self._cancel_deadline()
        self._resolve_settled(resolve)
        return True

    def _resolve_settled(self, resolve: Callable[[], None]) -> None:
        """Resolve the future; a resolver that raises must still resolve it.

        The settled flag is already set, so no other path will touch the
        future again -- an escaping exception here (e.g. a bug in an
        outcome builder running on a timer-driving thread) would otherwise
        strand every waiter forever.
        """
        try:
            resolve()
        except Exception as error:  # noqa: BLE001 - last line of defence
            self.future.fail(error)

    def _cancel_deadline(self) -> None:
        handle, self._deadline_handle = self._deadline_handle, None
        if handle is not None:
            handle.cancel()


@dataclass
class _SharedObject:
    """Local bookkeeping for one shared object.

    Outside a rollup, ``state`` is held as its canonical encoding
    (:class:`repro.codec.Encoded`), so the digest and byte form of the agreed
    state are computed exactly once per agreed version -- the
    content-addressed-version idiom.  During a rollup the tentative state is
    kept raw, since it mutates without coordination.
    """

    object_id: str
    state: Any
    version: int = 0
    validators: CompositeValidator = field(default_factory=CompositeValidator)
    bound_instance: Any = None
    rollup_depth: int = 0
    rollup_base_state: Any = None

    def state_copy(self) -> Any:
        """A defensive plain copy of the state, decoded from canonical bytes."""
        return codec.decode(codec.encode(self.state))


class B2BObjectController:
    """Local interface to configuration, initiation and control of sharing.

    One controller per organisation manages every B2BObject the organisation
    shares.  It is "the local interface to configuration, initiation and
    control of information sharing" (Section 4.3).
    """

    def __init__(
        self,
        party: str,
        coordinator: B2BCoordinator,
        membership: Optional[MembershipService] = None,
        async_runs: bool = False,
        orphan_run_timeout: Optional[float] = None,
        durable_state: bool = False,
        outcome_redelivery: bool = False,
    ) -> None:
        self.party = party
        self._coordinator = coordinator
        self.membership = membership or MembershipService()
        #: Persist every committed apply (version history plus the signed
        #: outcome record) through the coordinator's state store, and resume
        #: registration from that history after a restart instead of
        #: re-registering from configuration.
        self.durable_state = durable_state
        #: Re-deliver an undelivered outcome wave through the retry
        #: scheduler (breaker-aware per peer) until every peer has
        #: acknowledged it or the object advances past it.
        self.outcome_redelivery = outcome_redelivery
        #: When set, the blocking entry points delegate to the continuation
        #: driver (``propose_update`` == ``propose_update_async().result()``);
        #: when clear they drive the same state machine inline.
        self.async_runs = async_runs
        #: Responder-side proposal-age expiry (seconds): a proposal whose
        #: outcome has not arrived within this window is treated as orphaned
        #: -- its proposer died or partitioned away -- and its responder
        #: state is garbage-collected.  ``None`` disables the expiry clock.
        self.orphan_run_timeout = orphan_run_timeout
        self._orphan_timers: Dict[str, TimerHandle] = {}
        # Run ids whose (late) outcome is being applied right now: an orphan
        # expiry that fires mid-apply must cancel cleanly instead of
        # aborting a run whose outcome is already committed.
        self._applying_outcomes: set = set()
        # Outcome waves awaiting re-delivery, keyed by run id; each entry
        # holds the per-peer pending messages and the attempt counter that
        # drives the backoff.
        self._redeliveries: Dict[str, Dict[str, Any]] = {}
        self._redelivery_timers: Dict[str, TimerHandle] = {}
        self._objects: Dict[str, _SharedObject] = {}
        self._lock = threading.RLock()
        self._handler = SharingProtocolHandler(self)
        if not coordinator.has_handler(NR_SHARING_PROTOCOL):
            coordinator.register_handler(self._handler)

    # -- configuration -----------------------------------------------------------

    @property
    def coordinator(self) -> B2BCoordinator:
        return self._coordinator

    @property
    def handler(self) -> "SharingProtocolHandler":
        return self._handler

    def register_object(
        self,
        object_id: str,
        initial_state: Any,
        member_uris: List[str],
        validators: Optional[List[StateValidator]] = None,
    ) -> None:
        """Register a shared object and its sharing group on this controller.

        The initial registration is part of deployment/configuration (like
        identifying an entity bean as a B2BObject in its descriptor);
        subsequent membership changes go through the non-repudiable connect
        and disconnect protocols.
        """
        with self._lock:
            if object_id in self._objects:
                raise CoordinationError(f"object {object_id!r} is already registered")
            if self.party not in member_uris:
                raise MembershipError(
                    f"{self.party!r} must be a member of the group sharing {object_id!r}"
                )
            shared = _SharedObject(
                object_id=object_id, state=codec.canonicalize(initial_state)
            )
            for validator in validators or []:
                shared.validators.add(validator)
            self._objects[object_id] = shared
        if not self.membership.has_group(object_id):
            self.membership.create_group(
                object_id, [Member(uri=uri) for uri in member_uris]
            )
        state_store = self._coordinator.services.state_store
        resumed_version: Optional[int] = None
        if self.durable_state and state_store.version_count(object_id) > 0:
            # Durable resume: the backend already holds this object's agreed
            # history (the store's history index *is* the version number), so
            # pick up at the recorded version instead of re-registering from
            # configuration.  recover_runs() replay stays safe against this:
            # its new_version == version + 1 guard no-ops on a version the
            # resume already restored.
            resumed_version = state_store.version_count(object_id) - 1
            with self._lock:
                shared.version = resumed_version
                shared.state = codec.canonicalize(
                    state_store.state_at_version(object_id, resumed_version)
                )
        else:
            state_store.record_version(object_id, shared.state)
        details: Dict[str, Any] = {
            "event": "object-registered",
            "members": sorted(member_uris),
        }
        if resumed_version is not None:
            details["event"] = "object-resumed"
            details["resumed_version"] = resumed_version
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=object_id,
            details=details,
        )

    def add_validator(self, object_id: str, validator: StateValidator) -> None:
        """Attach an application-specific validation listener to an object."""
        self._shared(object_id).validators.add(validator)

    def bind_component(self, object_id: str, instance: Any) -> None:
        """Bind a local entity component whose state mirrors the replica.

        The instance must expose ``get_state()`` / ``set_state(state)``; the
        controller pushes agreed state into it so that the component and the
        replica can never diverge.
        """
        for required in ("get_state", "set_state"):
            if not callable(getattr(instance, required, None)):
                raise CoordinationError(
                    f"component bound to {object_id!r} must implement {required}()"
                )
        shared = self._shared(object_id)
        with self._lock:
            shared.bound_instance = instance
            instance.set_state(shared.state_copy())

    # -- queries --------------------------------------------------------------------

    def _shared(self, object_id: str) -> _SharedObject:
        with self._lock:
            try:
                return self._objects[object_id]
            except KeyError:
                raise CoordinationError(
                    f"{self.party!r} does not share an object {object_id!r}"
                ) from None

    def is_shared(self, object_id: str) -> bool:
        with self._lock:
            return object_id in self._objects

    def object_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._objects)

    def get_state(self, object_id: str) -> Any:
        """Return (a copy of) the current agreed state of the object."""
        return self._shared(object_id).state_copy()

    def get_version(self, object_id: str) -> int:
        return self._shared(object_id).version

    def state_digest(self, object_id: str) -> bytes:
        """Digest of the current agreed state (comparable across parties)."""
        return payload_digest(self._shared(object_id).state)

    def members(self, object_id: str) -> List[str]:
        return self.membership.member_uris(object_id)

    def peers(self, object_id: str) -> List[str]:
        return sorted(self.membership.peers_of(object_id, self.party))

    # -- proposing updates -------------------------------------------------------------

    def propose_update(self, object_id: str, new_state: Any) -> SharingOutcome:
        """Propose ``new_state`` for ``object_id`` and coordinate agreement.

        Returns the :class:`SharingOutcome`; the update is applied locally
        (and at every peer) only when agreement was unanimous.  With
        ``async_runs`` enabled this is a thin ``.result()`` wrapper around
        :meth:`propose_update_async`; otherwise the same state machine runs
        inline on the calling thread (the blocking reference behaviour).
        """
        if self.async_runs:
            # propose_update_async performs the rollup-deferral check itself.
            return self.propose_update_async(object_id, new_state).result()
        deferred = self._rollup_deferred(object_id, new_state)
        if deferred is not None:
            return deferred
        return _UpdateRun(self, object_id, new_state).run_inline()

    def propose_update_async(
        self, object_id: str, new_state: Any, deadline: Optional[float] = None
    ) -> RunFuture:
        """Start a coordination round without blocking; returns a :class:`RunFuture`.

        Phase transitions run as continuations on the shared executor, so
        between phases the run occupies no thread -- a bounded pool can
        multiplex arbitrarily many concurrent runs.  ``deadline`` (seconds,
        requires a retry scheduler on the network) aborts a run that has not
        settled in time: its pending delivery retries are withdrawn and the
        future completes with ``agreed=False``.  A run whose outcome fan-out
        was already dispatched is past aborting (the collective decision is
        out at the peers) and completes normally even if the deadline fires.
        """
        deferred = self._rollup_deferred(object_id, new_state)
        if deferred is not None:
            future = RunFuture(deferred.run_id)
            future.complete(deferred)
            return future
        return _UpdateRun(self, object_id, new_state, deadline=deadline).start()

    def _rollup_deferred(
        self, object_id: str, new_state: Any
    ) -> Optional[SharingOutcome]:
        """Inside a rollup: defer coordination, just update the tentative state."""
        shared = self._shared(object_id)
        if shared.rollup_depth == 0:
            return None
        with self._lock:
            shared.state = new_state
        return SharingOutcome(
            run_id="(rollup-deferred)",
            object_id=object_id,
            agreed=True,
            new_version=shared.version,
            proposer=self.party,
            reason="deferred until rollup completes",
        )

    def apply_change(
        self, object_id: str, mutator: Callable[[Any], Any]
    ) -> SharingOutcome:
        """Propose the state produced by applying ``mutator`` to the current state."""
        current = self.get_state(object_id)
        new_state = mutator(current)
        if new_state is None:
            new_state = current
        return self.propose_update(object_id, new_state)

    def _verify_decision(
        self,
        run_id: str,
        peer: str,
        proposal_payload: Dict[str, Any],
        response: B2BProtocolMessage,
    ) -> tuple:
        """Verify a peer's decision message; invalid evidence counts as a veto."""
        services = self._coordinator.services
        decision_payload = response.payload or {}
        token = response.token_of_type(TokenType.NR_DECISION.value)
        if token is None:
            return (
                ValidationDecision(
                    accepted=False,
                    reason="peer returned no decision evidence",
                    validator="coordinator",
                ),
                None,
            )
        try:
            services.evidence_verifier.require_valid(
                token,
                expected_type=TokenType.NR_DECISION,
                expected_run_id=run_id,
                expected_payload=decision_payload,
                expected_issuer=peer,
            )
        except EvidenceVerificationError as error:
            return (
                ValidationDecision(
                    accepted=False,
                    reason=f"decision evidence invalid: {error}",
                    validator="coordinator",
                ),
                None,
            )
        return (
            ValidationDecision(
                accepted=bool(decision_payload.get("accepted", False)),
                reason=decision_payload.get("reason", ""),
                validator=decision_payload.get("validator", peer),
            ),
            token,
        )

    # -- applying agreed updates ----------------------------------------------------------

    def _apply_update(
        self,
        object_id: str,
        new_state: Any,
        new_version: int,
        outcome_record: Optional[Dict[str, Any]] = None,
    ) -> None:
        shared = self._shared(object_id)
        agreed_state = codec.canonicalize(new_state)
        with self._lock:
            shared.state = agreed_state
            shared.version = new_version
            if shared.bound_instance is not None:
                shared.bound_instance.set_state(shared.state_copy())
        state_store = self._coordinator.services.state_store
        state_store.record_version(object_id, agreed_state)
        if self.durable_state and outcome_record is not None:
            state_store.record_outcome(object_id, new_version, outcome_record)

    def _build_outcome_record(
        self,
        run_id: str,
        proposer: str,
        object_id: str,
        new_version: Optional[int],
        outcome_payload: Any,
        proposal: Any,
        nr_outcome: EvidenceToken,
        decision_tokens: List[EvidenceToken],
    ) -> Optional[Dict[str, Any]]:
        """The durable per-version record restart-time resync serves verbatim.

        Carries everything a stale peer needs for a signature-checked
        catch-up apply: the canonical outcome and proposal payloads plus the
        evidence tokens in dictionary form.  ``None`` when durable state is
        off -- callers pass the result straight to :meth:`_apply_update`.
        """
        if not self.durable_state:
            return None
        return {
            "run_id": run_id,
            "proposer": proposer,
            "object_id": object_id,
            "new_version": new_version,
            "outcome": outcome_payload,
            "proposal": proposal,
            "nr_outcome": nr_outcome.to_dict(),
            "decisions": [token.to_dict() for token in decision_tokens],
        }

    def revert_component_state(self, object_id: str) -> None:
        """Push the agreed replica state back into the bound component."""
        shared = self._shared(object_id)
        with self._lock:
            if shared.bound_instance is not None:
                shared.bound_instance.set_state(shared.state_copy())

    # -- rollup -------------------------------------------------------------------------

    @contextmanager
    def rollup(self, object_id: str) -> Iterator[None]:
        """Roll several operations into a single coordination event.

        "Optionally, the application programmer may specify that a method in
        the application interface should result in a series of operations on
        an underlying B2BObject bean being rolled-up into a single
        coordination event." (Section 4.3.)
        """
        shared = self._shared(object_id)
        with self._lock:
            if shared.rollup_depth == 0:
                shared.rollup_base_state = shared.state_copy()
            shared.rollup_depth += 1
        try:
            yield
        except Exception:
            with self._lock:
                shared.rollup_depth -= 1
                if shared.rollup_depth == 0:
                    shared.state = shared.rollup_base_state
                    shared.rollup_base_state = None
                    self.revert_component_state(object_id)
            raise
        with self._lock:
            shared.rollup_depth -= 1
            finished = shared.rollup_depth == 0
            tentative_state = shared.state_copy()
            base_state = shared.rollup_base_state
        if not finished:
            return
        with self._lock:
            # Coordination happens against the pre-rollup agreed state.
            shared.state = base_state
            shared.rollup_base_state = None
        outcome = self.propose_update(object_id, tentative_state)
        if not outcome.agreed:
            self.revert_component_state(object_id)
            outcome.require_agreed()

    def in_rollup(self, object_id: str) -> bool:
        return self._shared(object_id).rollup_depth > 0

    # -- membership (connect / disconnect protocols) -----------------------------------------

    def connect_member(self, object_id: str, new_member: str) -> SharingOutcome:
        """Run the non-repudiable connect protocol to admit ``new_member``."""
        return self._coordinate_membership(object_id, "connect", new_member)

    def disconnect_member(self, object_id: str, member: str) -> SharingOutcome:
        """Run the non-repudiable disconnect protocol to remove ``member``."""
        return self._coordinate_membership(object_id, "disconnect", member)

    def connect_member_async(
        self, object_id: str, new_member: str, deadline: Optional[float] = None
    ) -> RunFuture:
        """Start the connect protocol without blocking.

        ``deadline`` is the membership-change expiry: a connect that has not
        settled in time aborts as not-agreed instead of parking a thread.
        """
        return _MembershipRun(
            self, object_id, "connect", new_member, deadline=deadline
        ).start()

    def disconnect_member_async(
        self, object_id: str, member: str, deadline: Optional[float] = None
    ) -> RunFuture:
        """Start the disconnect protocol without blocking (see connect)."""
        return _MembershipRun(
            self, object_id, "disconnect", member, deadline=deadline
        ).start()

    def _coordinate_membership(
        self, object_id: str, action: str, member: str
    ) -> SharingOutcome:
        if self.async_runs:
            return _MembershipRun(self, object_id, action, member).start().result()
        return _MembershipRun(self, object_id, action, member).run_inline()

    def _apply_membership_change(self, object_id: str, action: str, member: str) -> None:
        if action == "connect":
            if not self.membership.is_member(object_id, member):
                self.membership.connect(object_id, Member(uri=member))
        else:
            if self.membership.is_member(object_id, member):
                self.membership.disconnect(object_id, member)
            if member == self.party and self.is_shared(object_id):
                with self._lock:
                    self._objects.pop(object_id, None)

    # -- durability: crash recovery, orphan expiry, abort notices ---------------------------

    @property
    def run_journal(self) -> Optional[RunJournal]:
        return self._coordinator.services.run_journal

    def recover_runs(self) -> Dict[str, str]:
        """Replay the run journal after a restart; returns ``run_id -> action``.

        A run journaled past the commit barrier is *resumed*: its outcome
        wave is re-dispatched verbatim (original per-recipient message ids,
        so peers that already processed it deduplicate) and its local apply
        re-driven -- peers may already hold the outcome, so aborting would
        diverge the replicas.  A run that never reached the barrier is
        *aborted*: no peer can have applied anything, so the recovering
        proposer settles it as not-agreed and sends every wave member an
        explicit :class:`RunAbortNotice` instead of leaving them to wait out
        the orphan expiry.  Idempotent: each recovered run gains a settled
        journal record, so a second call finds nothing open.
        """
        journal = self.run_journal
        if journal is None:
            return {}
        actions: Dict[str, str] = {}
        for record in journal.open_runs():
            if record.phase == PHASE_COMMITTED:
                self._recover_resume(record)
                actions[record.run_id] = "resumed"
            else:
                self._recover_abort(record)
                actions[record.run_id] = "aborted"
        return actions

    def _recover_resume(self, record: JournaledRun) -> None:
        """Drive a crashed-but-committed run to completion."""
        services = self._coordinator.services
        committed = record.committed or {}
        proposed = record.proposed or {}
        run_id = record.run_id
        nr_outcome = EvidenceToken.from_dict(
            dict(committed["nr_outcome"]), revived=True
        )
        # The commit record is written before _on_committed persists the
        # token, so the crash may or may not have left it in the store.
        stored_outcomes = services.evidence_store.tokens_of_type(
            run_id, nr_outcome.token_type
        )
        if not any(
            stored.role == services.evidence_store.ROLE_GENERATED
            for stored in stored_outcomes
        ):
            services.evidence_store.store(
                run_id=run_id,
                token_type=nr_outcome.token_type,
                token=nr_outcome,
                role=services.evidence_store.ROLE_GENERATED,
            )
        # The peers' decision evidence was persisted during phase 2 (before
        # the barrier), so the resent wave can forward it like the original.
        decision_tokens = [
            # Stored token dicts round-trip the store as *unrevived*
            # jsonables (encode escapes their tags, decode unwraps them),
            # so revive here -- same as dispute/fair-exchange replay.
            EvidenceToken.from_dict(dict(stored.token))
            for stored in services.evidence_store.tokens_of_type(
                run_id, TokenType.NR_DECISION.value
            )
            if stored.role == services.evidence_store.ROLE_RECEIVED
        ]
        recipients = list(committed.get("recipients") or [])
        message_ids = dict(committed.get("message_ids") or {})
        attributes = dict(committed.get("attributes") or {})
        messages = [
            B2BProtocolMessage(
                run_id=run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=int(committed.get("step", 3)),
                sender=self.party,
                recipient=recipient,
                payload=committed.get("payload"),
                tokens=[nr_outcome] + decision_tokens,
                attributes=attributes,
                reply_to=self._coordinator.address,
                message_id=message_ids.get(recipient) or new_unique_id("msg"),
            )
            for recipient in recipients
        ]
        errors = self._coordinator.send_all(messages) if messages else []
        apply = dict(committed.get("apply") or {})
        object_id = proposed.get("object_id") or dict(
            attributes.get("proposal") or {}
        ).get("object_id", "")
        applied = False
        if apply.get("agreed"):
            if "action" in apply:  # membership runs apply idempotently
                self._apply_membership_change(
                    object_id, apply["action"], apply["member"]
                )
                applied = True
            elif self.is_shared(object_id):
                proposal = dict(attributes.get("proposal") or {})
                new_version = apply.get("new_version")
                proposed_state = proposal.get("proposed_state")
                # Version-guarded like handle_outcome: a crash after the
                # local apply (or a double recovery) must not re-apply.
                if (
                    proposed_state is not None
                    and new_version == self._shared(object_id).version + 1
                ):
                    outcome_record = self._build_outcome_record(
                        run_id=run_id,
                        proposer=self.party,
                        object_id=object_id,
                        new_version=new_version,
                        outcome_payload=committed.get("payload"),
                        proposal=proposal,
                        nr_outcome=nr_outcome,
                        decision_tokens=decision_tokens,
                    )
                    self._apply_update(
                        object_id,
                        proposed_state,
                        new_version,
                        outcome_record=outcome_record,
                    )
                    applied = True
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=run_id,
            details={
                "event": "run-recovered",
                "action": "resumed",
                "object_id": object_id,
                "agreed": bool(apply.get("agreed")),
                "applied": applied,
                "undelivered_outcomes": [
                    recipient
                    for recipient, error in zip(recipients, errors)
                    if error is not None
                ],
            },
        )
        self.run_journal.record_settled(
            run_id, agreed=bool(apply.get("agreed")), reason="resumed after crash"
        )

    def _recover_abort(self, record: JournaledRun) -> None:
        """Settle a crashed pre-commit run as dead and tell its wave so."""
        proposed = record.proposed or {}
        run_id = record.run_id
        object_id = proposed.get("object_id", "")
        reason = "recovered after crash: aborted before commit"
        notice = RunAbortNotice(
            run_id=run_id,
            object_id=object_id,
            proposer=self.party,
            reason=reason,
        )
        peers = list(proposed.get("peers") or [])
        messages = [
            B2BProtocolMessage(
                run_id=run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=3,
                sender=self.party,
                recipient=peer,
                payload=notice,
                attributes={"action": ACTION_ABORT},
                reply_to=self._coordinator.address,
            )
            for peer in peers
        ]
        # Best-effort: an unreachable peer's own orphan expiry is the backstop.
        errors = self._coordinator.send_all(messages) if messages else []
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=run_id,
            details={
                "event": "run-recovered",
                "action": "aborted",
                "object_id": object_id,
                "reason": reason,
                "unnotified_peers": [
                    peer
                    for peer, error in zip(peers, errors)
                    if error is not None
                ],
            },
        )
        self.run_journal.record_settled(run_id, agreed=False, reason=reason)

    def handle_abort(self, message: B2BProtocolMessage) -> None:
        """GC responder state for a run its proposer recovered-aborted."""
        payload = message.payload
        notice = (
            payload
            if isinstance(payload, RunAbortNotice)
            else RunAbortNotice.from_dict(dict(payload or {}))
        )
        run = self._handler.runs.get(message.run_id)
        if run is not None and run.initiator != message.sender:
            # Only the proposer that started a run may declare it dead.
            self._coordinator.services.audit_log.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=message.run_id,
                details={
                    "event": "abort-refused",
                    "claimed_proposer": message.sender,
                    "initiator": run.initiator,
                },
            )
            return
        self._clear_orphan_watch(message.run_id)
        if run is not None and not run.finished:
            run.abort()
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=message.run_id,
            details={
                "event": "run-abort-received",
                "object_id": notice.object_id,
                "proposer": message.sender,
                "reason": notice.reason,
            },
        )

    def _watch_orphan_run(
        self, run_id: str, proposer: str, object_id: str
    ) -> None:
        """Start the proposal-age expiry clock for a responder-side run.

        The timer is tagged ``orphan:{party}:{run_id}`` -- *not* the bare
        run id: in a simulated network every party shares one scheduler, so
        a bare tag would let a proposer-side ``cancel_run`` (abort, settle)
        silently withdraw this responder's expiry watch, and vice versa.
        """
        timeout = self.orphan_run_timeout
        scheduler = self._coordinator.network.retry_scheduler
        if timeout is None or scheduler is None:
            return
        with self._lock:
            if run_id in self._orphan_timers:
                return
            self._orphan_timers[run_id] = scheduler.schedule(
                timeout,
                lambda: self._expire_orphan_run(run_id, proposer, object_id),
                run_id=f"orphan:{self.party}:{run_id}",
            )

    def _clear_orphan_watch(self, run_id: str) -> None:
        with self._lock:
            handle = self._orphan_timers.pop(run_id, None)
        if handle is not None:
            handle.cancel()

    @contextmanager
    def _outcome_application(self, run_id: str) -> Iterator[None]:
        """Mark ``run_id`` as mid-apply so a racing orphan expiry cancels.

        The marker and the orphan-timer pop happen under one lock hold: an
        expiry firing concurrently either sees the marker (and cancels,
        audited) or ran to completion before the apply began -- it can never
        abort a run whose outcome is already being committed.
        """
        with self._lock:
            self._applying_outcomes.add(run_id)
            handle = self._orphan_timers.pop(run_id, None)
        if handle is not None:
            handle.cancel()
        try:
            yield
        finally:
            with self._lock:
                self._applying_outcomes.discard(run_id)

    def _expire_orphan_run(
        self, run_id: str, proposer: str, object_id: str
    ) -> None:
        with self._lock:
            self._orphan_timers.pop(run_id, None)
            applying = run_id in self._applying_outcomes
        if applying:
            # The "orphaned" run's outcome arrived after all and is being
            # applied right now: expiring it would abort an
            # already-committed run.  Cancel the expiry instead, audited.
            self._coordinator.services.audit_log.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=run_id,
                details={
                    "event": "orphan-expiry-cancelled",
                    "object_id": object_id,
                    "proposer": proposer,
                    "reason": "outcome application in progress",
                },
            )
            return
        run = self._handler.runs.get(run_id)
        if run is None or run.finished:
            return
        run.abort()
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=run_id,
            details={
                "event": "orphan-run-expired",
                "object_id": object_id,
                "proposer": proposer,
                "timeout": self.orphan_run_timeout,
            },
        )

    def pending_orphan_watches(self) -> List[str]:
        """Run ids whose orphan expiry clock is still ticking (sorted)."""
        with self._lock:
            return sorted(self._orphan_timers)

    # -- proposer outcome re-delivery ------------------------------------------------

    def _schedule_outcome_redelivery(
        self,
        run_id: str,
        object_id: str,
        new_version: Optional[int],
        messages: List[B2BProtocolMessage],
    ) -> None:
        """Queue an undelivered outcome wave for scheduler-driven re-delivery.

        Fires on the network's :class:`RetryScheduler` with exponential
        backoff and no attempt cap: re-delivery stops only when every peer
        has acknowledged its message or (for agreed updates) the object has
        advanced past ``new_version`` -- stragglers then catch up through
        resync instead.  Peers whose circuit breaker is open are skipped for
        the attempt rather than burned against the half-open probe budget.
        Re-sent messages keep their original message ids, so a peer the
        journal recovery or a duplicate attempt already reached dedups them.
        """
        if not self.outcome_redelivery or not messages:
            return
        scheduler = self._coordinator.network.retry_scheduler
        if scheduler is None:
            return
        with self._lock:
            if run_id in self._redeliveries:
                return
            self._redeliveries[run_id] = {
                "object_id": object_id,
                "new_version": new_version,
                "pending": {
                    message.recipient: message for message in messages
                },
                "attempts": 0,
                # Parent context for the per-attempt ``redeliver`` spans:
                # captured here (still inside the run's activation) because
                # the attempts themselves fire on scheduler/executor threads
                # with unrelated ambient context.
                "trace_parent": _tracing.current_ctx()
                if _OBS.tracing is not None
                else None,
            }
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=run_id,
            details={
                "event": "outcome-redelivery-scheduled",
                "object_id": object_id,
                "peers": sorted(message.recipient for message in messages),
            },
        )
        self._arm_redelivery(run_id, REDELIVERY_BASE_DELAY)

    @staticmethod
    def _redelivery_delay(attempts: int) -> float:
        return min(REDELIVERY_BASE_DELAY * (2**attempts), REDELIVERY_MAX_DELAY)

    def _arm_redelivery(self, run_id: str, delay: float) -> None:
        scheduler = self._coordinator.network.retry_scheduler
        with self._lock:
            if run_id not in self._redeliveries or run_id in self._redelivery_timers:
                return
            # Tagged like the orphan watch: party-qualified so one shared
            # scheduler (simulated networks) never cross-cancels.
            self._redelivery_timers[run_id] = scheduler.schedule(
                delay,
                lambda: self._fire_redelivery(run_id),
                run_id=f"redeliver:{self.party}:{run_id}",
            )

    def _fire_redelivery(self, run_id: str) -> None:
        with self._lock:
            self._redelivery_timers.pop(run_id, None)
            task = self._redeliveries.get(run_id)
            if task is None:
                return
            object_id = task["object_id"]
            new_version = task["new_version"]
            pending = dict(task["pending"])
            attempts = task["attempts"]
            trace_parent = task.get("trace_parent")
        tracer = _OBS.tracing
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "redeliver",
                trace_id=run_id,
                parent=trace_parent,
                use_ambient_parent=False,
                attributes={"attempt": attempts + 1, "object_id": object_id},
            )
        if (
            new_version is not None
            and self.is_shared(object_id)
            and self._shared(object_id).version > new_version
        ):
            # The object advanced past this outcome; a straggler can no
            # longer apply it (version guard) and catches up via resync,
            # which serves the newer versions too.
            with self._lock:
                self._redeliveries.pop(run_id, None)
            self._coordinator.services.audit_log.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=run_id,
                details={
                    "event": "outcome-redelivery-superseded",
                    "object_id": object_id,
                    "new_version": new_version,
                    "unacked_peers": sorted(pending),
                },
            )
            if span is not None:
                span.end("superseded")
            return
        breaker = getattr(self._coordinator.network, "circuit_breaker", None)
        sendable = [
            message
            for peer, message in sorted(pending.items())
            if breaker is None or breaker.state(peer) != BREAKER_STATE_OPEN
        ]
        if not sendable:  # every unacked peer's breaker is open; back off
            with self._lock:
                if run_id not in self._redeliveries:
                    if span is not None:
                        span.end("cancelled")
                    return
                self._redeliveries[run_id]["attempts"] = attempts + 1
            self._arm_redelivery(run_id, self._redelivery_delay(attempts + 1))
            if span is not None:
                span.end("skipped")
            return
        recipients = [message.recipient for message in sendable]
        with _span_scope(span):  # stamp the resent messages with this attempt
            fan_out = self._coordinator.send_all_async(sendable)
        fan_out.add_done_callback(
            lambda _fo: self._redelivery_done(run_id, recipients, fan_out, span)
        )

    def _redelivery_done(
        self, run_id: str, recipients: List[str], fan_out, span=None
    ) -> None:
        errors = fan_out.errors()
        delivered = [
            peer for peer, error in zip(recipients, errors) if error is None
        ]
        with self._lock:
            task = self._redeliveries.get(run_id)
            if task is None:
                if span is not None:
                    span.end("cancelled")
                return
            for peer in delivered:
                task["pending"].pop(peer, None)
            task["attempts"] += 1
            attempts = task["attempts"]
            object_id = task["object_id"]
            remaining = sorted(task["pending"])
            if not remaining:
                self._redeliveries.pop(run_id, None)
        audit = self._coordinator.services.audit_log
        with _span_scope(span):  # correlate the re-delivery audits
            if delivered:
                audit.append(
                    category=AUDIT_CATEGORY_SHARING,
                    subject=run_id,
                    details={
                        "event": "outcome-redelivered",
                        "object_id": object_id,
                        "peers": delivered,
                        "unacked_peers": remaining,
                    },
                )
            if remaining:
                self._arm_redelivery(run_id, self._redelivery_delay(attempts))
                if span is not None:
                    span.end("retry")
                return
            audit.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=run_id,
                details={
                    "event": "outcome-redelivery-complete",
                    "object_id": object_id,
                },
            )
        if span is not None:
            span.end("ok")

    def pending_redeliveries(self) -> List[str]:
        """Run ids with an outcome wave still awaiting re-delivery (sorted)."""
        with self._lock:
            return sorted(self._redeliveries)

    # -- restart-time resync (anti-entropy) ------------------------------------------

    def resync_vector(self) -> Dict[str, Dict[str, Any]]:
        """Per-object ``{"version", "digest"}`` vector for anti-entropy compare."""
        return {
            object_id: {
                "version": self._shared(object_id).version,
                "digest": self.state_digest(object_id).hex(),
            }
            for object_id in self.object_ids()
        }

    def resync_records(
        self, object_id: str, from_version: int
    ) -> List[Dict[str, Any]]:
        """Stored outcome records for every agreed version above ``from_version``.

        Serves ``from_version + 1 .. current`` in order, stopping at the
        first gap: a version this party applied without a durable outcome
        record (durable state off at the time, or a membership bootstrap)
        cannot be served signature-checked, and anything past the gap would
        fail the receiver's version guard anyway.
        """
        if not self.durable_state or not self.is_shared(object_id):
            return []
        state_store = self._coordinator.services.state_store
        records: List[Dict[str, Any]] = []
        current = self._shared(object_id).version
        for version in range(from_version + 1, current + 1):
            record = state_store.outcome_record(object_id, version)
            if record is None or record.get("outcome") is None:
                break
            records.append(record)
        return records

    def apply_resync_record(self, record: Dict[str, Any]) -> bool:
        """Apply one signature-checked catch-up record from a fresher peer.

        Exactly the live :meth:`handle_outcome` discipline, replayed from a
        peer's durable store: the proposer's ``NR_OUTCOME`` must verify
        against the record's outcome payload, the apply is version-guarded
        (``new_version == version + 1``), evidence lands with the same roles
        a live wave would produce, and the record is re-persisted so a
        transitively-stale third peer can pull it from here later.  Returns
        ``True`` when the record advanced the replica.
        """
        object_id = record.get("object_id")
        if not object_id or not self.is_shared(object_id):
            return False
        run_id = str(record.get("run_id") or "")
        proposer = record.get("proposer")
        new_version = record.get("new_version")
        outcome_payload = record.get("outcome")
        proposal = dict(record.get("proposal") or {})
        proposed_state = proposal.get("proposed_state")
        if (
            not run_id
            or outcome_payload is None
            or proposed_state is None
            or new_version is None
        ):
            return False
        if new_version != self._shared(object_id).version + 1:
            return False
        services = self._coordinator.services
        nr_outcome = EvidenceToken.from_dict(dict(record.get("nr_outcome") or {}))
        services.evidence_verifier.require_valid(
            nr_outcome,
            expected_type=TokenType.NR_OUTCOME,
            expected_run_id=run_id,
            expected_payload=outcome_payload,
            expected_issuer=proposer,
        )
        # The resync apply joins the original run's trace (trace id == run
        # id) as a second root: the proposer's tree ended long ago in
        # another process, so there is no parent to attach to.
        tracer = _OBS.tracing
        span = None
        if tracer is not None:
            span = tracer.start_span(
                "resync:apply",
                trace_id=run_id,
                use_ambient_parent=False,
                attributes={
                    "object_id": object_id,
                    "new_version": new_version,
                    "party": self.party,
                },
            )
        applied = False
        try:
            with _span_scope(span):
                with self._outcome_application(run_id):
                    # Re-check under the marker: a live (re-)delivered outcome
                    # for the same version racing this resync must win exactly
                    # once.
                    if new_version != self._shared(object_id).version + 1:
                        return False
                    services.evidence_store.store(
                        run_id=run_id,
                        token_type=nr_outcome.token_type,
                        token=nr_outcome,
                        role=services.evidence_store.ROLE_RECEIVED,
                    )
                    for token_dict in record.get("decisions") or []:
                        token = EvidenceToken.from_dict(dict(token_dict))
                        try:
                            services.evidence_verifier.require_valid(
                                token,
                                expected_type=TokenType.NR_DECISION,
                                expected_run_id=run_id,
                            )
                        except EvidenceVerificationError:
                            continue
                        services.evidence_store.store(
                            run_id=run_id,
                            token_type=token.token_type,
                            token=token,
                            role=services.evidence_store.ROLE_RECEIVED,
                        )
                    self._apply_update(
                        object_id,
                        proposed_state,
                        new_version,
                        outcome_record=record,
                    )
                services.audit_log.append(
                    category=AUDIT_CATEGORY_SHARING,
                    subject=run_id,
                    details={
                        "event": "resync-applied",
                        "object_id": object_id,
                        "new_version": new_version,
                        "proposer": proposer,
                    },
                )
                applied = True
                return True
        finally:
            if span is not None:
                span.end("ok" if applied else "skipped")

    def note_resync_divergence(
        self, object_id: str, peer: str, version: int, remote_digest: str
    ) -> None:
        """Audit a same-version digest mismatch found during anti-entropy.

        Converge-never-diverge: resync only ever *advances* a replica along
        the agreed history, so two replicas disagreeing at the *same*
        version is evidence of corruption or misbehaviour -- recorded for
        dispute resolution, never papered over by overwriting state.
        """
        self._coordinator.services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=object_id,
            details={
                "event": "resync-divergence",
                "peer": peer,
                "version": version,
                "local_digest": self.state_digest(object_id).hex(),
                "remote_digest": remote_digest,
            },
        )

    # -- handling incoming protocol messages (called by the handler) ----------------------------

    def handle_proposal(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Validate a remote party's proposed update and return a signed decision."""
        services = self._coordinator.services
        proposal = message.payload
        object_id = proposal["object_id"]
        nro_update = message.require_token(TokenType.NRO_UPDATE.value)

        decision: ValidationDecision
        try:
            services.evidence_verifier.require_valid(
                nro_update,
                expected_type=TokenType.NRO_UPDATE,
                expected_run_id=message.run_id,
                expected_payload=proposal,
                expected_issuer=message.sender,
            )
        except EvidenceVerificationError as error:
            decision = ValidationDecision(
                accepted=False, reason=f"origin evidence invalid: {error}", validator="controller"
            )
        else:
            services.evidence_store.store(
                run_id=message.run_id,
                token_type=nro_update.token_type,
                token=nro_update,
                role=services.evidence_store.ROLE_RECEIVED,
            )
            decision = self._validate_proposal(message.sender, proposal)

        decision_payload = codec.canonicalize(
            {
                "object_id": object_id,
                "run_id": message.run_id,
                "accepted": decision.accepted,
                "reason": decision.reason,
                "validator": decision.validator,
                "responder": self.party,
                "proposal_digest": payload_digest(proposal).hex(),
            }
        )
        nr_decision = services.evidence_builder.build(
            token_type=TokenType.NR_DECISION,
            run_id=message.run_id,
            step=2,
            recipient=message.sender,
            payload=decision_payload,
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nr_decision.token_type,
            token=nr_decision,
            role=services.evidence_store.ROLE_GENERATED,
        )
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=message.run_id,
            details={
                "event": "proposal-validated",
                "object_id": object_id,
                "proposer": message.sender,
                "accepted": decision.accepted,
                "reason": decision.reason,
            },
        )
        return B2BProtocolMessage(
            run_id=message.run_id,
            protocol=NR_SHARING_PROTOCOL,
            step=2,
            sender=self.party,
            recipient=message.sender,
            payload=decision_payload,
            tokens=[nr_decision],
            attributes={"action": "decision"},
            reply_to=self._coordinator.address,
        )

    def _validate_proposal(self, proposer: str, proposal: Dict[str, Any]) -> ValidationDecision:
        object_id = proposal["object_id"]
        if not self.is_shared(object_id):
            return ValidationDecision(
                accepted=False,
                reason=f"{self.party} does not share {object_id}",
                validator="controller",
            )
        if not self.membership.is_member(object_id, proposer):
            return ValidationDecision(
                accepted=False,
                reason=f"{proposer} is not a member of the sharing group",
                validator="controller",
            )
        shared = self._shared(object_id)
        if proposal.get("base_version") != shared.version:
            return ValidationDecision(
                accepted=False,
                reason=(
                    f"stale base version {proposal.get('base_version')} "
                    f"(current is {shared.version})"
                ),
                validator="controller",
            )
        context = ValidationContext(
            object_id=object_id,
            proposer=proposer,
            current_state=self.get_state(object_id),
            proposed_state=codec.unwrap(proposal.get("proposed_state")),
            base_version=proposal.get("base_version", 0),
        )
        return shared.validators.validate(context)

    def handle_outcome(self, message: B2BProtocolMessage) -> None:
        """Apply (or discard) a proposer's distributed outcome."""
        services = self._coordinator.services
        outcome_payload = message.payload
        object_id = outcome_payload["object_id"]
        nr_outcome = message.require_token(TokenType.NR_OUTCOME.value)
        services.evidence_verifier.require_valid(
            nr_outcome,
            expected_type=TokenType.NR_OUTCOME,
            expected_run_id=message.run_id,
            expected_payload=outcome_payload,
            expected_issuer=message.sender,
        )
        services.evidence_store.store(
            run_id=message.run_id,
            token_type=nr_outcome.token_type,
            token=nr_outcome,
            role=services.evidence_store.ROLE_RECEIVED,
        )
        # Keep every peer's decision evidence for dispute resolution: the
        # forwarded tokens are verified as a set and only verifiable evidence
        # is retained.  Verification stays on this thread: under parallel
        # dispatch handle_outcome itself already runs on a worker (one per
        # recipient), and the proposer verified each decision once, so these
        # re-checks hit the process-wide signature memo -- offloading
        # microsecond memo hits would cost more than it saves.
        decision_tokens = [
            token
            for token in message.tokens
            if token.token_type == TokenType.NR_DECISION.value
        ]
        verdicts = services.evidence_verifier.verify_all(
            (
                (
                    token,
                    {
                        "expected_type": TokenType.NR_DECISION,
                        "expected_run_id": message.run_id,
                    },
                )
                for token in decision_tokens
            ),
            parallel_verification=False,
        )
        rejected_decisions = []
        for token, error in zip(decision_tokens, verdicts):
            if error is not None:
                rejected_decisions.append(token.token_id)
                continue
            services.evidence_store.store(
                run_id=message.run_id,
                token_type=token.token_type,
                token=token,
                role=services.evidence_store.ROLE_RECEIVED,
            )
        agreed = bool(outcome_payload.get("agreed"))
        applied = False
        if agreed and self.is_shared(object_id):
            proposal = message.attributes.get("proposal") or {}
            proposed_state = proposal.get("proposed_state")
            new_version = outcome_payload.get("new_version")
            shared = self._shared(object_id)
            if proposed_state is not None and new_version == shared.version + 1:
                record = self._build_outcome_record(
                    run_id=message.run_id,
                    proposer=message.sender,
                    object_id=object_id,
                    new_version=new_version,
                    outcome_payload=outcome_payload,
                    proposal=proposal,
                    nr_outcome=nr_outcome,
                    decision_tokens=[
                        token
                        for token, error in zip(decision_tokens, verdicts)
                        if error is None
                    ],
                )
                self._apply_update(
                    object_id, proposed_state, new_version, outcome_record=record
                )
                applied = True
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=message.run_id,
            details={
                "event": "outcome-received",
                "object_id": object_id,
                "agreed": agreed,
                "applied": applied,
                "rejected_decisions": rejected_decisions,
            },
        )

    def handle_membership_proposal(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        """Validate a proposed membership change and return a signed decision."""
        services = self._coordinator.services
        proposal = message.payload
        object_id = proposal["object_id"]
        token = message.require_token(TokenType.NR_MEMBERSHIP.value)
        try:
            services.evidence_verifier.require_valid(
                token,
                expected_type=TokenType.NR_MEMBERSHIP,
                expected_run_id=message.run_id,
                expected_payload=proposal,
                expected_issuer=message.sender,
            )
        except EvidenceVerificationError as error:
            decision = ValidationDecision(
                accepted=False, reason=str(error), validator="controller"
            )
        else:
            if not self.is_shared(object_id):
                decision = ValidationDecision(
                    accepted=False,
                    reason=f"{self.party} does not share {object_id}",
                    validator="controller",
                )
            elif not self.membership.is_member(object_id, message.sender):
                decision = ValidationDecision(
                    accepted=False,
                    reason=f"{message.sender} is not a member",
                    validator="controller",
                )
            else:
                decision = ValidationDecision(accepted=True, validator="controller")
        decision_payload = codec.canonicalize(
            {
                "object_id": object_id,
                "run_id": message.run_id,
                "accepted": decision.accepted,
                "reason": decision.reason,
                "validator": decision.validator,
                "responder": self.party,
                "proposal_digest": payload_digest(proposal).hex(),
            }
        )
        nr_decision = services.evidence_builder.build(
            token_type=TokenType.NR_DECISION,
            run_id=message.run_id,
            step=2,
            recipient=message.sender,
            payload=decision_payload,
        )
        return B2BProtocolMessage(
            run_id=message.run_id,
            protocol=NR_SHARING_PROTOCOL,
            step=2,
            sender=self.party,
            recipient=message.sender,
            payload=decision_payload,
            tokens=[nr_decision],
            attributes={"action": "membership-decision"},
            reply_to=self._coordinator.address,
        )

    def handle_membership_outcome(self, message: B2BProtocolMessage) -> None:
        """Apply an agreed membership change (and bootstrap new members)."""
        services = self._coordinator.services
        outcome = message.payload
        object_id = outcome["object_id"]
        nr_outcome = message.require_token(TokenType.NR_OUTCOME.value)
        services.evidence_verifier.require_valid(
            nr_outcome,
            expected_type=TokenType.NR_OUTCOME,
            expected_run_id=message.run_id,
            expected_payload=outcome,
            expected_issuer=message.sender,
        )
        if not outcome.get("agreed"):
            return
        action = outcome["membership_action"]
        member = outcome["member"]
        if action == "connect" and member == self.party and not self.is_shared(object_id):
            # Bootstrap: a newly admitted member initialises its replica from
            # the outcome message.
            proposal = message.attributes.get("proposal") or {}
            members = list(proposal.get("current_members", [])) + [self.party]
            state = message.attributes.get("object_state")
            self.register_object(object_id, state, members)
            shared = self._shared(object_id)
            shared.version = int(message.attributes.get("object_version", 0))
            return
        if self.is_shared(object_id):
            self._apply_membership_change(object_id, action, member)


class _UpdateRun(_CoordinationRun):
    """State-update coordination (propose / decide / outcome) as a run machine."""

    def __init__(
        self,
        controller: B2BObjectController,
        object_id: str,
        new_state: Any,
        deadline: Optional[float] = None,
    ) -> None:
        super().__init__(controller, object_id, new_unique_id("share"), deadline)
        self._shared = controller._shared(object_id)  # noqa: SLF001 - same module
        self._new_state = new_state
        self._base_version = 0
        self._proposal: Any = None
        self._nro_update: Optional[EvidenceToken] = None
        self._peers: List[str] = []
        self._decisions: Dict[str, ValidationDecision] = {}
        self._decision_tokens: Dict[str, EvidenceToken] = {}
        self._reason = ""
        self._agreed = False
        self._degraded = False
        self._new_version: Optional[int] = None
        self._nr_outcome: Optional[EvidenceToken] = None
        self._outcome_payload: Any = None

    _journal_kind = "update"

    def _journal_commit_apply(self) -> Dict[str, Any]:
        return {
            "agreed": self._agreed,
            "new_version": self._new_version,
        }

    def _phase1_messages(self) -> List[B2BProtocolMessage]:
        controller, services = self._controller, self._services
        self._base_version = self._shared.version
        # Encode once: the proposed state and the proposal envelope are
        # canonicalised here and their (bytes, digest, size) shared by every
        # evidence token, per-peer message and traffic account downstream.
        self._proposal = codec.canonicalize(
            {
                "object_id": self.object_id,
                "proposer": controller.party,
                "base_version": self._base_version,
                "proposed_state": codec.canonicalize(self._new_state),
            }
        )
        self._nro_update = services.evidence_builder.build(
            token_type=TokenType.NRO_UPDATE,
            run_id=self.run_id,
            step=1,
            recipient=self.object_id,
            payload=self._proposal,
        )
        services.evidence_store.store(
            run_id=self.run_id,
            token_type=self._nro_update.token_type,
            token=self._nro_update,
            role=services.evidence_store.ROLE_GENERATED,
        )
        # Phase 1: collect signed decisions from every peer through one
        # batched fan-out; the shared proposal body is encoded exactly once.
        self._peers = controller.peers(self.object_id)
        return [
            B2BProtocolMessage(
                run_id=self.run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=1,
                sender=controller.party,
                recipient=peer,
                payload=self._proposal,
                tokens=[self._nro_update],
                attributes={"action": ACTION_PROPOSE},
                reply_to=self._coordinator.address,
            )
            for peer in self._peers
        ]

    def _phase2_messages(self, results: List) -> List[B2BProtocolMessage]:
        controller, services = self._controller, self._services
        # Built locally and published by (atomic) reference assignment: a
        # concurrent abort snapshots either no decisions or all of them,
        # never a dict mid-mutation.
        decisions: Dict[str, ValidationDecision] = {}
        decision_tokens: Dict[str, EvidenceToken] = {}
        reason = ""
        for peer, (response, error) in zip(self._peers, results):
            if error is not None:
                decisions[peer] = ValidationDecision(
                    accepted=False,
                    reason=f"peer unreachable: {error}",
                    validator="coordinator",
                )
                reason = reason or f"peer {peer} unreachable"
                continue
            decision, token = controller._verify_decision(  # noqa: SLF001
                self.run_id, peer, self._proposal, response
            )
            decisions[peer] = decision
            if token is not None:
                decision_tokens[peer] = token
                services.evidence_store.store(
                    run_id=self.run_id,
                    token_type=token.token_type,
                    token=token,
                    role=services.evidence_store.ROLE_RECEIVED,
                )
            if not decision.accepted and not reason:
                reason = decision.reason
        self._decisions = decisions
        self._decision_tokens = decision_tokens
        self._reason = reason

        self._agreed = all(
            decision.accepted for decision in self._decisions.values()
        )
        self._new_version = self._base_version + 1 if self._agreed else None

        # Phase 2: distribute the collective decision to every member.
        outcome = codec.canonicalize(
            {
                "object_id": self.object_id,
                "proposer": controller.party,
                "agreed": self._agreed,
                "base_version": self._base_version,
                "new_version": self._new_version,
                "proposed_state_digest": self._proposal.digest.hex(),
                "decisions": {
                    party: decision.to_dict()
                    for party, decision in self._decisions.items()
                },
            }
        )
        self._nr_outcome = services.evidence_builder.build(
            token_type=TokenType.NR_OUTCOME,
            run_id=self.run_id,
            step=3,
            recipient=self.object_id,
            payload=outcome,
        )
        self._outcome_payload = outcome
        # Stored by _on_committed once the commit barrier is passed, so an
        # abort racing this continuation never leaves a generated NR_OUTCOME
        # contradicting the run's not-agreed result in the evidence store.
        outcome_tokens = [self._nr_outcome] + list(self._decision_tokens.values())
        self._outcome_wave = [
            B2BProtocolMessage(
                run_id=self.run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=3,
                sender=controller.party,
                recipient=peer,
                payload=outcome,
                tokens=outcome_tokens,
                attributes={"action": ACTION_OUTCOME, "proposal": self._proposal},
                reply_to=self._coordinator.address,
            )
            for peer in self._peers
        ]
        # Graceful degradation: when *every* peer was unreachable in phase 1
        # (an exhausted partition window, a severed network) the outcome wave
        # can only burn the same retry budgets again.  Resolve not-agreed
        # with an audited reason and skip the fan-out -- the proposer's
        # waiter settles normally instead of stranding on hopeless retries;
        # the built wave stays stashed for journal recovery and the
        # scheduler-driven re-delivery task.
        if self._peers and all(error is not None for _response, error in results):
            self._degraded = True
            services.audit_log.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=self.run_id,
                details={
                    "event": "run-degraded",
                    "object_id": self.object_id,
                    "reason": "all peers unreachable; suspected partition",
                    "peers": list(self._peers),
                    "outcome_wave_skipped": True,
                },
            )
            return []
        return self._outcome_wave

    def _on_committed(self) -> None:
        services = self._services
        services.evidence_store.store(
            run_id=self.run_id,
            token_type=self._nr_outcome.token_type,
            token=self._nr_outcome,
            role=services.evidence_store.ROLE_GENERATED,
        )

    def _finalize(self, errors: List[Optional[Exception]]) -> SharingOutcome:
        controller, services = self._controller, self._services
        # A peer that is temporarily unreachable misses the outcome
        # notification; the proposer still holds the signed outcome and every
        # decision, so the peer can recover the result later.  A
        # failed-to-validate peer cannot have agreed, so the outcome for it
        # is never an apply.
        undelivered_outcomes = (
            list(self._peers)
            if self._degraded
            else [
                peer
                for peer, error in zip(self._peers, errors)
                if error is not None
            ]
        )
        if self._agreed:
            outcome_record = controller._build_outcome_record(  # noqa: SLF001
                run_id=self.run_id,
                proposer=controller.party,
                object_id=self.object_id,
                new_version=self._new_version,
                outcome_payload=self._outcome_payload,
                proposal=self._proposal,
                nr_outcome=self._nr_outcome,
                decision_tokens=list(self._decision_tokens.values()),
            )
            controller._apply_update(  # noqa: SLF001
                self.object_id,
                self._proposal["proposed_state"],
                self._new_version,
                outcome_record=outcome_record,
            )
        if undelivered_outcomes:
            missed = set(undelivered_outcomes)
            controller._schedule_outcome_redelivery(  # noqa: SLF001
                self.run_id,
                self.object_id,
                self._new_version,
                [
                    message
                    for message in self._outcome_wave
                    if message.recipient in missed
                ],
            )
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=self.run_id,
            details={
                "event": "update-coordinated",
                "object_id": self.object_id,
                "agreed": self._agreed,
                "new_version": self._new_version,
                "decisions": {
                    party: decision.accepted
                    for party, decision in self._decisions.items()
                },
                "undelivered_outcomes": undelivered_outcomes,
            },
        )
        evidence = {
            TokenType.NRO_UPDATE.value: self._nro_update,
            TokenType.NR_OUTCOME.value: self._nr_outcome,
        }
        for party, token in self._decision_tokens.items():
            evidence[f"{TokenType.NR_DECISION.value}:{party}"] = token
        return SharingOutcome(
            run_id=self.run_id,
            object_id=self.object_id,
            agreed=self._agreed,
            new_version=self._new_version,
            proposer=controller.party,
            decisions=self._decisions,
            evidence=evidence,
            reason=self._reason,
        )

    def _aborted_outcome(self, reason: str) -> SharingOutcome:
        self._services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=self.run_id,
            details={
                "event": "update-aborted",
                "object_id": self.object_id,
                "reason": reason,
            },
        )
        evidence: Dict[str, EvidenceToken] = {}
        if self._nro_update is not None:
            evidence[TokenType.NRO_UPDATE.value] = self._nro_update
        return SharingOutcome(
            run_id=self.run_id,
            object_id=self.object_id,
            agreed=False,
            new_version=None,
            proposer=self._controller.party,
            decisions=dict(self._decisions),
            evidence=evidence,
            reason=reason,
        )


class _MembershipRun(_CoordinationRun):
    """Membership-change coordination (connect / disconnect) as a run machine."""

    def __init__(
        self,
        controller: B2BObjectController,
        object_id: str,
        action: str,
        member: str,
        deadline: Optional[float] = None,
    ) -> None:
        super().__init__(controller, object_id, new_unique_id("member"), deadline)
        self._shared = controller._shared(object_id)  # noqa: SLF001 - same module
        self._action = action
        self._member = member
        self._proposal: Any = None
        self._nro_update: Optional[EvidenceToken] = None
        self._voters: List[str] = []
        self._ordered_recipients: List[str] = []
        self._decisions: Dict[str, ValidationDecision] = {}
        self._decision_tokens: Dict[str, EvidenceToken] = {}
        self._agreed = False
        self._degraded = False
        self._nr_outcome: Optional[EvidenceToken] = None

    _journal_kind = "membership"

    def _journal_commit_apply(self) -> Dict[str, Any]:
        return {
            "agreed": self._agreed,
            "action": self._action,
            "member": self._member,
        }

    def _phase1_messages(self) -> List[B2BProtocolMessage]:
        controller, services = self._controller, self._services
        action, member = self._action, self._member
        current_members = controller.members(self.object_id)
        if action == "connect" and member in current_members:
            raise MembershipError(f"{member!r} already shares {self.object_id!r}")
        if action == "disconnect" and member not in current_members:
            raise MembershipError(f"{member!r} does not share {self.object_id!r}")

        self._proposal = codec.canonicalize(
            {
                "object_id": self.object_id,
                "proposer": controller.party,
                "membership_action": action,
                "member": member,
                "current_members": current_members,
                "state_digest": controller.state_digest(self.object_id).hex(),
                "version": self._shared.version,
            }
        )
        self._nro_update = services.evidence_builder.build(
            token_type=TokenType.NR_MEMBERSHIP,
            run_id=self.run_id,
            step=1,
            recipient=self.object_id,
            payload=self._proposal,
        )
        services.evidence_store.store(
            run_id=self.run_id,
            token_type=self._nro_update.token_type,
            token=self._nro_update,
            role=services.evidence_store.ROLE_GENERATED,
        )
        # The affected member only votes on its own disconnection, not on its
        # own admission (it is not yet part of the trust domain for connect).
        self._voters = [
            peer
            for peer in controller.peers(self.object_id)
            if peer != member or action == "disconnect"
        ]
        return [
            B2BProtocolMessage(
                run_id=self.run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=1,
                sender=controller.party,
                recipient=peer,
                payload=self._proposal,
                tokens=[self._nro_update],
                attributes={"action": ACTION_MEMBERSHIP_PROPOSE},
                reply_to=self._coordinator.address,
            )
            for peer in self._voters
        ]

    def _phase2_messages(self, results: List) -> List[B2BProtocolMessage]:
        controller, services = self._controller, self._services
        action, member = self._action, self._member
        # Local build + atomic publish, same reasoning as the update run.
        decisions: Dict[str, ValidationDecision] = {}
        decision_tokens: Dict[str, EvidenceToken] = {}
        for peer, (response, error) in zip(self._voters, results):
            if error is not None:
                decisions[peer] = ValidationDecision(
                    accepted=False,
                    reason=f"peer unreachable: {error}",
                    validator="coordinator",
                )
                continue
            decision, token = controller._verify_decision(  # noqa: SLF001
                self.run_id, peer, self._proposal, response
            )
            decisions[peer] = decision
            if token is not None:
                decision_tokens[peer] = token
        self._decisions = decisions
        self._decision_tokens = decision_tokens

        self._agreed = all(
            decision.accepted for decision in self._decisions.values()
        )
        outcome = codec.canonicalize(
            {
                "object_id": self.object_id,
                "proposer": controller.party,
                "membership_action": action,
                "member": member,
                "agreed": self._agreed,
                "decisions": {p: d.to_dict() for p, d in self._decisions.items()},
            }
        )
        self._nr_outcome = services.evidence_builder.build(
            token_type=TokenType.NR_OUTCOME,
            run_id=self.run_id,
            step=3,
            recipient=self.object_id,
            payload=outcome,
        )
        recipients = set(controller.peers(self.object_id))
        if action == "connect" and self._agreed:
            recipients.add(member)
        outcome_tokens = [self._nr_outcome] + list(self._decision_tokens.values())
        self._outcome_wave = [
            B2BProtocolMessage(
                run_id=self.run_id,
                protocol=NR_SHARING_PROTOCOL,
                step=3,
                sender=controller.party,
                recipient=peer,
                payload=outcome,
                tokens=outcome_tokens,
                attributes={
                    "action": ACTION_MEMBERSHIP_OUTCOME,
                    "proposal": self._proposal,
                    "object_state": self._shared.state if action == "connect" else None,
                    "object_version": self._shared.version,
                },
                reply_to=self._coordinator.address,
            )
            for peer in sorted(recipients)
        ]
        # Same degraded path as the update run: a vote wave that reached
        # nobody means the outcome wave cannot reach anybody either.  The
        # built wave stays stashed for journal recovery and re-delivery.
        if self._voters and all(error is not None for _response, error in results):
            self._degraded = True
            self._ordered_recipients = []
            services.audit_log.append(
                category=AUDIT_CATEGORY_SHARING,
                subject=self.run_id,
                details={
                    "event": "run-degraded",
                    "object_id": self.object_id,
                    "reason": "all peers unreachable; suspected partition",
                    "peers": list(self._voters),
                    "outcome_wave_skipped": True,
                },
            )
            return []
        self._ordered_recipients = sorted(recipients)
        return self._outcome_wave

    def _finalize(self, errors: List[Optional[Exception]]) -> SharingOutcome:
        controller, services = self._controller, self._services
        action, member = self._action, self._member
        agreed = self._agreed
        for peer, error in zip(self._ordered_recipients, errors):
            if error is not None and peer == member and action == "connect":
                agreed = False
        if agreed:
            controller._apply_membership_change(  # noqa: SLF001
                self.object_id, action, member
            )
        if self._degraded:
            # A degraded membership run settles not-agreed everywhere, so
            # re-delivering its wave converges the *evidence*, never state;
            # partial membership failures keep their existing semantics (a
            # connect whose new member was unreachable already demoted to
            # not-agreed above).
            controller._schedule_outcome_redelivery(  # noqa: SLF001
                self.run_id, self.object_id, None, list(self._outcome_wave)
            )
        services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=self.run_id,
            details={
                "event": "membership-coordinated",
                "object_id": self.object_id,
                "action": action,
                "member": member,
                "agreed": agreed,
            },
        )
        return SharingOutcome(
            run_id=self.run_id,
            object_id=self.object_id,
            agreed=agreed,
            new_version=self._shared.version,
            proposer=controller.party,
            decisions=self._decisions,
            evidence={
                TokenType.NR_MEMBERSHIP.value: self._nro_update,
                TokenType.NR_OUTCOME.value: self._nr_outcome,
            },
        )

    def _aborted_outcome(self, reason: str) -> SharingOutcome:
        self._services.audit_log.append(
            category=AUDIT_CATEGORY_SHARING,
            subject=self.run_id,
            details={
                "event": "membership-aborted",
                "object_id": self.object_id,
                "action": self._action,
                "member": self._member,
                "reason": reason,
            },
        )
        evidence: Dict[str, EvidenceToken] = {}
        if self._nro_update is not None:
            evidence[TokenType.NR_MEMBERSHIP.value] = self._nro_update
        return SharingOutcome(
            run_id=self.run_id,
            object_id=self.object_id,
            agreed=False,
            new_version=self._shared.version,
            proposer=self._controller.party,
            decisions=dict(self._decisions),
            evidence=evidence,
            reason=reason,
        )


class SharingProtocolHandler(B2BProtocolHandler):
    """Coordinator-facing protocol handler delegating to the controller."""

    protocol = NR_SHARING_PROTOCOL

    def __init__(self, controller: B2BObjectController) -> None:
        super().__init__()
        self._controller = controller

    def process_request(self, message: B2BProtocolMessage) -> B2BProtocolMessage:
        action = message.attributes.get("action")
        run = self.runs.get_or_create(
            ProtocolRun(
                run_id=message.run_id,
                protocol=self.protocol,
                initiator=message.sender,
                responder=self._controller.party,
            )
        )
        if not run.record_message(message):
            # A transport duplicate, or the sender's retry of a request whose
            # reply was lost in transit: replay the recorded response
            # verbatim instead of re-validating, so the evidence store holds
            # exactly one NRO_UPDATE/NR_DECISION pair per proposal no matter
            # how many times the request arrives.  (If the cached response
            # was evicted -- only possible under pathological duplication --
            # fall through and re-serve; handlers tolerate the re-store.)
            cached = run.cached_response(message.message_id)
            if cached is not None:
                return cached
        # The responder's span parents to the context the transports carried
        # over from the proposer (run root or commit span) -- the same tree no
        # matter which transport delivered the request.
        tracer = _OBS.tracing
        span = None
        if tracer is not None:
            span = tracer.start_span(
                _HANDLE_SPAN_NAMES.get(action) or "handle:%s" % action,
                trace_id=message.run_id,
                attributes={"party": self._controller.party},
            )
        try:
            with _span_scope(span):
                if action == ACTION_PROPOSE:
                    response = self._controller.handle_proposal(message)
                elif action == ACTION_MEMBERSHIP_PROPOSE:
                    response = self._controller.handle_membership_proposal(
                        message
                    )
                else:
                    raise ProtocolError(
                        f"unsupported sharing request action {action!r}"
                    )
                # The decision is about to leave with no outcome back yet:
                # start the proposal-age expiry clock so a proposer that dies
                # mid-run cannot strand this responder's run state forever.
                self._controller._watch_orphan_run(  # noqa: SLF001 - same module
                    message.run_id, message.sender, message.payload["object_id"]
                )
        except Exception:
            if span is not None:
                span.end("error")
            raise
        if span is not None:
            span.end("ok")
        run.cache_response(message.message_id, response)
        return response

    def process(self, message: B2BProtocolMessage) -> None:
        action = message.attributes.get("action")
        run = self.runs.get_or_create(
            ProtocolRun(
                run_id=message.run_id,
                protocol=self.protocol,
                initiator=message.sender,
                responder=self._controller.party,
            )
        )
        if not run.record_message(message):
            return
        tracer = _OBS.tracing
        span = None
        if tracer is not None:
            span = tracer.start_span(
                _HANDLE_SPAN_NAMES.get(action) or "handle:%s" % action,
                trace_id=message.run_id,
                attributes={"party": self._controller.party},
            )
        try:
            with _span_scope(span):
                if action == ACTION_OUTCOME:
                    # The application marker subsumes _clear_orphan_watch (it
                    # pops the timer itself) and makes a concurrently-firing
                    # orphan expiry cancel instead of aborting the committing
                    # run.
                    with self._controller._outcome_application(  # noqa: SLF001
                        message.run_id
                    ):
                        self._controller.handle_outcome(message)
                        run.complete()
                elif action == ACTION_MEMBERSHIP_OUTCOME:
                    with self._controller._outcome_application(  # noqa: SLF001
                        message.run_id
                    ):
                        self._controller.handle_membership_outcome(message)
                        run.complete()
                elif action == ACTION_ABORT:
                    self._controller.handle_abort(message)
                else:
                    raise ProtocolError(
                        f"unsupported sharing one-way action {action!r}"
                    )
        except Exception:
            if span is not None:
                span.end("error")
            raise
        if span is not None:
            span.end("ok")


#: Method-name prefixes treated as state mutators when no explicit list is given.
DEFAULT_MUTATOR_PREFIXES = ("set", "update", "add", "remove", "delete", "put", "apply")


class B2BObjectInterceptor(Interceptor):
    """Container interceptor trapping invocations on B2BObject entity components.

    Read-only methods pass straight through.  Mutating methods execute
    tentatively on the component, after which the resulting state is proposed
    to the sharing group; if agreement is not reached the component is rolled
    back to the previously agreed state and the invocation fails.
    """

    name = "b2b-object"

    def __init__(
        self,
        controller: B2BObjectController,
        object_id: str,
        mutator_methods: Optional[List[str]] = None,
    ) -> None:
        self._controller = controller
        self._object_id = object_id
        self._mutators = set(mutator_methods or [])

    def _is_mutator(self, method: str) -> bool:
        if self._mutators:
            return method in self._mutators
        return method.split("_")[0] in DEFAULT_MUTATOR_PREFIXES

    def invoke(
        self, invocation: Invocation, next_interceptor: NextInterceptor
    ) -> InvocationResult:
        if not self._is_mutator(invocation.method):
            return next_interceptor(invocation)

        controller = self._controller
        object_id = self._object_id
        before = controller.get_state(object_id)
        result = next_interceptor(invocation)
        if not result.succeeded:
            controller.revert_component_state(object_id)
            return result

        shared = controller._shared(object_id)  # noqa: SLF001 - same-package access
        instance = shared.bound_instance
        after = instance.get_state() if instance is not None else before
        if codec.encode(after) == codec.encode(before):
            return result
        if controller.in_rollup(object_id):
            with controller._lock:  # noqa: SLF001
                shared.state = after
            return result

        outcome = controller.propose_update(object_id, after)
        if not outcome.agreed:
            controller.revert_component_state(object_id)
            return InvocationResult(
                exception=(
                    f"update to shared object {object_id!r} was vetoed: {outcome.reason}"
                ),
                exception_type=CoordinationError.__name__,
                context={**invocation.context, "nr.sharing.run_id": outcome.run_id},
            )
        result.context = {**result.context, "nr.sharing.run_id": outcome.run_id}
        return result


class RollupInterceptor(Interceptor):
    """Session-bean interceptor rolling nested B2BObject operations into one event."""

    name = "b2b-rollup"

    def __init__(
        self,
        controller: B2BObjectController,
        object_id: str,
        rollup_methods: List[str],
    ) -> None:
        self._controller = controller
        self._object_id = object_id
        self._rollup_methods = set(rollup_methods)

    def invoke(
        self, invocation: Invocation, next_interceptor: NextInterceptor
    ) -> InvocationResult:
        if invocation.method not in self._rollup_methods:
            return next_interceptor(invocation)
        try:
            with self._controller.rollup(self._object_id):
                result = next_interceptor(invocation)
                if not result.succeeded:
                    raise CoordinationError(result.exception or "invocation failed")
        except CoordinationError as error:
            return InvocationResult(
                exception=str(error),
                exception_type=CoordinationError.__name__,
                context=dict(invocation.context),
            )
        return result


def b2b_object_interceptor_provider(
    controller: B2BObjectController,
) -> Callable[[Container, ComponentDescriptor], Optional[Interceptor]]:
    """Container deployment hook attaching B2BObject/rollup interceptors.

    Entity components with ``b2b_object`` set get a
    :class:`B2BObjectInterceptor`; session components with ``rollup_methods``
    get a :class:`RollupInterceptor`.  The object id defaults to the
    component name and can be overridden with the ``b2b_object_id`` metadata
    entry.
    """

    def provider(
        container: Container, descriptor: ComponentDescriptor
    ) -> Optional[Interceptor]:
        object_id = descriptor.metadata.get("b2b_object_id", descriptor.name)
        if descriptor.b2b_object:
            mutators = descriptor.metadata.get("mutator_methods")
            return B2BObjectInterceptor(controller, object_id, mutators)
        if descriptor.rollup_methods:
            return RollupInterceptor(controller, object_id, descriptor.rollup_methods)
        return None

    return provider
