"""Application-specific validation of proposed updates.

"The controller uses application-specific validation listeners to validate
state and membership changes proposed by remote parties" (Section 4.3,
Figure 8 shows validators implemented as session beans).  A validator
receives the proposing party, the object, the current agreed state and the
proposed state and returns a :class:`ValidationDecision`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class ValidationDecision:
    """Outcome of validating a proposed update."""

    accepted: bool
    reason: str = ""
    validator: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "reason": self.reason,
            "validator": self.validator,
        }


@dataclass(frozen=True)
class ValidationContext:
    """Everything a validator may inspect when reaching a decision."""

    object_id: str
    proposer: str
    current_state: Any
    proposed_state: Any
    base_version: int
    attributes: Dict[str, Any] = field(default_factory=dict)


class StateValidator:
    """Base class for validation listeners."""

    #: name recorded in decision evidence
    name: str = "validator"

    def validate(self, context: ValidationContext) -> ValidationDecision:
        """Return a decision on the proposed update."""
        raise NotImplementedError


class AcceptAllValidator(StateValidator):
    """Accepts every proposal (the default when no validator is configured)."""

    name = "accept-all"

    def validate(self, context: ValidationContext) -> ValidationDecision:
        return ValidationDecision(accepted=True, validator=self.name)


class RejectAllValidator(StateValidator):
    """Rejects every proposal (useful in tests and fault-injection scenarios)."""

    name = "reject-all"

    def __init__(self, reason: str = "policy rejects all updates") -> None:
        self._reason = reason

    def validate(self, context: ValidationContext) -> ValidationDecision:
        return ValidationDecision(accepted=False, reason=self._reason, validator=self.name)


class CallableValidator(StateValidator):
    """Adapts a plain function ``(context) -> bool | ValidationDecision``."""

    def __init__(self, func: Callable[[ValidationContext], Any], name: str = "") -> None:
        self._func = func
        self.name = name or getattr(func, "__name__", "callable-validator")

    def validate(self, context: ValidationContext) -> ValidationDecision:
        outcome = self._func(context)
        if isinstance(outcome, ValidationDecision):
            if outcome.validator:
                return outcome
            return ValidationDecision(
                accepted=outcome.accepted, reason=outcome.reason, validator=self.name
            )
        return ValidationDecision(accepted=bool(outcome), validator=self.name)


class CompositeValidator(StateValidator):
    """Combines several validators; the proposal must satisfy all of them."""

    name = "composite"

    def __init__(self, validators: Optional[List[StateValidator]] = None) -> None:
        self._validators: List[StateValidator] = list(validators or [])

    def add(self, validator: StateValidator) -> None:
        self._validators.append(validator)

    @property
    def validators(self) -> List[StateValidator]:
        return list(self._validators)

    def validate(self, context: ValidationContext) -> ValidationDecision:
        if not self._validators:
            return ValidationDecision(accepted=True, validator=self.name)
        reasons: List[str] = []
        for validator in self._validators:
            decision = validator.validate(context)
            if not decision.accepted:
                return ValidationDecision(
                    accepted=False,
                    reason=decision.reason or f"rejected by {validator.name}",
                    validator=validator.name,
                )
            if decision.reason:
                reasons.append(decision.reason)
        return ValidationDecision(
            accepted=True, reason="; ".join(reasons), validator=self.name
        )
