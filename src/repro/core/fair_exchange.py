"""Optimistic fair exchange with an offline TTP.

The direct implementation of NR-Invocation "guarantees safety and liveness if
client and server satisfy the trusted interceptor assumptions.  The
flexibility inherent in our approach means that we can transform these
implementations by introducing a TTP to support execution of fault-tolerant
fair exchange protocols ... This transformation would then allow us to relax
the strong assumptions about the parties to the interaction." (Section 4.)

This module provides that transformation.  The TTP
(:class:`~repro.core.ttp.TTPArbitrator`) stays *offline*: it is only
contacted to *resolve* or *abort* a run when the normal exchange breaks down.

* The **server**, having produced a response but never received the client's
  ``NRR_resp``, presents its ``NRO_req`` and ``NRO_resp`` evidence to the
  arbitrator and receives a ``TTP_AFFIDAVIT`` that stands in for the missing
  receipt.
* The **client**, having sent a request but never received a response, asks
  the arbitrator to *abort* the run and receives a signed ``TTP_ABORT``,
  after which the server can no longer obtain an affidavit for that run.

The first decision (resolve or abort) is final, which keeps the evidence held
by honest parties consistent.

Abort deadlines: instead of parking a thread in a timeout wait before
calling :meth:`FairExchangeClient.request_abort`, a client can register the
deadline as a :class:`~repro.transport.scheduler.RetryScheduler` timer with
:meth:`FairExchangeClient.schedule_abort`.  If the expected response arrives
first, cancelling the returned handle withdraws the deadline; otherwise the
timer fires the abort request on whichever thread drives the scheduler, and
the audit log records how the deadline resolved.
"""

from __future__ import annotations

from typing import Optional

from repro.core.coordinator import B2BCoordinator
from repro.core.evidence import EvidenceToken, TokenType
from repro.core.messages import B2BProtocolMessage
from repro.core.ttp import FAIR_EXCHANGE_PROTOCOL
from repro.crypto.rng import new_unique_id
from repro.errors import FairExchangeError
from repro.transport.scheduler import TimerHandle


class FairExchangeClient:
    """Per-organisation access to the offline arbitrator."""

    def __init__(self, party: str, coordinator: B2BCoordinator, arbitrator_uri: str) -> None:
        self.party = party
        self._coordinator = coordinator
        self._arbitrator_uri = arbitrator_uri

    # -- recovery requests ----------------------------------------------------------

    def request_resolution(self, run_id: str) -> EvidenceToken:
        """Server-side recovery: obtain a TTP affidavit for a missing receipt.

        The caller must hold the ``NRO_req`` it received and the ``NRO_resp``
        it generated for ``run_id``; both are submitted to the arbitrator.
        Raises :class:`FairExchangeError` if the run was already aborted or
        the evidence is incomplete.
        """
        store = self._coordinator.services.evidence_store
        nro_request = self._stored_token(store, run_id, TokenType.NRO_REQUEST)
        nro_response = self._stored_token(store, run_id, TokenType.NRO_RESPONSE)
        if nro_request is None or nro_response is None:
            raise FairExchangeError(
                f"cannot request resolution for {run_id!r}: NRO_req/NRO_resp evidence missing"
            )
        reply = self._send(
            action="resolve",
            run_id=run_id,
            tokens=[nro_request, nro_response],
        )
        token = reply.tokens[0] if reply.tokens else None
        if token is None:
            raise FairExchangeError("arbitrator returned no token")
        if token.token_type != TokenType.TTP_AFFIDAVIT.value:
            raise FairExchangeError(
                f"run {run_id!r} could not be resolved (verdict: {reply.payload.get('verdict')})"
            )
        self._store_and_audit(run_id, token, "resolution")
        return token

    def request_abort(self, run_id: str) -> EvidenceToken:
        """Client-side recovery: abort a run for which no response arrived.

        Raises :class:`FairExchangeError` if the run was already resolved in
        the server's favour.
        """
        reply = self._send(action="abort", run_id=run_id, tokens=[])
        token = reply.tokens[0] if reply.tokens else None
        if token is None:
            raise FairExchangeError("arbitrator returned no token")
        if token.token_type != TokenType.TTP_ABORT.value:
            raise FairExchangeError(
                f"run {run_id!r} could not be aborted (verdict: {reply.payload.get('verdict')})"
            )
        self._store_and_audit(run_id, token, "abort")
        return token

    # -- deadline-driven recovery ------------------------------------------------------

    def schedule_abort(self, run_id: str, timeout: float) -> TimerHandle:
        """Register a fair-exchange abort deadline as a scheduler timer.

        After ``timeout`` seconds, unless the returned handle was cancelled
        (because the awaited response arrived), :meth:`request_abort` runs on
        the thread driving the scheduler -- no thread is parked waiting for
        the deadline.  The timer carries ``run_id`` as its run tag, so
        aborting the whole run through ``RetryScheduler.cancel_run`` also
        withdraws the deadline.  A deadline that fires after the arbitrator
        already resolved the run in the server's favour is recorded in the
        audit log instead of raising on the driving thread.
        """
        scheduler = self._coordinator.network.retry_scheduler
        if scheduler is None:
            raise FairExchangeError(
                f"{self.party!r} cannot schedule an abort deadline: the network "
                "has no retry scheduler attached"
            )

        def fire() -> None:
            try:
                self.request_abort(run_id)
            except FairExchangeError as error:
                # Final-decision conflict (already resolved) or missing
                # token: the deadline loses the race; the evidence trail
                # still shows what happened.
                self._coordinator.services.audit_log.append(
                    category="nr.fair-exchange",
                    subject=run_id,
                    details={"event": "abort-deadline-refused", "error": str(error)},
                )
            except Exception as error:  # noqa: BLE001 - timer callbacks fire on
                # arbitrary driving threads and must trap their own failures
                # (an unreachable arbitrator raises DeliveryError here); an
                # escape would crash an unrelated run's wait.
                self._coordinator.services.audit_log.append(
                    category="nr.fair-exchange",
                    subject=run_id,
                    details={"event": "abort-deadline-failed", "error": str(error)},
                )

        return scheduler.schedule(timeout, fire, run_id=run_id)

    # -- helpers -----------------------------------------------------------------------

    def _stored_token(self, store, run_id: str, token_type: TokenType) -> Optional[EvidenceToken]:
        records = store.tokens_of_type(run_id, token_type.value)
        if not records:
            return None
        return EvidenceToken.from_dict(records[0].token)

    def _send(self, action: str, run_id: str, tokens) -> B2BProtocolMessage:
        message = B2BProtocolMessage(
            run_id=new_unique_id("fex"),
            protocol=FAIR_EXCHANGE_PROTOCOL,
            step=1,
            sender=self.party,
            recipient=self._arbitrator_uri,
            payload={"run_id": run_id, "requested_by": self.party},
            tokens=list(tokens),
            attributes={"action": action},
            reply_to=self._coordinator.address,
        )
        return self._coordinator.request(message)

    def _store_and_audit(self, run_id: str, token: EvidenceToken, event: str) -> None:
        services = self._coordinator.services
        services.evidence_verifier.require_valid(token, expected_issuer=self._arbitrator_uri)
        services.evidence_store.store(
            run_id=run_id,
            token_type=token.token_type,
            token=token,
            role=services.evidence_store.ROLE_RECEIVED,
        )
        services.audit_log.append(
            category="nr.fair-exchange",
            subject=run_id,
            details={"event": event, "token_type": token.token_type},
        )
