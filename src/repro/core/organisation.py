"""Per-organisation facade.

An :class:`Organisation` bundles everything one party of a composite service
needs: its identity (key pair and certificate), its service-delivery platform
(the component container), its trusted interceptor (NR interceptors,
invocation handler, protocol handlers and B2BCoordinator) and the supporting
infrastructure (evidence store, state store, audit log, membership, access
control).

It is the object application code interacts with in the examples and tests:

>>> org_a = Organisation("urn:org:a", network=network, ca=ca)      # doctest: +SKIP
>>> org_b = Organisation("urn:org:b", network=network, ca=ca)      # doctest: +SKIP
>>> org_a.trust(org_b); org_b.trust(org_a)                          # doctest: +SKIP
>>> proxy = org_a.nr_proxy(org_b, "QuoteService")                   # doctest: +SKIP
>>> proxy.request_quote("chassis")                                  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.access.policy import AccessPolicy
from repro.access.roles import RoleManager
from repro.clock import Clock, SystemClock
from repro.container.component import Component, ComponentDescriptor
from repro.container.container import Container
from repro.container.interceptor import Interceptor, Invocation
from repro.container.proxy import ClientProxy
from repro.core.coordinator import B2BCoordinator, LocalServices
from repro.core.evidence import EvidenceBuilder, EvidenceVerifier
from repro.core.invocation import (
    B2BInvocation,
    B2BInvocationHandler,
    InvocationOutcome,
    ServerInvocationHandler,
)
from repro.core.nr_interceptors import ClientNRInterceptor, nr_interceptor_provider
from repro.core.sharing import (
    B2BObjectController,
    RunFuture,
    SharingOutcome,
    b2b_object_interceptor_provider,
)
from repro.core.validators import StateValidator
from repro.crypto.certificates import Certificate, CertificateAuthority, CertificateStore
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signature import Signer, get_scheme
from repro.crypto.timestamp import TimestampAuthority
from repro.errors import ProtocolError
from repro.membership.service import MembershipService
from repro.persistence.audit_log import AuditLog
from repro.persistence.evidence_store import EvidenceStore
from repro.persistence.run_journal import RunJournal
from repro.persistence.state_store import StateStore
from repro.persistence.storage import StorageBackend
from repro.transport.delivery import RetryPolicy
from repro.transport.network import SimulatedNetwork


def _unreachable_dispatcher(invocation: Invocation):
    """Final handler for NR client proxies; the NR interceptor never reaches it."""
    raise ProtocolError(
        f"invocation of {invocation.component}.{invocation.method} reached the "
        "transport step of an NR proxy; the NR interceptor should have taken over"
    )


class Organisation:
    """One organisation participating in a composite service."""

    def __init__(
        self,
        uri: str,
        network: SimulatedNetwork,
        ca: Optional[CertificateAuthority] = None,
        keypair: Optional[KeyPair] = None,
        scheme: str = "rsa",
        clock: Optional[Clock] = None,
        timestamp_authority: Optional[TimestampAuthority] = None,
        retry_policy: Optional[RetryPolicy] = None,
        display_name: str = "",
        evidence_backend: Optional[StorageBackend] = None,
        async_runs: bool = False,
        durable_runs: bool = False,
        run_journal_backend: Optional[StorageBackend] = None,
        orphan_run_timeout: Optional[float] = None,
        audit_backend: Optional[StorageBackend] = None,
        state_backend: Optional[StorageBackend] = None,
        durable_state: bool = False,
        outcome_redelivery: bool = False,
    ) -> None:
        self.uri = uri
        self.display_name = display_name or uri
        self.network = network
        self.clock = clock or SystemClock()

        # -- identity ------------------------------------------------------------
        self.keypair = keypair or get_scheme(scheme).generate_keypair()
        self.certificate: Optional[Certificate] = None
        self.certificate_store = CertificateStore(clock=self.clock)
        if ca is not None:
            self.certificate = ca.issue_certificate(uri, self.keypair.public)
            self.certificate_store.add_trusted_root(ca.root_certificate)
            self.certificate_store.add_certificate(self.certificate)

        # -- persistence / infrastructure -----------------------------------------
        # ``audit_backend`` persists the hash-chained audit trail alongside
        # evidence and run state (the ``storage=`` profile provisions all
        # three consistently); the default stays in memory.
        self.audit_log = AuditLog(owner=uri, backend=audit_backend, clock=self.clock)
        # ``evidence_backend`` lets a deployment persist evidence outside the
        # process (file-backed store shared across interceptor processes);
        # the default stays in memory for tests and simulation.
        self.evidence_store = EvidenceStore(
            owner=uri, backend=evidence_backend, clock=self.clock
        )
        # ``state_backend`` + ``durable_state`` make the agreed version
        # history of every shared object survive a restart: registration
        # resumes each replica at its recorded ``(version, digest)`` instead
        # of re-recording version 0 from configuration.
        self.state_store = StateStore(owner=uri, backend=state_backend)
        # ``durable_runs`` (or an explicit backend) turns on the write-ahead
        # run journal: every coordination run this organisation proposes is
        # journaled before its side effects dispatch, and
        # :meth:`recover_runs` replays open runs after a restart.  Pair it
        # with a file-backed ``run_journal_backend`` for real crash recovery.
        self.run_journal: Optional[RunJournal] = None
        if durable_runs or run_journal_backend is not None:
            self.run_journal = RunJournal(owner=uri, backend=run_journal_backend)
        self.membership = MembershipService(clock=self.clock)
        self.role_manager = RoleManager(clock=self.clock)
        self.access_policy = AccessPolicy(owner=uri)

        # -- evidence generation / verification --------------------------------------
        self.evidence_builder = EvidenceBuilder(
            party=uri,
            signer=Signer(self.keypair.private),
            clock=self.clock,
            timestamp_authority=timestamp_authority,
        )
        self.evidence_verifier = EvidenceVerifier(
            certificate_store=self.certificate_store,
            tsa_key=timestamp_authority.public_key if timestamp_authority else None,
        )
        self.evidence_verifier.pin_key(uri, self.keypair.public)

        # -- container (the service delivery platform) ----------------------------------
        self.container = Container(name=uri, network=network, address=uri)

        # -- coordinator and protocol handlers (the trusted interceptor) ------------------
        services = LocalServices(
            evidence_builder=self.evidence_builder,
            evidence_verifier=self.evidence_verifier,
            evidence_store=self.evidence_store,
            state_store=self.state_store,
            audit_log=self.audit_log,
            clock=self.clock,
            run_journal=self.run_journal,
        )
        self.coordinator = B2BCoordinator(
            party=uri,
            invoker=self.container.invoker,
            services=services,
            retry_policy=retry_policy,
        )
        self.server_invocation_handler = ServerInvocationHandler(
            party=uri,
            coordinator=self.coordinator,
            dispatcher=self.container.dispatch,
        )
        self.coordinator.register_handler(self.server_invocation_handler)
        self.controller = B2BObjectController(
            party=uri,
            coordinator=self.coordinator,
            membership=self.membership,
            async_runs=async_runs,
            orphan_run_timeout=orphan_run_timeout,
            durable_state=durable_state,
            outcome_redelivery=outcome_redelivery,
        )

        # -- container integration of the NR middleware ------------------------------------
        self.container.add_interceptor_provider(
            nr_interceptor_provider(uri, audit_log=self.audit_log)
        )
        self.container.add_interceptor_provider(
            b2b_object_interceptor_provider(self.controller)
        )

    # ------------------------------------------------------------------ identity

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public

    def trust(self, other: "Organisation") -> None:
        """Record the other organisation's key/certificate and a direct route.

        Models the out-of-band exchange of credentials that precedes regulated
        interaction; for TTP-routed deployments call :meth:`route_via`
        afterwards to override the direct route.
        """
        self.evidence_verifier.pin_key(other.uri, other.public_key)
        if other.certificate is not None:
            self.certificate_store.add_certificate(other.certificate)
        self.coordinator.add_route(other.uri, other.coordinator.address)

    def trust_key(self, party: str, public_key: PublicKey, coordinator_address: str) -> None:
        """Trust a party known only by key and address (e.g. a TTP)."""
        self.evidence_verifier.pin_key(party, public_key)
        self.coordinator.add_route(party, coordinator_address)

    def route_via(self, party: str, coordinator_address: str) -> None:
        """Route protocol messages for ``party`` through ``coordinator_address``."""
        self.coordinator.add_route(party, coordinator_address)

    # ------------------------------------------------------------------ deployment

    def deploy(self, instance: Any, descriptor: ComponentDescriptor) -> Component:
        """Deploy a component into this organisation's container."""
        component = self.container.deploy(instance, descriptor)
        if descriptor.b2b_object:
            object_id = descriptor.metadata.get("b2b_object_id", descriptor.name)
            if self.controller.is_shared(object_id):
                self.controller.bind_component(object_id, instance)
        return component

    def deploy_service(
        self, instance: Any, name: str, non_repudiation: bool = True, **descriptor_kwargs: Any
    ) -> Component:
        """Convenience wrapper building the descriptor for a session service."""
        descriptor = ComponentDescriptor(
            name=name, non_repudiation=non_repudiation, **descriptor_kwargs
        )
        return self.deploy(instance, descriptor)

    # ------------------------------------------------------------------ invocation

    def nr_proxy(
        self,
        provider: "Organisation",
        component_name: str,
        protocol: str = "direct",
        platform: str = "python",
        client_interceptors: Optional[List[Interceptor]] = None,
        consume_response: bool = True,
    ) -> ClientProxy:
        """Create a non-repudiable proxy for a component hosted by ``provider``.

        The proxy's client-side chain starts with the client NR interceptor
        (first on the outgoing path, Section 4.2), which runs the
        non-repudiation protocol instead of a plain remote call.
        """
        proxy = ClientProxy(
            component_name=component_name,
            dispatcher=_unreachable_dispatcher,
            client_interceptors=list(client_interceptors or []),
            caller=self.uri,
        )
        proxy.add_interceptor_first(
            ClientNRInterceptor(
                party=self.uri,
                coordinator=self.coordinator,
                target_party=provider.uri,
                platform=platform,
                protocol=protocol,
                consume_response=consume_response,
            )
        )
        return proxy

    def plain_proxy(
        self,
        provider: "Organisation",
        component_name: str,
        client_interceptors: Optional[List[Interceptor]] = None,
    ) -> ClientProxy:
        """Create an ordinary (non-NR) remote proxy -- the Figure 4(a) baseline."""
        return provider.container.create_remote_proxy(
            client_invoker=self.container.invoker,
            component_name=component_name,
            client_interceptors=client_interceptors,
            caller=self.uri,
        )

    def invoke_non_repudiably(
        self,
        provider_uri: str,
        component: str,
        method: str,
        args: Optional[List[Any]] = None,
        kwargs: Optional[Dict[str, Any]] = None,
        protocol: str = "direct",
        platform: str = "python",
        consume_response: bool = True,
    ) -> InvocationOutcome:
        """Invoke a remote operation through the NR protocol, returning evidence."""
        handler = B2BInvocationHandler.get_instance(
            platform, protocol, self.uri, self.coordinator
        )
        invocation = Invocation(
            component=component,
            method=method,
            args=list(args or []),
            kwargs=dict(kwargs or {}),
            caller=self.uri,
        )
        return handler.invoke_with_evidence(
            B2BInvocation(
                target_party=provider_uri,
                invocation=invocation,
                platform=platform,
                protocol=protocol,
                consume_response=consume_response,
            )
        )

    # ------------------------------------------------------------------ sharing

    def share_object(
        self,
        object_id: str,
        initial_state: Any,
        members: List[str],
        validators: Optional[List[StateValidator]] = None,
    ) -> None:
        """Register a shared B2BObject on this organisation's controller."""
        self.controller.register_object(object_id, initial_state, members, validators)

    def propose_update(self, object_id: str, new_state: Any) -> SharingOutcome:
        """Propose an update to a shared object (NR-Sharing, Section 3.3)."""
        return self.controller.propose_update(object_id, new_state)

    def propose_update_async(
        self, object_id: str, new_state: Any, deadline: Optional[float] = None
    ) -> RunFuture:
        """Start a non-blocking coordination run; returns its :class:`RunFuture`."""
        return self.controller.propose_update_async(object_id, new_state, deadline)

    def recover_runs(self) -> Dict[str, str]:
        """Replay the run journal after a restart; returns ``run_id -> action``.

        Resumes runs journaled past the commit barrier, aborts (and notifies
        the wave of) runs that never reached it.  A no-op without
        ``durable_runs`` and idempotent with it -- see
        :meth:`repro.core.sharing.B2BObjectController.recover_runs`.
        """
        return self.controller.recover_runs()

    def shared_state(self, object_id: str) -> Any:
        return self.controller.get_state(object_id)

    def shared_version(self, object_id: str) -> int:
        return self.controller.get_version(object_id)

    # ------------------------------------------------------------------ introspection

    def evidence_for_run(self, run_id: str):
        """All evidence this organisation holds for a protocol run."""
        return self.evidence_store.evidence_for_run(run_id)

    def audit_records(
        self,
        category: Optional[str] = None,
        subject: Optional[str] = None,
        trace_id: Optional[str] = None,
    ):
        return self.audit_log.records(
            category=category, subject=subject, trace_id=trace_id
        )

    def __repr__(self) -> str:
        return f"Organisation({self.uri!r})"
