"""Logical and simulated clocks.

All time handling in the library goes through a :class:`Clock` so that tests
and the simulated network can run deterministically and benchmarks can report
simulated latency independent of wall-clock speed.
"""

from __future__ import annotations

import itertools
import threading
import time


class Clock:
    """Abstract clock interface.

    Concrete clocks provide a monotonically non-decreasing :meth:`now` and a
    :meth:`sleep` whose semantics depend on the implementation (real sleep or
    simulated time advance).
    """

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds``."""
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock backed clock."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock(Clock):
    """Deterministic virtual clock.

    Time only advances when :meth:`sleep` or :meth:`advance` is called, which
    makes protocol timeouts and network latency fully reproducible in tests.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move the clock forward and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds
            return self._now


class MonotonicCounter:
    """Thread-safe monotonically increasing counter.

    Used for sequence numbers where uniqueness and ordering matter but
    wall-clock time does not.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)
