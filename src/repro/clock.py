"""Logical and simulated clocks.

All time handling in the library goes through a :class:`Clock` so that tests
and the simulated network can run deterministically and benchmarks can report
simulated latency independent of wall-clock speed.
"""

from __future__ import annotations

import itertools
import threading
import time


class Clock:
    """Abstract clock interface.

    Concrete clocks provide a monotonically non-decreasing :meth:`now` and a
    :meth:`sleep` whose semantics depend on the implementation (real sleep or
    simulated time advance).

    ``virtual`` marks clocks whose time only moves when somebody advances it.
    Timer infrastructure (:class:`repro.transport.scheduler.RetryScheduler`)
    uses the flag to decide how to reach a deadline: a virtual clock is
    advanced directly with :meth:`advance_to`, a wall clock is waited on.
    """

    #: True when time only moves by explicit advance (see class docstring).
    virtual = False

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds``."""
        raise NotImplementedError

    def advance_to(self, deadline: float) -> float:
        """Move time forward to ``deadline`` (no-op if already reached).

        Unlike :meth:`sleep`, this is idempotent: two threads racing to reach
        the same timer deadline advance the clock once, not twice, which is
        what makes deadline-driven timers overlap their waits instead of
        serialising them.
        """
        raise NotImplementedError


class SystemClock(Clock):
    """Wall-clock backed clock."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def advance_to(self, deadline: float) -> float:
        """Sleep until ``deadline`` (wall time passes by itself)."""
        remaining = deadline - self.now()
        if remaining > 0:
            time.sleep(remaining)
        return self.now()


class SimulatedClock(Clock):
    """Deterministic virtual clock.

    Time only advances when :meth:`sleep` or :meth:`advance` is called, which
    makes protocol timeouts and network latency fully reproducible in tests.
    """

    virtual = True

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move the clock forward and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, deadline: float) -> float:
        """Move the clock to ``deadline`` if it is ahead of now (idempotent)."""
        with self._lock:
            if deadline > self._now:
                self._now = float(deadline)
            return self._now


class MonotonicCounter:
    """Thread-safe monotonically increasing counter.

    Used for sequence numbers where uniqueness and ordering matter but
    wall-clock time does not.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)
