"""Event-based role activation.

The paper points to "Cambridge's event-based access control system where
roles are activated, based on credentials presented, and de-activated in
response to events in the system or changes in the environment"
(Section 3.5).  :class:`RoleManager` implements that model:

* :class:`RoleActivationRule` maps a credential attribute predicate to a
  role;
* presenting a verified credential activates every matching role for the
  subject;
* system events (named strings, e.g. ``"contract.terminated"``) de-activate
  roles whose rules subscribe to them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

from repro.access.credentials import Credential, verify_credential
from repro.clock import Clock, SystemClock
from repro.crypto.keys import PublicKey
from repro.errors import AccessDeniedError, CredentialError

#: Predicate over credential attributes deciding whether a rule matches.
AttributePredicate = Callable[[Mapping[str, Any]], bool]


@dataclass
class RoleActivationRule:
    """Maps credentials to a role and lists events that revoke it."""

    role: str
    required_issuer: Optional[str] = None
    predicate: Optional[AttributePredicate] = None
    required_attributes: Mapping[str, Any] = field(default_factory=dict)
    deactivating_events: Set[str] = field(default_factory=set)

    def matches(self, credential: Credential) -> bool:
        """Return ``True`` if ``credential`` satisfies this rule."""
        if self.required_issuer is not None and credential.issuer != self.required_issuer:
            return False
        for name, value in self.required_attributes.items():
            if credential.attributes.get(name) != value:
                return False
        if self.predicate is not None and not self.predicate(credential.attributes):
            return False
        return True


@dataclass
class RoleAssignment:
    """An active role held by a subject."""

    subject: str
    role: str
    activated_at: float
    credential_id: str


class RoleManager:
    """Maps verified credentials to active roles, revoked by events."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        self._rules: List[RoleActivationRule] = []
        self._issuer_keys: Dict[str, PublicKey] = {}
        self._assignments: Dict[str, Dict[str, RoleAssignment]] = {}
        self._lock = threading.RLock()

    # -- configuration ---------------------------------------------------------

    def add_rule(self, rule: RoleActivationRule) -> None:
        with self._lock:
            self._rules.append(rule)

    def trust_issuer(self, issuer: str, public_key: PublicKey) -> None:
        """Register the verification key for a credential issuer."""
        with self._lock:
            self._issuer_keys[issuer] = public_key

    # -- activation -------------------------------------------------------------

    def present_credential(self, credential: Credential) -> List[str]:
        """Verify ``credential`` and activate every matching role.

        Returns the roles activated by this presentation.  Raises
        :class:`CredentialError` when the credential cannot be verified.
        """
        with self._lock:
            issuer_key = self._issuer_keys.get(credential.issuer)
        if issuer_key is None:
            raise CredentialError(f"issuer {credential.issuer!r} is not trusted")
        if not verify_credential(credential, issuer_key, at_time=self._clock.now()):
            raise CredentialError(
                f"credential {credential.credential_id!r} failed verification"
            )
        activated: List[str] = []
        with self._lock:
            for rule in self._rules:
                if not rule.matches(credential):
                    continue
                assignment = RoleAssignment(
                    subject=credential.subject,
                    role=rule.role,
                    activated_at=self._clock.now(),
                    credential_id=credential.credential_id,
                )
                self._assignments.setdefault(credential.subject, {})[rule.role] = assignment
                activated.append(rule.role)
        return activated

    def dispatch_event(self, event: str) -> List[RoleAssignment]:
        """Deliver a system event, de-activating subscribed roles.

        Returns the assignments that were revoked.
        """
        revoked: List[RoleAssignment] = []
        with self._lock:
            deactivating_roles = {
                rule.role for rule in self._rules if event in rule.deactivating_events
            }
            for subject, roles in self._assignments.items():
                for role in list(roles):
                    if role in deactivating_roles:
                        revoked.append(roles.pop(role))
        return revoked

    def revoke(self, subject: str, role: str) -> None:
        """Explicitly revoke one role from one subject."""
        with self._lock:
            self._assignments.get(subject, {}).pop(role, None)

    # -- queries ------------------------------------------------------------------

    def active_roles(self, subject: str) -> Set[str]:
        with self._lock:
            return set(self._assignments.get(subject, {}))

    def has_role(self, subject: str, role: str) -> bool:
        with self._lock:
            return role in self._assignments.get(subject, {})

    def require_role(self, subject: str, role: str) -> None:
        """Raise :class:`AccessDeniedError` unless ``subject`` holds ``role``."""
        if not self.has_role(subject, role):
            raise AccessDeniedError(f"{subject!r} does not hold role {role!r}")
