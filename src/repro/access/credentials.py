"""Signed credentials.

A credential is an attribute assertion ("organisation urn:org:supplier-a is
an approved supplier of urn:ve:car-project") signed by an issuer.  Parties
present credentials when they first connect to shared information or invoke
a service; the role manager maps verified credentials to roles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.clock import Clock, SystemClock
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.rng import new_unique_id
from repro.crypto.signature import Signature, Signer, get_scheme
from repro.errors import CredentialError

DEFAULT_CREDENTIAL_VALIDITY = 30 * 24 * 3600


@dataclass(frozen=True)
class Credential:
    """A signed attribute assertion about a subject."""

    credential_id: str
    subject: str
    issuer: str
    attributes: Mapping[str, Any]
    not_before: float
    not_after: float
    signature: Optional[Signature] = None

    def body_bytes(self) -> bytes:
        body = {
            "credential_id": self.credential_id,
            "subject": self.subject,
            "issuer": self.issuer,
            "attributes": dict(self.attributes),
            "not_before": self.not_before,
            "not_after": self.not_after,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def is_valid_at(self, timestamp: float) -> bool:
        return self.not_before <= timestamp <= self.not_after

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "credential_id": self.credential_id,
            "subject": self.subject,
            "issuer": self.issuer,
            "attributes": dict(self.attributes),
            "not_before": self.not_before,
            "not_after": self.not_after,
        }
        if self.signature is not None:
            payload["signature"] = self.signature.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Credential":
        signature = payload.get("signature")
        return cls(
            credential_id=payload["credential_id"],
            subject=payload["subject"],
            issuer=payload["issuer"],
            attributes=dict(payload["attributes"]),
            not_before=payload["not_before"],
            not_after=payload["not_after"],
            signature=Signature.from_dict(signature) if signature else None,
        )


class CredentialIssuer:
    """Issues signed credentials (typically operated by the VE coordinator)."""

    def __init__(
        self,
        name: str,
        keypair: Optional[KeyPair] = None,
        scheme: str = "rsa",
        clock: Optional[Clock] = None,
        validity_seconds: float = DEFAULT_CREDENTIAL_VALIDITY,
    ) -> None:
        self.name = name
        self._clock = clock or SystemClock()
        self._validity = validity_seconds
        self._keypair = keypair or get_scheme(scheme).generate_keypair()
        self._signer = Signer(self._keypair.private)

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def issue(
        self,
        subject: str,
        attributes: Mapping[str, Any],
        validity_seconds: Optional[float] = None,
    ) -> Credential:
        """Issue a credential asserting ``attributes`` about ``subject``."""
        if not subject:
            raise CredentialError("credential subject must not be empty")
        now = self._clock.now()
        unsigned = Credential(
            credential_id=new_unique_id("cred"),
            subject=subject,
            issuer=self.name,
            attributes=dict(attributes),
            not_before=now,
            not_after=now + (validity_seconds or self._validity),
        )
        signature = self._signer.sign(unsigned.body_bytes())
        return Credential(
            credential_id=unsigned.credential_id,
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            attributes=unsigned.attributes,
            not_before=unsigned.not_before,
            not_after=unsigned.not_after,
            signature=signature,
        )


def verify_credential(
    credential: Credential, issuer_key: PublicKey, at_time: Optional[float] = None
) -> bool:
    """Verify a credential's signature and (optionally) its validity window."""
    if credential.signature is None:
        return False
    if at_time is not None and not credential.is_valid_at(at_time):
        return False
    scheme = get_scheme(issuer_key.scheme)
    return scheme.verify(issuer_key, credential.body_bytes(), credential.signature)
