"""Role-based access policies.

Each organisation "has a local set of policies for an interaction that is
consistent with an overall agreement between organisations" (Section 1).
:class:`AccessPolicy` is that local policy: a set of rules mapping (role,
resource, operation) to allow/deny, evaluated against the roles currently
active in a :class:`~repro.access.roles.RoleManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fnmatch import fnmatch
from typing import Iterable, List, Optional

from repro.access.roles import RoleManager
from repro.errors import AccessDeniedError


class AccessDecision(Enum):
    """Outcome of a policy evaluation."""

    PERMIT = "permit"
    DENY = "deny"
    NOT_APPLICABLE = "not_applicable"


@dataclass(frozen=True)
class PolicyRule:
    """One policy rule.

    ``resource`` and ``operation`` support shell-style wildcards so a rule
    can cover, for example, every operation on ``"b2bobject:*"``.
    """

    role: str
    resource: str
    operation: str
    effect: AccessDecision = AccessDecision.PERMIT

    def applies_to(self, roles: Iterable[str], resource: str, operation: str) -> bool:
        if self.role != "*" and self.role not in set(roles):
            return False
        if not fnmatch(resource, self.resource):
            return False
        if not fnmatch(operation, self.operation):
            return False
        return True


class AccessPolicy:
    """Ordered rule list with deny-overrides combining."""

    def __init__(
        self,
        owner: str,
        rules: Optional[Iterable[PolicyRule]] = None,
        default_decision: AccessDecision = AccessDecision.DENY,
    ) -> None:
        self.owner = owner
        self._rules: List[PolicyRule] = list(rules or [])
        self._default = default_decision

    def add_rule(self, rule: PolicyRule) -> None:
        self._rules.append(rule)

    def permit(self, role: str, resource: str, operation: str) -> None:
        """Convenience: append a PERMIT rule."""
        self.add_rule(PolicyRule(role, resource, operation, AccessDecision.PERMIT))

    def deny(self, role: str, resource: str, operation: str) -> None:
        """Convenience: append a DENY rule."""
        self.add_rule(PolicyRule(role, resource, operation, AccessDecision.DENY))

    @property
    def rules(self) -> List[PolicyRule]:
        return list(self._rules)

    def evaluate(
        self, roles: Iterable[str], resource: str, operation: str
    ) -> AccessDecision:
        """Evaluate the policy with deny-overrides semantics.

        Any applicable DENY rule wins; otherwise any applicable PERMIT rule
        wins; otherwise the default decision applies.
        """
        roles = list(roles)
        applicable = [
            rule for rule in self._rules if rule.applies_to(roles, resource, operation)
        ]
        if not applicable:
            return self._default
        if any(rule.effect is AccessDecision.DENY for rule in applicable):
            return AccessDecision.DENY
        if any(rule.effect is AccessDecision.PERMIT for rule in applicable):
            return AccessDecision.PERMIT
        return self._default

    def check(
        self,
        role_manager: RoleManager,
        subject: str,
        resource: str,
        operation: str,
    ) -> None:
        """Raise :class:`AccessDeniedError` unless the policy permits the action."""
        decision = self.evaluate(role_manager.active_roles(subject), resource, operation)
        if decision is not AccessDecision.PERMIT:
            raise AccessDeniedError(
                f"policy of {self.owner!r} denies {operation!r} on {resource!r} "
                f"for subject {subject!r}"
            )
