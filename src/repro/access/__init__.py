"""Access control substrate.

Section 3.5: access control is needed "to map credentials to roles between
organisations.  The exchange of credentials at first connection to shared
information or on service invocation can be used as hooks to trigger the
mapping of credentials to roles in a virtual enterprise", with role
activation and de-activation driven by events (the Cambridge event-based
access control model the paper cites).

* :mod:`repro.access.credentials` -- signed credentials presented by parties.
* :mod:`repro.access.roles` -- event-based role activation engine.
* :mod:`repro.access.policy` -- role/operation access policies.
"""

from repro.access.credentials import Credential, CredentialIssuer, verify_credential
from repro.access.policy import AccessDecision, AccessPolicy, PolicyRule
from repro.access.roles import RoleActivationRule, RoleAssignment, RoleManager

__all__ = [
    "AccessDecision",
    "AccessPolicy",
    "Credential",
    "CredentialIssuer",
    "PolicyRule",
    "RoleActivationRule",
    "RoleAssignment",
    "RoleManager",
    "verify_credential",
]
