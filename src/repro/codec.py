"""Canonical serialisation of library objects.

Evidence generation (Section 3.4) requires that invocation parameters,
results and shared-information state be "resolved to an agreed representation
of their state".  This module provides that agreed representation: a
canonical, deterministic JSON encoding used both to compute the digests that
are signed and to measure the space/communication overhead of protocol
messages in the benchmarks.

Objects that implement ``to_dict()`` (evidence tokens, certificates,
signatures, protocol messages...) are encoded through it; plain containers,
numbers, strings, bytes and ``None`` are encoded directly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError


class CodecError(ReproError):
    """Raised when a value cannot be canonically encoded."""


def to_jsonable(value: Any) -> Any:
    """Convert ``value`` into JSON-encodable structures.

    Bytes are wrapped as ``{"__bytes__": hex}`` so the encoding is loss-free;
    objects exposing ``to_dict`` are converted via that method and tagged
    with their class name for debuggability.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, dict):
        converted = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dictionary keys must be strings, got {type(key)}")
            converted[key] = to_jsonable(item)
        return converted
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(to_jsonable(item) for item in value)}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return {"__object__": type(value).__name__, "data": to_jsonable(to_dict())}
    raise CodecError(f"cannot canonically encode value of type {type(value)!r}")


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`to_jsonable` for plain data (objects stay as dicts)."""
    if isinstance(value, dict):
        if set(value.keys()) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        if set(value.keys()) == {"__set__"}:
            return set(from_jsonable(item) for item in value["__set__"])
        if set(value.keys()) == {"__object__", "data"}:
            return from_jsonable(value["data"])
        return {key: from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    return value


def encode(value: Any) -> bytes:
    """Encode ``value`` to canonical bytes (sorted keys, no whitespace)."""
    return json.dumps(
        to_jsonable(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode` back into plain data."""
    return from_jsonable(json.loads(data.decode("utf-8")))


def encoded_size(value: Any) -> int:
    """Return the canonical encoded size of ``value`` in bytes."""
    return len(encode(value))
