"""Canonical serialisation of library objects.

Evidence generation (Section 3.4) requires that invocation parameters,
results and shared-information state be "resolved to an agreed representation
of their state".  This module provides that agreed representation: a
canonical, deterministic JSON encoding used both to compute the digests that
are signed and to measure the space/communication overhead of protocol
messages in the benchmarks.

Objects that implement ``to_dict()`` (evidence tokens, certificates,
signatures, protocol messages...) are encoded through it; plain containers,
numbers, strings, bytes and ``None`` are encoded directly.

Encode-once pipeline
--------------------

The hot paths of the protocols (fan-out of one proposal to N peers, evidence
generation over the same payload, traffic accounting) repeatedly need the
canonical form of the *same* value.  :class:`Encoded` is a content-addressed
value object carrying the canonical text and its lazily derived
``(bytes, digest, size)`` so the encoding is computed exactly once:

* :func:`canonicalize` turns any encodable value into an :class:`Encoded`;
* an :class:`Encoded` placed inside a larger structure is *spliced* into the
  canonical output verbatim -- re-encoding a message whose payload and tokens
  are already canonical costs only the envelope;
* objects exposing ``canonical_encoded()`` (protocol messages, evidence
  tokens) are spliced the same way;
* when the source value is a mapping, the :class:`Encoded` behaves as a
  read-only view of it, so pre-encoded payloads flow through protocol
  handlers transparently.

An :class:`Encoded` is an immutable snapshot: mutating the source value after
canonicalisation does not change the already-computed text or digest.  Code
that re-uses canonical encodings across versions of a mutable value must key
them through an :class:`EncodingCache` with keys that change whenever the
value does (e.g. ``(object_id, version)``) and call
:meth:`EncodingCache.invalidate` when a key's payload is replaced in place.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from time import perf_counter
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.crypto.hashing import secure_hash
from repro.errors import ReproError
from repro.observability.runtime import STATE as _OBS

try:  # the C escaper when available, byte-identical to json.dumps defaults
    from json.encoder import encode_basestring_ascii as _escape_str
except ImportError:  # pragma: no cover - pure-python fallback
    from json.encoder import py_encode_basestring_ascii as _escape_str


class CodecError(ReproError):
    """Raised when a value cannot be canonically encoded."""


_MISSING = object()


class Encoded:
    """Content-addressed canonical encoding: ``(text, bytes, digest, size)``.

    The canonical text is computed once; UTF-8 bytes and the SHA-256 digest
    are derived lazily and cached.  Instances are immutable snapshots of the
    value at canonicalisation time.  When ``source`` is a mapping, the
    instance offers a read-only mapping view over it so protocol handlers can
    keep treating message payloads as dictionaries.
    """

    __slots__ = ("text", "source", "_data", "_digest")

    def __init__(self, text: str, source: Any = _MISSING) -> None:
        self.text = text
        self.source = source
        self._data: Optional[bytes] = None
        self._digest: Optional[bytes] = None

    # -- derived representations (computed once) -----------------------------

    @property
    def data(self) -> bytes:
        """Canonical UTF-8 bytes."""
        if self._data is None:
            self._data = self.text.encode("utf-8")
        return self._data

    @property
    def digest(self) -> bytes:
        """SHA-256 digest of the canonical bytes."""
        if self._digest is None:
            self._digest = secure_hash(self.data)
        return self._digest

    @property
    def size(self) -> int:
        """Size of the canonical encoding in bytes."""
        return len(self.data)

    def jsonable(self) -> Any:
        """A fresh JSON-compatible structure parsed from the canonical text."""
        return json.loads(self.text)

    # -- read-only mapping view over the source value ------------------------

    def _mapping(self) -> Any:
        source = self.source
        if source is _MISSING or not hasattr(source, "__getitem__"):
            raise CodecError(
                "this Encoded value does not wrap a mapping; "
                "use .jsonable() to inspect its content"
            )
        return source

    def __getitem__(self, key: Any) -> Any:
        return self._mapping()[key]

    def get(self, key: Any, default: Any = None) -> Any:
        return self._mapping().get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._mapping()

    def __iter__(self) -> Iterator[Any]:
        return iter(self._mapping())

    def __len__(self) -> int:
        return len(self._mapping())

    def keys(self):
        return self._mapping().keys()

    def values(self):
        return self._mapping().values()

    def items(self):
        return self._mapping().items()

    def __bool__(self) -> bool:
        if self.source is _MISSING:
            return self.text not in ("null", "{}", "[]", '""', "0", "false")
        return bool(self.source)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Encoded):
            return self.text == other.text
        if self.source is not _MISSING:
            return bool(self.source == other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Encoded(size={self.size}, digest={self.digest.hex()[:16]})"


def _float_text(value: float) -> str:
    """Canonical text of a float, matching ``json.dumps`` defaults."""
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "Infinity"
    if value == float("-inf"):
        return "-Infinity"
    return float.__repr__(value)


def _write(value: Any, out: List[str]) -> None:
    """Append the canonical JSON fragments of ``value`` to ``out``.

    Produces byte-identical output to
    ``json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))``
    while splicing pre-computed :class:`Encoded` values verbatim.
    """
    # Exact-type fast paths for the common cases.
    kind = type(value)
    if kind is str:
        out.append(_escape_str(value))
        return
    if value is None:
        out.append("null")
        return
    if kind is bool:
        out.append("true" if value else "false")
        return
    if kind is int:
        out.append(repr(value))
        return
    if kind is float:
        out.append(_float_text(value))
        return
    if kind is dict:
        _write_dict(value, out)
        return
    if kind is list or kind is tuple:
        _write_sequence(value, out)
        return
    if kind is Encoded:
        out.append(value.text)
        return
    # Subclasses and the less common encodable types.
    if isinstance(value, bool):
        out.append("true" if value else "false")
        return
    if isinstance(value, int):
        out.append(int.__repr__(value))
        return
    if isinstance(value, float):
        out.append(_float_text(value))
        return
    if isinstance(value, str):
        out.append(_escape_str(value))
        return
    if isinstance(value, Encoded):
        out.append(value.text)
        return
    if isinstance(value, (bytes, bytearray, memoryview)):
        out.append('{"__bytes__":')
        out.append(_escape_str(bytes(value).hex()))
        out.append("}")
        return
    if isinstance(value, dict):
        _write_dict(value, out)
        return
    if isinstance(value, (list, tuple)):
        _write_sequence(value, out)
        return
    if isinstance(value, (set, frozenset)):
        out.append('{"__set__":')
        # The ordered items are already jsonable (their dicts are intended
        # tags, e.g. {"__bytes__": ...}), so they must not be re-escaped.
        _write_jsonable(_ordered_set_jsonables(value), out)
        out.append("}")
        return
    canonical = getattr(value, "canonical_encoded", None)
    if callable(canonical):
        out.append(canonical().text)
        return
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        out.append('{"__object__":')
        out.append(_escape_str(type(value).__name__))
        out.append(',"data":')
        _write(to_dict(), out)
        out.append("}")
        return
    raise CodecError(f"cannot canonically encode value of type {type(value)!r}")


def _write_dict(value: Dict[Any, Any], out: List[str]) -> None:
    try:
        keys = sorted(value)
    except TypeError:
        keys = list(value)  # let the per-key check below raise CodecError
    # A plain dict shaped exactly like a codec tag must be escaped, or the
    # decoder would misread it as that tag (see _RESERVED_TAG_SHAPES).
    escaped = set(keys) in _RESERVED_TAG_SHAPES
    if escaped:
        out.append('{"__literal__":')
    out.append("{")
    first = True
    for key in keys:
        if not isinstance(key, str):
            raise CodecError(f"dictionary keys must be strings, got {type(key)}")
        if first:
            first = False
        else:
            out.append(",")
        out.append(_escape_str(key))
        out.append(":")
        _write(value[key], out)
    out.append("}")
    if escaped:
        out.append("}")


def _write_jsonable(value: Any, out: List[str]) -> None:
    """Write a value that is *already* jsonable (from :func:`to_jsonable`).

    Unlike :func:`_write_dict`, dicts here are written verbatim: any
    tag-shaped dict in converted output is an intended codec tag, and any
    escaping a plain dict needed has already been applied.
    """
    if isinstance(value, dict):
        out.append("{")
        first = True
        for key in sorted(value):
            if first:
                first = False
            else:
                out.append(",")
            out.append(_escape_str(key))
            out.append(":")
            _write_jsonable(value[key], out)
        out.append("}")
        return
    if isinstance(value, list):
        out.append("[")
        first = True
        for item in value:
            if first:
                first = False
            else:
                out.append(",")
            _write_jsonable(item, out)
        out.append("]")
        return
    _write(value, out)


def _write_sequence(value: Any, out: List[str]) -> None:
    out.append("[")
    first = True
    for item in value:
        if first:
            first = False
        else:
            out.append(",")
        _write(item, out)
    out.append("]")


def _ordered_set_jsonables(value: Any) -> List[Any]:
    """Deterministic ordering of a set's jsonable items.

    Comparable (homogeneous) items keep the natural sort the seed encoding
    used, so existing digests stay stable; heterogeneous items -- where a
    plain sort raises TypeError -- fall back to ordering by canonical
    encoded form, which is total and deterministic.
    """
    jsonables = [to_jsonable(item) for item in value]
    try:
        return sorted(jsonables)
    except TypeError:
        return sorted(jsonables, key=encode_text)


def encode_text(value: Any) -> str:
    """Return the canonical JSON text of ``value`` (sorted keys, no spaces)."""
    if type(value) is Encoded:
        return value.text
    out: List[str] = []
    _write(value, out)
    return "".join(out)


def canonicalize(value: Any) -> Encoded:
    """Resolve ``value`` to its agreed canonical representation, once.

    Returns ``value`` unchanged when it is already an :class:`Encoded`.
    """
    if type(value) is Encoded:
        return value
    return Encoded(encode_text(value), source=value)


#: Key sets the decoder interprets as codec tags.  A *plain* dict with one
#: of these exact shapes must be escaped on encode (``__literal__``) or it
#: would come back as the tagged type instead of itself.
_RESERVED_TAG_SHAPES = (
    {"__bytes__"},
    {"__set__"},
    {"__literal__"},
    {"__object__", "data"},
)


def to_jsonable(value: Any) -> Any:
    """Convert ``value`` into JSON-encodable structures.

    Bytes are wrapped as ``{"__bytes__": hex}`` so the encoding is loss-free;
    objects exposing ``to_dict`` are converted via that method and tagged
    with their class name for debuggability.  Already-canonical
    :class:`Encoded` values yield their parsed snapshot.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Encoded):
        return value.jsonable()
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, dict):
        converted = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dictionary keys must be strings, got {type(key)}")
            converted[key] = to_jsonable(item)
        if set(converted.keys()) in _RESERVED_TAG_SHAPES:
            # A plain dict whose keys collide with a codec tag would be
            # misread as that tag on decode; escape it so the roundtrip
            # stays lossless for every input.
            return {"__literal__": converted}
        return converted
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": _ordered_set_jsonables(value)}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return {"__object__": type(value).__name__, "data": to_jsonable(to_dict())}
    raise CodecError(f"cannot canonically encode value of type {type(value)!r}")


def from_jsonable(
    value: Any,
    object_reviver: Optional[Callable[[str, Any], Any]] = None,
) -> Any:
    """Inverse of :func:`to_jsonable` for plain data.

    ``object_reviver(name, data)`` -- when given -- decides what an
    ``{"__object__": name, "data": ...}`` tag becomes (``data`` arrives
    already revived); without one, objects decay to their plain ``data``.
    The wire transport supplies a reviver backed by its type registry, so
    there is exactly one implementation of the canonical tag rules.
    """
    if isinstance(value, dict):
        if set(value.keys()) == {"__literal__"}:
            # An escaped plain dict whose own keys look like a codec tag.
            return {
                key: from_jsonable(item, object_reviver)
                for key, item in value["__literal__"].items()
            }
        if set(value.keys()) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        if set(value.keys()) == {"__set__"}:
            return set(
                from_jsonable(item, object_reviver) for item in value["__set__"]
            )
        if set(value.keys()) == {"__object__", "data"}:
            data = from_jsonable(value["data"], object_reviver)
            if object_reviver is not None:
                return object_reviver(value["__object__"], data)
            return data
        return {
            key: from_jsonable(item, object_reviver) for key, item in value.items()
        }
    if isinstance(value, list):
        return [from_jsonable(item, object_reviver) for item in value]
    return value


def encode(value: Any) -> bytes:
    """Encode ``value`` to canonical bytes (sorted keys, no whitespace)."""
    if type(value) is Encoded:
        return value.data
    observe = _OBS.observe_encode
    if observe is None:
        return encode_text(value).encode("utf-8")
    started = perf_counter()
    data = encode_text(value).encode("utf-8")
    observe(perf_counter() - started)
    return data


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode` back into plain data."""
    return from_jsonable(json.loads(data.decode("utf-8")))


def encoded_size(value: Any) -> int:
    """Return the canonical encoded size of ``value`` in bytes."""
    if type(value) is Encoded:
        return value.size
    return len(encode(value))


def unwrap(value: Any) -> Any:
    """Return the original source value behind an :class:`Encoded`, if known.

    Used at the boundary where application code (validators, bound
    components) receives values that travelled as canonical encodings.
    """
    if type(value) is Encoded and value.source is not _MISSING:
        return value.source
    return value


def digest_of(value: Any) -> bytes:
    """Digest of the canonical encoding of ``value`` (cached for Encoded)."""
    if type(value) is Encoded:
        return value.digest
    return secure_hash(encode(value))


class EncodingCache:
    """Keyed, bounded memo cache of canonical encodings.

    Callers supply a hashable key that MUST change whenever the underlying
    payload changes (e.g. ``(object_id, version)`` or a monotonically bumped
    state token).  For payloads that are replaced *in place* under the same
    key, call :meth:`invalidate` before the next lookup -- the cache has no
    way to detect mutation on its own; that is the explicit part of the
    invalidation contract.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Encoded]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Encoded]:
        """Return the cached encoding for ``key`` or ``None``."""
        with self._lock:
            encoded = self._entries.get(key)
            if encoded is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return encoded

    def put(self, key: Hashable, encoded: Encoded) -> None:
        """Store ``encoded`` under ``key`` (evicting LRU entries as needed)."""
        with self._lock:
            self._entries[key] = encoded
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def get_or_encode(self, key: Hashable, value: Any) -> Encoded:
        """Return the cached encoding for ``key``, canonicalising on a miss."""
        encoded = self.get(key)
        if encoded is None:
            encoded = canonicalize(value)
            self.put(key, encoded)
        return encoded

    def invalidate(self, key: Hashable) -> bool:
        """Drop the entry for ``key``; returns whether one was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
