"""Cryptographic substrate for the non-repudiation middleware.

The paper (Section 3.5) requires: an unforgeable, verifiable signature scheme;
a secure one-way, collision-resistant hash; a secure pseudo-random sequence
generator; credential (certificate) management; and time-stamping.  This
package provides from-scratch implementations of all of them:

* :mod:`repro.crypto.hashing` -- SHA-256 based digests, hash chains, Merkle trees.
* :mod:`repro.crypto.rng` -- HMAC-DRBG pseudo-random generator and unique ids.
* :mod:`repro.crypto.rsa` -- RSA key generation (Miller-Rabin) and signatures.
* :mod:`repro.crypto.dsa` -- DSA signatures.
* :mod:`repro.crypto.hmac_scheme` -- symmetric HMAC "signature" scheme.
* :mod:`repro.crypto.forward_secure` -- hash-chain forward-secure signatures.
* :mod:`repro.crypto.keys` / :mod:`repro.crypto.signature` -- key objects and
  the scheme registry used by the rest of the library.
* :mod:`repro.crypto.certificates` -- certificate authority, chains, revocation.
* :mod:`repro.crypto.timestamp` -- time-stamping authority.
"""

from repro.crypto.hashing import HashChain, MerkleTree, secure_hash, secure_hash_hex
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.rng import SecureRandom, new_nonce, new_unique_id
from repro.crypto.signature import (
    Signature,
    SignatureScheme,
    Signer,
    Verifier,
    get_scheme,
    register_scheme,
)
from repro.crypto.certificates import (
    Certificate,
    CertificateAuthority,
    CertificateStore,
    RevocationList,
)
from repro.crypto.timestamp import TimestampAuthority, TimestampToken

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateStore",
    "HashChain",
    "KeyPair",
    "MerkleTree",
    "PrivateKey",
    "PublicKey",
    "RevocationList",
    "SecureRandom",
    "Signature",
    "SignatureScheme",
    "Signer",
    "TimestampAuthority",
    "TimestampToken",
    "Verifier",
    "get_scheme",
    "new_nonce",
    "new_unique_id",
    "register_scheme",
    "secure_hash",
    "secure_hash_hex",
]
