"""From-scratch DSA signature scheme.

Domain parameters (p, q, g) are generated once per parameter size and cached,
since parameter generation (finding a prime p with q | p - 1) is by far the
most expensive step and the parameters are public and shareable, exactly as
in deployed DSA.  Per-message nonces are derived deterministically from the
private key and the digest (RFC 6979 style) so that signing never risks nonce
reuse under a deterministic test RNG.
"""

from __future__ import annotations

import hashlib
import hmac
import threading
from typing import Any, Dict, Optional, Tuple

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.modexp import mod_exp
from repro.crypto.primality import generate_prime, generate_prime_congruent, modular_inverse
from repro.crypto.rng import SecureRandom, default_rng
from repro.errors import SignatureError
from repro.crypto.signature import SignatureScheme

#: Default sizes.  (1024, 160) is the classic FIPS 186-2 parameter size; the
#: test suite uses (512, 160) for speed via the ``p_bits`` option.
DEFAULT_P_BITS = 1024
DEFAULT_Q_BITS = 160

_parameter_cache: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
_parameter_lock = threading.Lock()


def generate_domain_parameters(
    p_bits: int = DEFAULT_P_BITS,
    q_bits: int = DEFAULT_Q_BITS,
    rng: Optional[SecureRandom] = None,
) -> Tuple[int, int, int]:
    """Generate (or fetch cached) DSA domain parameters ``(p, q, g)``."""
    key = (p_bits, q_bits)
    with _parameter_lock:
        if key in _parameter_cache:
            return _parameter_cache[key]
    rng = rng or default_rng()
    q = generate_prime(q_bits, rng=rng)
    # Find p = k*q + 1 prime with the requested size.
    p = generate_prime_congruent(p_bits, q, 1, rng=rng)
    # Find a generator of the order-q subgroup.
    exponent = (p - 1) // q
    g = 1
    h = 2
    while g == 1:
        g = mod_exp(h, exponent, p)
        h += 1
    params = (p, q, g)
    with _parameter_lock:
        _parameter_cache[key] = params
    return params


def _deterministic_nonce(private_x: int, digest: bytes, q: int) -> int:
    """Derive a per-signature nonce k in [1, q-1] from the key and digest."""
    q_bytes = (q.bit_length() + 7) // 8
    key_material = private_x.to_bytes((private_x.bit_length() + 7) // 8 or 1, "big")
    counter = 0
    while True:
        block = hmac.new(
            key_material, digest + counter.to_bytes(4, "big"), hashlib.sha256
        ).digest()
        while len(block) < q_bytes:
            block += hmac.new(key_material, block, hashlib.sha256).digest()
        k = int.from_bytes(block[:q_bytes], "big") % q
        if 1 <= k <= q - 1:
            return k
        counter += 1


class DSAScheme(SignatureScheme):
    """DSA signatures over cached domain parameters."""

    name = "dsa"

    def generate_keypair(
        self,
        p_bits: int = DEFAULT_P_BITS,
        q_bits: int = DEFAULT_Q_BITS,
        rng: Optional[SecureRandom] = None,
        **options: Any,
    ) -> KeyPair:
        rng = rng or default_rng()
        p, q, g = generate_domain_parameters(p_bits, q_bits, rng=rng)
        x = rng.random_int_range(1, q)
        y = mod_exp(g, x, p)
        public = PublicKey(scheme=self.name, params={"p": p, "q": q, "g": g, "y": y})
        private = PrivateKey(
            scheme=self.name,
            params={"p": p, "q": q, "g": g, "y": y, "x": x},
            key_id=public.key_id,
        )
        return KeyPair(private=private, public=public)

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        p = private_key.params["p"]
        q = private_key.params["q"]
        g = private_key.params["g"]
        x = private_key.params["x"]
        z = int.from_bytes(digest, "big") % q
        while True:
            k = _deterministic_nonce(x, digest, q)
            r = mod_exp(g, k, p) % q
            if r == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            k_inv = modular_inverse(k, q)
            s = (k_inv * (z + x * r)) % q
            if s == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            break
        q_bytes = (q.bit_length() + 7) // 8
        return r.to_bytes(q_bytes, "big") + s.to_bytes(q_bytes, "big")

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        p = public_key.params["p"]
        q = public_key.params["q"]
        g = public_key.params["g"]
        y = public_key.params["y"]
        q_bytes = (q.bit_length() + 7) // 8
        if len(signature) != 2 * q_bytes:
            return False
        r = int.from_bytes(signature[:q_bytes], "big")
        s = int.from_bytes(signature[q_bytes:], "big")
        if not (0 < r < q and 0 < s < q):
            return False
        z = int.from_bytes(digest, "big") % q
        try:
            w = modular_inverse(s, q)
        except ValueError:
            return False
        u1 = (z * w) % q
        u2 = (r * w) % q
        v = ((mod_exp(g, u1, p) * mod_exp(y, u2, p)) % p) % q
        return v == r
