"""From-scratch DSA signature scheme.

Domain parameters (p, q, g) are generated once per parameter size and cached,
since parameter generation (finding a prime p with q | p - 1) is by far the
most expensive step and the parameters are public and shareable, exactly as
in deployed DSA.  Per-message nonces are derived deterministically from the
private key and the digest (RFC 6979 style) so that signing never risks nonce
reuse under a deterministic test RNG.

Nonce precomputation: the expensive part of a DSA signature -- ``r = g^k mod
p`` and ``k^-1 mod q`` -- does not depend on the message, only on the domain
parameters.  A :class:`NoncePool` precomputes ``(k, k^-1, r)`` triples off
the critical path (a background refill thread plus a synchronous fallback for
an empty pool), cutting online signing to a hash reduction and two modular
multiplications.  Pools are keyed by ``(p, q, g)``, so one pool serves every
key sharing a parameter set.  Pooled nonces come from the thread-safe
HMAC-DRBG (nonce reuse probability ~2^-160 per pair), trading the
deterministic RFC 6979 derivation for offline precomputation; pooling is
therefore **opt-in** via :func:`enable_nonce_pools` and signing falls back to
the deterministic path whenever pooling is disabled.
"""

from __future__ import annotations

import hashlib
import hmac
import threading
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.modexp import mod_exp
from repro.crypto.primality import generate_prime, generate_prime_congruent, modular_inverse
from repro.crypto.rng import SecureRandom, default_rng
from repro.errors import SignatureError
from repro.crypto.signature import SignatureScheme

#: Default sizes.  (1024, 160) is the classic FIPS 186-2 parameter size; the
#: test suite uses (512, 160) for speed via the ``p_bits`` option.
DEFAULT_P_BITS = 1024
DEFAULT_Q_BITS = 160

_parameter_cache: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
_parameter_lock = threading.Lock()


def generate_domain_parameters(
    p_bits: int = DEFAULT_P_BITS,
    q_bits: int = DEFAULT_Q_BITS,
    rng: Optional[SecureRandom] = None,
) -> Tuple[int, int, int]:
    """Generate (or fetch cached) DSA domain parameters ``(p, q, g)``."""
    key = (p_bits, q_bits)
    with _parameter_lock:
        if key in _parameter_cache:
            return _parameter_cache[key]
    rng = rng or default_rng()
    q = generate_prime(q_bits, rng=rng)
    # Find p = k*q + 1 prime with the requested size.
    p = generate_prime_congruent(p_bits, q, 1, rng=rng)
    # Find a generator of the order-q subgroup.
    exponent = (p - 1) // q
    g = 1
    h = 2
    while g == 1:
        g = mod_exp(h, exponent, p)
        h += 1
    params = (p, q, g)
    with _parameter_lock:
        _parameter_cache[key] = params
    return params


def _deterministic_nonce(private_x: int, digest: bytes, q: int) -> int:
    """Derive a per-signature nonce k in [1, q-1] from the key and digest."""
    q_bytes = (q.bit_length() + 7) // 8
    key_material = private_x.to_bytes((private_x.bit_length() + 7) // 8 or 1, "big")
    counter = 0
    while True:
        block = hmac.new(
            key_material, digest + counter.to_bytes(4, "big"), hashlib.sha256
        ).digest()
        while len(block) < q_bytes:
            block += hmac.new(key_material, block, hashlib.sha256).digest()
        k = int.from_bytes(block[:q_bytes], "big") % q
        if 1 <= k <= q - 1:
            return k
        counter += 1


class NoncePool:
    """Precomputed DSA signing nonces for one set of domain parameters.

    Holds up to ``capacity`` ready-to-use ``(k, k^-1 mod q, r = (g^k mod p)
    mod q)`` triples.  :meth:`take` pops in O(1); an empty pool computes a
    triple synchronously (correctness never depends on the refill thread
    keeping up).  With ``background=True`` a daemon thread refills the pool
    whenever it drains below the low-water mark, so steady-state signing
    stays on the two-multiplication fast path.
    """

    def __init__(
        self,
        p: int,
        q: int,
        g: int,
        capacity: int = 128,
        rng: Optional[SecureRandom] = None,
        background: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("nonce pool capacity must be at least 1")
        self.p, self.q, self.g = p, q, g
        self.capacity = capacity
        self._low_water = max(1, capacity // 4)
        self._rng = rng or default_rng()
        self._triples: Deque[Tuple[int, int, int]] = deque()
        self._lock = threading.Lock()
        self._refill_needed = threading.Event()
        self._stopped = False
        self.hits = 0
        self.misses = 0
        self.produced = 0
        self._thread: Optional[threading.Thread] = None
        if background:
            self._thread = threading.Thread(
                target=self._refill_loop, name="repro-nonce-pool", daemon=True
            )
            self._thread.start()
            self._refill_needed.set()

    def _generate(self) -> Tuple[int, int, int]:
        while True:
            k = self._rng.random_int_range(1, self.q)
            r = mod_exp(self.g, k, self.p) % self.q
            if r == 0:  # astronomically rare; a fresh nonce is the fix
                continue
            return k, modular_inverse(k, self.q), r

    def size(self) -> int:
        with self._lock:
            return len(self._triples)

    def precompute(self, count: int) -> int:
        """Synchronously fill up to ``count`` triples; returns how many were added."""
        added = 0
        for _ in range(count):
            triple = self._generate()
            with self._lock:
                if len(self._triples) >= self.capacity:
                    break
                self._triples.append(triple)
                self.produced += 1
                added += 1
        return added

    def take(self) -> Tuple[int, int, int]:
        """Pop a precomputed triple, computing one inline when the pool is dry."""
        with self._lock:
            if self._triples:
                triple = self._triples.popleft()
                self.hits += 1
                remaining = len(self._triples)
            else:
                triple = None
                self.misses += 1
                remaining = 0
        if self._thread is not None and remaining <= self._low_water:
            self._refill_needed.set()
        if triple is None:
            triple = self._generate()
        return triple

    def _refill_loop(self) -> None:
        while True:
            self._refill_needed.wait()
            if self._stopped:
                return
            self._refill_needed.clear()
            while not self._stopped:
                with self._lock:
                    if len(self._triples) >= self.capacity:
                        break
                triple = self._generate()
                with self._lock:
                    if len(self._triples) < self.capacity:
                        self._triples.append(triple)
                        self.produced += 1

    def close(self) -> None:
        """Stop the refill thread (precomputed triples remain usable)."""
        self._stopped = True
        self._refill_needed.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._triples),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "produced": self.produced,
            }


_nonce_pools: Dict[Tuple[int, int, int], NoncePool] = {}
_nonce_pools_lock = threading.Lock()
_nonce_pool_settings: Optional[Dict[str, Any]] = None


def enable_nonce_pools(capacity: int = 128, background: bool = True) -> None:
    """Turn on pooled signing for every DSA key (pools created per parameter set)."""
    global _nonce_pool_settings
    with _nonce_pools_lock:
        _nonce_pool_settings = {"capacity": capacity, "background": background}


def disable_nonce_pools() -> None:
    """Return to deterministic RFC 6979-style signing and drop all pools."""
    global _nonce_pool_settings
    with _nonce_pools_lock:
        _nonce_pool_settings = None
        pools = list(_nonce_pools.values())
        _nonce_pools.clear()
    for pool in pools:
        pool.close()


def nonce_pools_enabled() -> bool:
    with _nonce_pools_lock:
        return _nonce_pool_settings is not None


def nonce_pool_for(p: int, q: int, g: int) -> Optional[NoncePool]:
    """The pool serving parameter set ``(p, q, g)``, or ``None`` when disabled."""
    with _nonce_pools_lock:
        if _nonce_pool_settings is None:
            return None
        key = (p, q, g)
        pool = _nonce_pools.get(key)
        if pool is None:
            pool = NoncePool(p, q, g, **_nonce_pool_settings)
            _nonce_pools[key] = pool
        return pool


def nonce_pool_stats() -> Dict[str, Dict[str, int]]:
    """Per-parameter-set pool statistics.

    Keys carry the parameter bit sizes for readability plus a short digest of
    the actual ``(p, q, g)`` values, so two distinct parameter sets of equal
    size never collapse into one entry.
    """
    with _nonce_pools_lock:
        pools = dict(_nonce_pools)
    stats = {}
    for (p, q, g), pool in pools.items():
        fingerprint = hashlib.sha256(f"{p}:{q}:{g}".encode("ascii")).hexdigest()[:8]
        stats[f"p{p.bit_length()}/q{q.bit_length()}/{fingerprint}"] = pool.stats()
    return stats


class DSAScheme(SignatureScheme):
    """DSA signatures over cached domain parameters."""

    name = "dsa"

    def generate_keypair(
        self,
        p_bits: int = DEFAULT_P_BITS,
        q_bits: int = DEFAULT_Q_BITS,
        rng: Optional[SecureRandom] = None,
        **options: Any,
    ) -> KeyPair:
        rng = rng or default_rng()
        p, q, g = generate_domain_parameters(p_bits, q_bits, rng=rng)
        x = rng.random_int_range(1, q)
        y = mod_exp(g, x, p)
        public = PublicKey(scheme=self.name, params={"p": p, "q": q, "g": g, "y": y})
        private = PrivateKey(
            scheme=self.name,
            params={"p": p, "q": q, "g": g, "y": y, "x": x},
            key_id=public.key_id,
        )
        return KeyPair(private=private, public=public)

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        p = private_key.params["p"]
        q = private_key.params["q"]
        g = private_key.params["g"]
        x = private_key.params["x"]
        z = int.from_bytes(digest, "big") % q
        pool = nonce_pool_for(p, q, g)
        if pool is not None:
            # Online fast path: the message-independent work was precomputed.
            while True:
                k, k_inv, r = pool.take()
                s = (k_inv * (z + x * r)) % q
                if s != 0:
                    break
            return self._encode_signature(r, s, q)
        while True:
            k = _deterministic_nonce(x, digest, q)
            r = mod_exp(g, k, p) % q
            if r == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            k_inv = modular_inverse(k, q)
            s = (k_inv * (z + x * r)) % q
            if s == 0:
                digest = hashlib.sha256(digest).digest()
                continue
            break
        return self._encode_signature(r, s, q)

    @staticmethod
    def _encode_signature(r: int, s: int, q: int) -> bytes:
        q_bytes = (q.bit_length() + 7) // 8
        return r.to_bytes(q_bytes, "big") + s.to_bytes(q_bytes, "big")

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        p = public_key.params["p"]
        q = public_key.params["q"]
        g = public_key.params["g"]
        y = public_key.params["y"]
        q_bytes = (q.bit_length() + 7) // 8
        if len(signature) != 2 * q_bytes:
            return False
        r = int.from_bytes(signature[:q_bytes], "big")
        s = int.from_bytes(signature[q_bytes:], "big")
        if not (0 < r < q and 0 < s < q):
            return False
        z = int.from_bytes(digest, "big") % q
        try:
            w = modular_inverse(s, q)
        except ValueError:
            return False
        u1 = (z * w) % q
        u2 = (r * w) % q
        v = ((mod_exp(g, u1, p) * mod_exp(y, u2, p)) % p) % q
        return v == r
