"""Forward-secure signature scheme.

The paper's infrastructure requirements (Section 3.5) note that
"forward-secure signature schemes have been proposed that obviate the need
for a third party signature on time-stamps" [Zhou, Bao, Deng 2003]: if the
signing key evolves over time and old keys are destroyed, a later key
compromise cannot be used to forge evidence dated in an earlier period.

This module implements the generic tree/certification construction:

* key generation creates ``periods`` per-period DSA key pairs (cheap, since
  the expensive domain parameters are shared and cached);
* the long-term public key is the Merkle-tree root over the per-period public
  values, so a single short value certifies every period;
* a signature for period *i* carries the DSA signature, the period's public
  value and a Merkle inclusion proof linking it to the root;
* :func:`evolve_key` advances the private key to the next period and
  *deletes* the current period's secret, which is what provides forward
  security.

Offline/online split: everything in a forward-secure signature except the
inner DSA signature is *message-independent* -- the period's public value,
its Merkle inclusion proof (which naively rebuilds the whole tree per
signature) and the per-period DSA key.  Analogous to the DSA ``NoncePool``,
:func:`enable_period_precompute` moves that work off the signing path into a
per-``(root, period)`` context cache: the Merkle tree is built once per key
set, the next period's context is precomputed on the shared
:mod:`repro.parallel` executor whenever a period is first used or the key
evolves, and online signing is reduced to the inner DSA operation (itself
pooled when nonce pools are enabled) plus a JSON envelope.  The cache holds
the *current* period's secret in one more place, so :func:`evolve_key`
evicts the evolved-away period eagerly -- forward security never depends on
the cache forgetting by luck -- and the split is opt-in, mirroring
``enable_nonce_pools``.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import parallel
from repro.crypto.dsa import DSAScheme, generate_domain_parameters
from repro.crypto.hashing import MerkleTree, combine_digests, secure_hash
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.modexp import mod_exp
from repro.crypto.rng import SecureRandom, default_rng
from repro.errors import SignatureError
from repro.crypto.signature import SignatureScheme

DEFAULT_PERIODS = 16


def _leaf_bytes(period: int, y: int) -> bytes:
    """Canonical leaf encoding binding a period index to its public value."""
    return f"{period}:{y}".encode("ascii")


# -- offline/online period-context precompute ---------------------------------------

_precompute_lock = threading.Lock()
_precompute_enabled = False
#: Merkle tree over the per-period public values, one per key set (root).
_trees: Dict[bytes, MerkleTree] = {}
#: Message-independent signing context per (root, period): the period secret
#: and public value plus the serialised inclusion proof.
_contexts: Dict[Tuple[bytes, int], Dict[str, Any]] = {}
_precompute_stats = {"hits": 0, "misses": 0, "precomputed": 0, "evicted": 0}

#: Bound on cached key sets: contexts hold live period secrets, so a key
#: that was rotated out must not keep them resident for the process
#: lifetime.  Admitting key set N+1 evicts the oldest-admitted root (FIFO)
#: together with all its contexts.  Far above any simulated deployment's
#: concurrent key count; raise deliberately if a real one exceeds it.
_MAX_CACHED_KEYSETS = 32


def _admit_root_locked(root: bytes, tree: MerkleTree) -> None:
    """Cache the tree for ``root``, evicting the oldest key set at the cap."""
    if root in _trees:
        return
    while len(_trees) >= _MAX_CACHED_KEYSETS:
        oldest = next(iter(_trees))
        del _trees[oldest]
        for key in [k for k in _contexts if k[0] == oldest]:
            del _contexts[key]
            _precompute_stats["evicted"] += 1
    _trees[root] = tree


def enable_period_precompute() -> None:
    """Turn on the offline/online split for forward-secure signing."""
    global _precompute_enabled
    with _precompute_lock:
        _precompute_enabled = True


def disable_period_precompute() -> None:
    """Return to per-signature proof construction and drop every cached context."""
    global _precompute_enabled
    with _precompute_lock:
        _precompute_enabled = False
        _trees.clear()
        _contexts.clear()


def period_precompute_enabled() -> bool:
    with _precompute_lock:
        return _precompute_enabled


def period_precompute_stats() -> Dict[str, int]:
    """Counters of the context cache (hits/misses on the signing path,
    background precomputations, evictions by key evolution)."""
    with _precompute_lock:
        return dict(_precompute_stats)


def _cached_context(root: bytes, period: int) -> Optional[Dict[str, Any]]:
    with _precompute_lock:
        if not _precompute_enabled:
            return None
        return _contexts.get((root, period))


def _build_context(params: Dict[str, Any], period: int) -> Optional[Dict[str, Any]]:
    """Compute the message-independent signing context for ``period``.

    Returns ``None`` past the last period.  The secret may be ``None`` (an
    erased period); signing with such a context raises exactly like the
    uncached path, so the cache never resurrects forward security.
    """
    periods = params["periods"]
    if period < 0 or period >= periods:
        return None
    secrets = json.loads(params["secrets"])
    publics = json.loads(params["publics"])
    root = params["root"]
    with _precompute_lock:
        tree = _trees.get(root)
    if tree is None:
        tree = MerkleTree(_leaf_bytes(i, publics[i]) for i in range(periods))
        with _precompute_lock:
            _admit_root_locked(root, tree)
    proof = tree.proof(period)
    return {
        "x": secrets[period],
        "y": publics[period],
        "path": [[sib.hex(), bool(left)] for sib, left in proof.path],
    }


def _context_for(params: Dict[str, Any], period: int) -> Optional[Dict[str, Any]]:
    """Fetch (or compute and cache) the signing context for ``period``.

    One lock acquisition on the hot path: enabled check, lookup and hit/miss
    accounting share a single critical section.
    """
    root = params["root"]
    with _precompute_lock:
        if not _precompute_enabled:
            return None
        context = _contexts.get((root, period))
        if context is not None:
            _precompute_stats["hits"] += 1
            return context
        _precompute_stats["misses"] += 1
    context = _build_context(params, period)
    if context is None:
        return None
    with _precompute_lock:
        if not _precompute_enabled:
            return context  # usable, but do not repopulate a dropped cache
        return _contexts.setdefault((root, period), context)


def _precompute_period(params: Dict[str, Any], period: int) -> None:
    """Offline half: populate the context for ``period`` ahead of use.

    Runs on the shared executor (or inline from a pool worker); a no-op when
    the context already exists or the period is out of range.
    """
    root = params["root"]
    if _cached_context(root, period) is not None:
        return
    context = _build_context(params, period)
    if context is None:
        return
    with _precompute_lock:
        if _precompute_enabled and (root, period) not in _contexts:
            _contexts[(root, period)] = context
            _precompute_stats["precomputed"] += 1


def _schedule_precompute(params: Dict[str, Any], period: int) -> None:
    if period >= params["periods"] or _cached_context(params["root"], period) is not None:
        return
    # Background: staging a period is opportunistic cache warming, so it
    # must not count against the retry scheduler's quiescence criterion.
    parallel.submit(lambda: _precompute_period(params, period), background=True)


def _evict_context(root: bytes, period: int) -> None:
    with _precompute_lock:
        if _contexts.pop((root, period), None) is not None:
            _precompute_stats["evicted"] += 1


class ForwardSecureScheme(SignatureScheme):
    """Merkle-certified per-period DSA keys with key evolution."""

    name = "forward-secure"

    def __init__(self) -> None:
        self._dsa = DSAScheme()

    def generate_keypair(
        self,
        periods: int = DEFAULT_PERIODS,
        p_bits: int = 512,
        q_bits: int = 160,
        rng: Optional[SecureRandom] = None,
        **options: Any,
    ) -> KeyPair:
        if periods < 1:
            raise SignatureError("forward-secure key needs at least one period")
        rng = rng or default_rng()
        p, q, g = generate_domain_parameters(p_bits, q_bits, rng=rng)
        secrets: List[int] = []
        publics: List[int] = []
        tree = MerkleTree()
        for period in range(periods):
            x = rng.random_int_range(1, q)
            y = mod_exp(g, x, p)
            secrets.append(x)
            publics.append(y)
            tree.add(_leaf_bytes(period, y))
        root = tree.root
        public = PublicKey(
            scheme=self.name,
            params={
                "p": p,
                "q": q,
                "g": g,
                "root": root,
                "periods": periods,
            },
        )
        private = PrivateKey(
            scheme=self.name,
            params={
                "p": p,
                "q": q,
                "g": g,
                "root": root,
                "periods": periods,
                "current_period": 0,
                "secrets": json.dumps(secrets),
                "publics": json.dumps(publics),
            },
            key_id=public.key_id,
        )
        return KeyPair(private=private, public=public)

    # -- signing -------------------------------------------------------------

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        params = private_key.params
        period = params["current_period"]
        periods = params["periods"]
        if period >= periods:
            raise SignatureError("forward-secure key is exhausted (all periods used)")
        p, q, g = params["p"], params["q"], params["g"]
        context = _context_for(params, period)
        if context is not None:
            # Online fast path: the Merkle proof and per-period key material
            # were precomputed; stage the *next* period off-path so key
            # evolution never pays the tree walk online either.
            _schedule_precompute(params, period + 1)
            x, y, path = context["x"], context["y"], context["path"]
        else:
            secrets = json.loads(params["secrets"])
            publics = json.loads(params["publics"])
            x = secrets[period]
            y = publics[period]
            tree = MerkleTree(_leaf_bytes(i, publics[i]) for i in range(periods))
            path = [[sib.hex(), bool(left)] for sib, left in tree.proof(period).path]
        if x is None:
            raise SignatureError(f"secret for period {period} has been erased")
        dsa_private = PrivateKey(
            scheme="dsa",
            params={"p": p, "q": q, "g": g, "y": y, "x": x},
            key_id=private_key.key_id,
        )
        inner = self._dsa.sign_digest(dsa_private, digest)
        envelope = {
            "period": period,
            "y": y,
            "inner": inner.hex(),
            "path": path,
        }
        return json.dumps(envelope, sort_keys=True).encode("ascii")

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        try:
            envelope = json.loads(signature.decode("ascii"))
            period = int(envelope["period"])
            y = int(envelope["y"])
            inner = bytes.fromhex(envelope["inner"])
            path = [(bytes.fromhex(sib), bool(left)) for sib, left in envelope["path"]]
        except (ValueError, KeyError, TypeError):
            return False
        params = public_key.params
        if period < 0 or period >= params["periods"]:
            return False
        # Verify the Merkle inclusion of (period, y) under the certified root.
        current = secure_hash(_leaf_bytes(period, y))
        for sibling, sibling_is_left in path:
            if sibling_is_left:
                current = combine_digests(sibling, current)
            else:
                current = combine_digests(current, sibling)
        if current != params["root"]:
            return False
        dsa_public = PublicKey(
            scheme="dsa",
            params={"p": params["p"], "q": params["q"], "g": params["g"], "y": y},
        )
        return self._dsa.verify_digest(dsa_public, digest, inner)


def current_period(private_key: PrivateKey) -> int:
    """Return the period the key will sign under next."""
    return private_key.params["current_period"]


def evolve_key(private_key: PrivateKey) -> PrivateKey:
    """Advance to the next period, erasing the current period's secret.

    Returns a new :class:`PrivateKey`; the caller should discard the old one.
    Signatures made in earlier periods remain verifiable; the evolved key can
    no longer produce them, which is the forward-security property.

    With period precompute enabled the evolved-away period's cached signing
    context (which holds its secret) is evicted immediately, and the new
    period's context is staged on the shared executor so the first signature
    of the period stays on the online fast path.
    """
    if private_key.scheme != ForwardSecureScheme.name:
        raise SignatureError("evolve_key requires a forward-secure private key")
    params: Dict[str, Any] = dict(private_key.params)
    period = params["current_period"]
    secrets = json.loads(params["secrets"])
    if period < len(secrets):
        secrets[period] = None
    params["secrets"] = json.dumps(secrets)
    params["current_period"] = period + 1
    evolved = PrivateKey(
        scheme=private_key.scheme, params=params, key_id=private_key.key_id
    )
    if period_precompute_enabled():
        _evict_context(params["root"], period)
        _schedule_precompute(params, period + 1)
    return evolved
