"""Forward-secure signature scheme.

The paper's infrastructure requirements (Section 3.5) note that
"forward-secure signature schemes have been proposed that obviate the need
for a third party signature on time-stamps" [Zhou, Bao, Deng 2003]: if the
signing key evolves over time and old keys are destroyed, a later key
compromise cannot be used to forge evidence dated in an earlier period.

This module implements the generic tree/certification construction:

* key generation creates ``periods`` per-period DSA key pairs (cheap, since
  the expensive domain parameters are shared and cached);
* the long-term public key is the Merkle-tree root over the per-period public
  values, so a single short value certifies every period;
* a signature for period *i* carries the DSA signature, the period's public
  value and a Merkle inclusion proof linking it to the root;
* :func:`evolve_key` advances the private key to the next period and
  *deletes* the current period's secret, which is what provides forward
  security.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.crypto.dsa import DSAScheme, generate_domain_parameters
from repro.crypto.hashing import MerkleTree, combine_digests, secure_hash
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.modexp import mod_exp
from repro.crypto.rng import SecureRandom, default_rng
from repro.errors import SignatureError
from repro.crypto.signature import SignatureScheme

DEFAULT_PERIODS = 16


def _leaf_bytes(period: int, y: int) -> bytes:
    """Canonical leaf encoding binding a period index to its public value."""
    return f"{period}:{y}".encode("ascii")


class ForwardSecureScheme(SignatureScheme):
    """Merkle-certified per-period DSA keys with key evolution."""

    name = "forward-secure"

    def __init__(self) -> None:
        self._dsa = DSAScheme()

    def generate_keypair(
        self,
        periods: int = DEFAULT_PERIODS,
        p_bits: int = 512,
        q_bits: int = 160,
        rng: Optional[SecureRandom] = None,
        **options: Any,
    ) -> KeyPair:
        if periods < 1:
            raise SignatureError("forward-secure key needs at least one period")
        rng = rng or default_rng()
        p, q, g = generate_domain_parameters(p_bits, q_bits, rng=rng)
        secrets: List[int] = []
        publics: List[int] = []
        tree = MerkleTree()
        for period in range(periods):
            x = rng.random_int_range(1, q)
            y = mod_exp(g, x, p)
            secrets.append(x)
            publics.append(y)
            tree.add(_leaf_bytes(period, y))
        root = tree.root
        public = PublicKey(
            scheme=self.name,
            params={
                "p": p,
                "q": q,
                "g": g,
                "root": root,
                "periods": periods,
            },
        )
        private = PrivateKey(
            scheme=self.name,
            params={
                "p": p,
                "q": q,
                "g": g,
                "root": root,
                "periods": periods,
                "current_period": 0,
                "secrets": json.dumps(secrets),
                "publics": json.dumps(publics),
            },
            key_id=public.key_id,
        )
        return KeyPair(private=private, public=public)

    # -- signing -------------------------------------------------------------

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        params = private_key.params
        period = params["current_period"]
        periods = params["periods"]
        secrets = json.loads(params["secrets"])
        publics = json.loads(params["publics"])
        if period >= periods:
            raise SignatureError("forward-secure key is exhausted (all periods used)")
        x = secrets[period]
        if x is None:
            raise SignatureError(f"secret for period {period} has been erased")
        y = publics[period]
        p, q, g = params["p"], params["q"], params["g"]
        dsa_private = PrivateKey(
            scheme="dsa",
            params={"p": p, "q": q, "g": g, "y": y, "x": x},
            key_id=private_key.key_id,
        )
        inner = self._dsa.sign_digest(dsa_private, digest)
        tree = MerkleTree(_leaf_bytes(i, publics[i]) for i in range(periods))
        proof = tree.proof(period)
        envelope = {
            "period": period,
            "y": y,
            "inner": inner.hex(),
            "path": [[sib.hex(), bool(left)] for sib, left in proof.path],
        }
        return json.dumps(envelope, sort_keys=True).encode("ascii")

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        try:
            envelope = json.loads(signature.decode("ascii"))
            period = int(envelope["period"])
            y = int(envelope["y"])
            inner = bytes.fromhex(envelope["inner"])
            path = [(bytes.fromhex(sib), bool(left)) for sib, left in envelope["path"]]
        except (ValueError, KeyError, TypeError):
            return False
        params = public_key.params
        if period < 0 or period >= params["periods"]:
            return False
        # Verify the Merkle inclusion of (period, y) under the certified root.
        current = secure_hash(_leaf_bytes(period, y))
        for sibling, sibling_is_left in path:
            if sibling_is_left:
                current = combine_digests(sibling, current)
            else:
                current = combine_digests(current, sibling)
        if current != params["root"]:
            return False
        dsa_public = PublicKey(
            scheme="dsa",
            params={"p": params["p"], "q": params["q"], "g": params["g"], "y": y},
        )
        return self._dsa.verify_digest(dsa_public, digest, inner)


def current_period(private_key: PrivateKey) -> int:
    """Return the period the key will sign under next."""
    return private_key.params["current_period"]


def evolve_key(private_key: PrivateKey) -> PrivateKey:
    """Advance to the next period, erasing the current period's secret.

    Returns a new :class:`PrivateKey`; the caller should discard the old one.
    Signatures made in earlier periods remain verifiable; the evolved key can
    no longer produce them, which is the forward-security property.
    """
    if private_key.scheme != ForwardSecureScheme.name:
        raise SignatureError("evolve_key requires a forward-secure private key")
    params: Dict[str, Any] = dict(private_key.params)
    period = params["current_period"]
    secrets = json.loads(params["secrets"])
    if period < len(secrets):
        secrets[period] = None
    params["secrets"] = json.dumps(secrets)
    params["current_period"] = period + 1
    return PrivateKey(scheme=private_key.scheme, params=params, key_id=private_key.key_id)
