"""Signature scheme abstraction and registry.

The trusted-interceptor assumptions (Section 3.1) require signatures that are
"verifiable and unforgeable".  The middleware does not prescribe a scheme, so
this module defines a small abstraction -- :class:`SignatureScheme` -- under
which RSA, DSA, HMAC and forward-secure schemes are registered.  Evidence
tokens carry the scheme name and the signing key id so verification can be
performed by any party holding the corresponding public key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.crypto.hashing import secure_hash
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.errors import SignatureError
from repro.observability.runtime import STATE as _OBS


@dataclass(frozen=True)
class Signature:
    """A detached signature over a message digest.

    Attributes:
        scheme: name of the signature scheme used.
        key_id: identifier of the signing key.
        value: the raw signature bytes.
        digest: the message digest that was signed (kept so evidence can be
            audited without re-hashing large payloads).
    """

    scheme: str
    key_id: str
    value: bytes
    digest: bytes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "key_id": self.key_id,
            "value": self.value.hex(),
            "digest": self.digest.hex(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Signature":
        return cls(
            scheme=payload["scheme"],
            key_id=payload["key_id"],
            value=bytes.fromhex(payload["value"]),
            digest=bytes.fromhex(payload["digest"]),
        )


class SignatureScheme:
    """Interface implemented by every signature scheme."""

    #: registry name of the scheme (e.g. ``"rsa"``)
    name: str = ""

    def generate_keypair(self, **options: Any) -> KeyPair:
        """Generate a fresh key pair for this scheme."""
        raise NotImplementedError

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        """Sign a message digest and return the raw signature bytes."""
        raise NotImplementedError

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        """Return ``True`` if ``signature`` is a valid signature on ``digest``."""
        raise NotImplementedError

    # Convenience message-level helpers -------------------------------------

    def sign(self, private_key: PrivateKey, message: bytes) -> Signature:
        """Hash ``message`` and sign the digest."""
        if private_key.scheme != self.name:
            raise SignatureError(
                f"key scheme {private_key.scheme!r} does not match {self.name!r}"
            )
        digest = secure_hash(message)
        value = self.sign_digest(private_key, digest)
        return Signature(
            scheme=self.name, key_id=private_key.key_id, value=value, digest=digest
        )

    def verify(
        self, public_key: PublicKey, message: bytes, signature: Signature
    ) -> bool:
        """Verify a :class:`Signature` object against ``message``.

        Results are memoised process-wide: re-verifying a token that was
        redistributed (e.g. ``NR_DECISION`` evidence forwarded with an
        outcome) costs one cache lookup instead of a modular exponentiation.
        The memo key binds (scheme, key-material fingerprint, digest,
        signature bytes), so a different key -- even re-pinned under the same
        party name or carrying a spoofed ``key_id`` -- or any tampering with
        digest or signature bytes misses the cache.
        """
        if signature.scheme != self.name:
            return False
        if public_key.scheme != self.name:
            return False
        if public_key.key_id != signature.key_id:
            return False
        digest = secure_hash(message)
        if digest != signature.digest:
            return False
        # Key on the recomputed material fingerprint, not the declared
        # key_id: deserialised keys carry whatever key_id the payload
        # claimed, and a memo entry poisoned through a spoofed id would
        # otherwise make forged signatures verify as the victim's.
        key = (self.name, public_key.material_fingerprint(), digest, signature.value)
        cached = _VERIFICATION_CACHE.get(key)
        if cached is None:
            cached = self.verify_digest(public_key, digest, signature.value)
            _VERIFICATION_CACHE.put(key, cached)
        return cached


class _VerificationCache:
    """Bounded LRU memo of signature-verification verdicts.

    Every scheme's ``verify_digest`` is a deterministic function of
    (public key, digest, signature bytes), so both positive and negative
    verdicts are safe to cache for the lifetime of the process.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple, bool]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[bool]:
        with self._lock:
            verdict = self._entries.get(key)
            if verdict is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return verdict

    def put(self, key: Tuple, verdict: bool) -> None:
        with self._lock:
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


_VERIFICATION_CACHE = _VerificationCache()


def clear_verification_cache() -> None:
    """Drop all memoised verification verdicts (mainly for tests)."""
    _VERIFICATION_CACHE.clear()


def verification_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the process-wide verification memo."""
    return _VERIFICATION_CACHE.stats()


_REGISTRY: Dict[str, SignatureScheme] = {}


def register_scheme(scheme: SignatureScheme, replace: bool = False) -> None:
    """Register a scheme instance under its :attr:`SignatureScheme.name`."""
    if not scheme.name:
        raise SignatureError("signature scheme has no name")
    if scheme.name in _REGISTRY and not replace:
        raise SignatureError(f"scheme {scheme.name!r} already registered")
    _REGISTRY[scheme.name] = scheme


def get_scheme(name: str) -> SignatureScheme:
    """Look up a registered scheme, loading the built-ins lazily."""
    _ensure_builtin_schemes()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SignatureError(f"unknown signature scheme {name!r}") from None


def available_schemes() -> Dict[str, SignatureScheme]:
    """Return a copy of the registry (name -> scheme instance)."""
    _ensure_builtin_schemes()
    return dict(_REGISTRY)


def _ensure_builtin_schemes() -> None:
    if _REGISTRY:
        return
    # Imported lazily to avoid circular imports at package load time.
    from repro.crypto.rsa import RSAScheme
    from repro.crypto.dsa import DSAScheme
    from repro.crypto.hmac_scheme import HMACScheme
    from repro.crypto.forward_secure import ForwardSecureScheme

    for scheme in (RSAScheme(), DSAScheme(), HMACScheme(), ForwardSecureScheme()):
        if scheme.name not in _REGISTRY:
            _REGISTRY[scheme.name] = scheme


class Signer:
    """Binds a private key to its scheme for convenient signing."""

    def __init__(self, private_key: PrivateKey) -> None:
        self._private_key = private_key
        self._scheme = get_scheme(private_key.scheme)

    @property
    def key_id(self) -> str:
        return self._private_key.key_id

    @property
    def scheme_name(self) -> str:
        return self._private_key.scheme

    def sign(self, message: bytes) -> Signature:
        """Sign ``message`` (hash-then-sign)."""
        observe = _OBS.observe_sign
        if observe is None:
            return self._scheme.sign(self._private_key, message)
        started = perf_counter()
        signature = self._scheme.sign(self._private_key, message)
        observe(perf_counter() - started)
        return signature


class Verifier:
    """Binds a public key to its scheme for convenient verification."""

    def __init__(self, public_key: PublicKey) -> None:
        self._public_key = public_key
        self._scheme = get_scheme(public_key.scheme)

    @property
    def key_id(self) -> str:
        return self._public_key.key_id

    @property
    def public_key(self) -> PublicKey:
        return self._public_key

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Return ``True`` if ``signature`` is valid for ``message``."""
        observe = _OBS.observe_verify
        if observe is None:
            return self._scheme.verify(self._public_key, message, signature)
        started = perf_counter()
        valid = self._scheme.verify(self._public_key, message, signature)
        observe(perf_counter() - started)
        return valid


def generate_keypair(scheme: str = "rsa", **options: Any) -> KeyPair:
    """Generate a key pair using the named scheme (default RSA)."""
    return get_scheme(scheme).generate_keypair(**options)


def sign_message(private_key: PrivateKey, message: bytes) -> Signature:
    """Module-level helper: sign ``message`` with ``private_key``."""
    return get_scheme(private_key.scheme).sign(private_key, message)


def verify_message(
    public_key: PublicKey, message: bytes, signature: Optional[Signature]
) -> bool:
    """Module-level helper: verify ``signature`` over ``message``."""
    if signature is None:
        return False
    return get_scheme(public_key.scheme).verify(public_key, message, signature)
