"""Secure hashing utilities: digests, hash chains and Merkle trees.

The non-repudiation tokens of the paper are "a signature on a secure hash of
the evidence generated" (Section 3.2).  The audit log additionally chains
entry digests so that tampering with stored evidence is detectable
(Section 3.5, persistence requirements).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

BytesLike = Union[bytes, bytearray, memoryview, str]

DEFAULT_ALGORITHM = "sha256"


def _to_bytes(data: BytesLike) -> bytes:
    """Normalise str/bytes-like input to ``bytes`` (UTF-8 for text)."""
    if isinstance(data, str):
        return data.encode("utf-8")
    return bytes(data)


def secure_hash(data: BytesLike, algorithm: str = DEFAULT_ALGORITHM) -> bytes:
    """Return the digest of ``data`` under ``algorithm`` (default SHA-256)."""
    hasher = hashlib.new(algorithm)
    hasher.update(_to_bytes(data))
    return hasher.digest()


def secure_hash_hex(data: BytesLike, algorithm: str = DEFAULT_ALGORITHM) -> str:
    """Return the hexadecimal digest of ``data``."""
    return secure_hash(data, algorithm).hex()


def combine_digests(*digests: BytesLike, algorithm: str = DEFAULT_ALGORITHM) -> bytes:
    """Hash the concatenation of several digests into one.

    Each input is length-prefixed before concatenation so that distinct
    sequences of inputs cannot collide by re-partitioning the byte stream.
    """
    hasher = hashlib.new(algorithm)
    for digest in digests:
        raw = _to_bytes(digest)
        hasher.update(len(raw).to_bytes(8, "big"))
        hasher.update(raw)
    return hasher.digest()


@dataclass
class HashChainEntry:
    """One link in a hash chain: the entry digest and the cumulative digest."""

    index: int
    entry_digest: bytes
    chain_digest: bytes


class HashChain:
    """An append-only hash chain.

    Each appended item produces a cumulative digest
    ``H(previous_chain_digest || H(item))``.  Any modification, insertion or
    deletion of an earlier item changes every subsequent chain digest, which
    is what the audit log relies on for tamper evidence.
    """

    GENESIS = b"\x00" * 32

    def __init__(self, algorithm: str = DEFAULT_ALGORITHM) -> None:
        self._algorithm = algorithm
        self._entries: List[HashChainEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Sequence[HashChainEntry]:
        return tuple(self._entries)

    @property
    def head(self) -> bytes:
        """The latest cumulative digest (``GENESIS`` if the chain is empty)."""
        if not self._entries:
            return self.GENESIS
        return self._entries[-1].chain_digest

    def append(self, item: BytesLike) -> HashChainEntry:
        """Append ``item`` and return its link."""
        entry_digest = secure_hash(item, self._algorithm)
        chain_digest = combine_digests(
            self.head, entry_digest, algorithm=self._algorithm
        )
        entry = HashChainEntry(
            index=len(self._entries),
            entry_digest=entry_digest,
            chain_digest=chain_digest,
        )
        self._entries.append(entry)
        return entry

    def verify(self, items: Iterable[BytesLike]) -> bool:
        """Re-derive the chain from ``items`` and compare against stored links.

        Returns ``True`` only if the number of items matches and every
        per-entry and cumulative digest matches what was recorded at append
        time.
        """
        expected_head = self.GENESIS
        count = 0
        for index, item in enumerate(items):
            if index >= len(self._entries):
                return False
            entry = self._entries[index]
            entry_digest = secure_hash(item, self._algorithm)
            expected_head = combine_digests(
                expected_head, entry_digest, algorithm=self._algorithm
            )
            if entry.entry_digest != entry_digest:
                return False
            if entry.chain_digest != expected_head:
                return False
            count += 1
        return count == len(self._entries)


@dataclass
class MerkleProof:
    """Inclusion proof for a Merkle tree leaf.

    ``path`` lists sibling digests from the leaf up to the root, each paired
    with a flag indicating whether the sibling is on the left.
    """

    leaf_index: int
    leaf_digest: bytes
    path: List[tuple] = field(default_factory=list)

    def verify(self, root: bytes, algorithm: str = DEFAULT_ALGORITHM) -> bool:
        """Return ``True`` if this proof links ``leaf_digest`` to ``root``."""
        current = self.leaf_digest
        for sibling, sibling_is_left in self.path:
            if sibling_is_left:
                current = combine_digests(sibling, current, algorithm=algorithm)
            else:
                current = combine_digests(current, sibling, algorithm=algorithm)
        return current == root


class MerkleTree:
    """A Merkle tree over a list of items.

    Used to produce compact commitments to collections of evidence (for
    example, all evidence belonging to one protocol run) and inclusion proofs
    for individual items.
    """

    def __init__(
        self, items: Optional[Iterable[BytesLike]] = None, algorithm: str = DEFAULT_ALGORITHM
    ) -> None:
        self._algorithm = algorithm
        self._leaves: List[bytes] = []
        self._levels: List[List[bytes]] = []
        self._dirty = True
        if items is not None:
            for item in items:
                self.add(item)

    def __len__(self) -> int:
        return len(self._leaves)

    def add(self, item: BytesLike) -> int:
        """Add an item, returning its leaf index."""
        self._leaves.append(secure_hash(item, self._algorithm))
        self._dirty = True
        return len(self._leaves) - 1

    def _build(self) -> None:
        if not self._dirty:
            return
        if not self._leaves:
            self._levels = [[secure_hash(b"", self._algorithm)]]
            self._dirty = False
            return
        levels = [list(self._leaves)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            nxt: List[bytes] = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else current[i]
                nxt.append(combine_digests(left, right, algorithm=self._algorithm))
            levels.append(nxt)
        self._levels = levels
        self._dirty = False

    @property
    def root(self) -> bytes:
        """The tree root (a digest of the empty string for an empty tree)."""
        self._build()
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Return an inclusion proof for the leaf at ``index``."""
        if index < 0 or index >= len(self._leaves):
            raise IndexError(f"no leaf at index {index}")
        self._build()
        path: List[tuple] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_left = False
            else:
                sibling_index = position - 1
                sibling_is_left = True
            if sibling_index >= len(level):
                sibling_index = position
            path.append((level[sibling_index], sibling_is_left))
            position //= 2
        return MerkleProof(
            leaf_index=index, leaf_digest=self._leaves[index], path=path
        )
