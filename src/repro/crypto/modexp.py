"""Hardware-speed modular exponentiation.

Every signature scheme in this package bottoms out in ``base ** exp % mod``
over multi-hundred-bit integers.  CPython's built-in ``pow`` implements this
portably but roughly an order of magnitude slower than OpenSSL's
Montgomery-multiplication path.  Python itself links against libcrypto, so
when that shared library is loadable this module routes :func:`mod_exp`
through ``BN_mod_exp`` via :mod:`ctypes`; otherwise it falls back to the
built-in ``pow`` with identical results.

The OpenSSL path is self-checked against ``pow`` on a few vectors at import
time and disabled (falling back silently) on any disagreement or loading
failure, so correctness never depends on the accelerator.
"""

from __future__ import annotations

import ctypes
import ctypes.util
from typing import Callable, Optional

__all__ = ["mod_exp", "backend_name"]


def _python_mod_exp(base: int, exponent: int, modulus: int) -> int:
    return pow(base, exponent, modulus)


def _load_openssl() -> Optional[Callable[[int, int, int], int]]:
    """Bind ``BN_mod_exp`` from libcrypto, or return ``None``."""
    library_name = ctypes.util.find_library("crypto")
    if library_name is None:
        return None
    try:
        lib = ctypes.CDLL(library_name)
        prototypes = [
            ("BN_new", ctypes.c_void_p, []),
            ("BN_free", None, [ctypes.c_void_p]),
            ("BN_CTX_new", ctypes.c_void_p, []),
            ("BN_CTX_free", None, [ctypes.c_void_p]),
            ("BN_bin2bn", ctypes.c_void_p, [ctypes.c_char_p, ctypes.c_int, ctypes.c_void_p]),
            ("BN_bn2bin", ctypes.c_int, [ctypes.c_void_p, ctypes.c_char_p]),
            ("BN_num_bits", ctypes.c_int, [ctypes.c_void_p]),
            ("BN_mod_exp", ctypes.c_int, [ctypes.c_void_p] * 5),
        ]
        for name, restype, argtypes in prototypes:
            function = getattr(lib, name)
            function.restype = restype
            function.argtypes = argtypes
    except (OSError, AttributeError):
        return None

    bn_new = lib.BN_new
    bn_free = lib.BN_free
    bn_ctx_new = lib.BN_CTX_new
    bn_ctx_free = lib.BN_CTX_free
    bn_bin2bn = lib.BN_bin2bn
    bn_bn2bin = lib.BN_bn2bin
    bn_num_bits = lib.BN_num_bits
    bn_mod_exp = lib.BN_mod_exp

    def openssl_mod_exp(base: int, exponent: int, modulus: int) -> int:
        if exponent < 0 or modulus <= 0 or base < 0:
            # Rare edge shapes (modular inverses, zero moduli errors) keep
            # the built-in semantics exactly.
            return pow(base, exponent, modulus)
        base_bytes = base.to_bytes((base.bit_length() + 7) // 8 or 1, "big")
        exp_bytes = exponent.to_bytes((exponent.bit_length() + 7) // 8 or 1, "big")
        mod_bytes = modulus.to_bytes((modulus.bit_length() + 7) // 8 or 1, "big")
        ctx = bn_ctx_new()
        result = bn_new()
        bn_base = bn_bin2bn(base_bytes, len(base_bytes), None)
        bn_exp = bn_bin2bn(exp_bytes, len(exp_bytes), None)
        bn_mod = bn_bin2bn(mod_bytes, len(mod_bytes), None)
        try:
            if ctx is None or result is None or None in (bn_base, bn_exp, bn_mod):
                return pow(base, exponent, modulus)
            if bn_mod_exp(result, bn_base, bn_exp, bn_mod, ctx) != 1:
                return pow(base, exponent, modulus)
            length = (bn_num_bits(result) + 7) // 8
            if length == 0:
                return 0
            buffer = ctypes.create_string_buffer(length)
            written = bn_bn2bin(result, buffer)
            return int.from_bytes(buffer.raw[:written], "big")
        finally:
            for bn in (result, bn_base, bn_exp, bn_mod):
                if bn is not None:
                    bn_free(bn)
            if ctx is not None:
                bn_ctx_free(ctx)

    # Import-time self-check: any disagreement disables the accelerator.
    try:
        vectors = [
            (0, 1, 7),
            (5, 0, 9),
            (2, 10, 1),
            (1234567, 891011, 2**61 - 1),
            (3**50, 2**127 + 9, (2**89 - 1) * 97),
        ]
        for b, e, m in vectors:
            if openssl_mod_exp(b, e, m) != pow(b, e, m):
                return None
    except Exception:
        return None
    return openssl_mod_exp


_OPENSSL_MOD_EXP = _load_openssl()

#: ``mod_exp(base, exponent, modulus)`` -- drop-in for the three-argument
#: ``pow`` on non-negative operands, using OpenSSL when available.
mod_exp: Callable[[int, int, int], int] = _OPENSSL_MOD_EXP or _python_mod_exp


def backend_name() -> str:
    """Which implementation backs :func:`mod_exp` (``openssl`` or ``python``)."""
    return "openssl" if _OPENSSL_MOD_EXP is not None else "python"
