"""Primality testing and prime generation.

Implements deterministic trial division for small candidates and the
Miller-Rabin probabilistic primality test for large candidates, plus helpers
to generate random primes and safe primes of a requested bit length.  Used by
the RSA and DSA key generators.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.modexp import mod_exp
from repro.crypto.rng import SecureRandom, default_rng

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409,
    419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499,
]


def is_probable_prime(candidate: int, rounds: int = 32, rng: Optional[SecureRandom] = None) -> bool:
    """Return ``True`` if ``candidate`` is probably prime.

    Uses trial division by small primes followed by ``rounds`` iterations of
    Miller-Rabin with random bases.  The error probability is at most
    ``4**-rounds``.
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    rng = rng or default_rng()
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        base = rng.random_int_range(2, candidate - 1)
        x = mod_exp(base, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[SecureRandom] = None) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    rng = rng or default_rng()
    while True:
        candidate = rng.random_odd_int(bits)
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_prime_congruent(
    bits: int, modulus: int, residue: int, rng: Optional[SecureRandom] = None
) -> int:
    """Generate a ``bits``-bit prime ``p`` with ``p % modulus == residue``.

    Used by DSA parameter generation to find ``p`` such that ``q`` divides
    ``p - 1``.
    """
    rng = rng or default_rng()
    while True:
        candidate = rng.random_odd_int(bits)
        candidate += (residue - candidate) % modulus
        if candidate.bit_length() != bits or candidate % 2 == 0:
            continue
        if is_probable_prime(candidate, rng=rng):
            return candidate


def modular_inverse(value: int, modulus: int) -> int:
    """Return the inverse of ``value`` modulo ``modulus``.

    Raises :class:`ValueError` when the inverse does not exist.
    """
    try:
        return pow(value, -1, modulus)
    except ValueError:
        raise ValueError(f"{value} has no inverse modulo {modulus}") from None
