"""Time-stamping service.

Section 3.5: "non-repudiation evidence should be time-stamped for logging and
to support the assertion that the signature used to sign evidence was not
compromised at time of use".  The :class:`TimestampAuthority` is the classic
third-party time-stamping service; for the TTP-free alternative the library
also offers forward-secure signing (:mod:`repro.crypto.forward_secure`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.clock import Clock, SystemClock
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.rng import new_unique_id
from repro.crypto.signature import Signature, Signer, get_scheme
from repro.errors import TimestampError


@dataclass(frozen=True)
class TimestampToken:
    """A signed assertion that a digest existed at a given time."""

    token_id: str
    authority: str
    digest: bytes
    timestamp: float
    signature: Signature

    def body_bytes(self) -> bytes:
        body = {
            "token_id": self.token_id,
            "authority": self.authority,
            "digest": self.digest.hex(),
            "timestamp": self.timestamp,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "token_id": self.token_id,
            "authority": self.authority,
            "digest": self.digest.hex(),
            "timestamp": self.timestamp,
            "signature": self.signature.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimestampToken":
        return cls(
            token_id=payload["token_id"],
            authority=payload["authority"],
            digest=bytes.fromhex(payload["digest"]),
            timestamp=payload["timestamp"],
            signature=Signature.from_dict(payload["signature"]),
        )


class TimestampAuthority:
    """Issues and verifies :class:`TimestampToken` objects."""

    def __init__(
        self,
        name: str = "urn:repro:tsa",
        keypair: Optional[KeyPair] = None,
        scheme: str = "rsa",
        clock: Optional[Clock] = None,
    ) -> None:
        self.name = name
        self._clock = clock or SystemClock()
        self._keypair = keypair or get_scheme(scheme).generate_keypair()
        self._signer = Signer(self._keypair.private)
        self._issued: Dict[str, TimestampToken] = {}

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def issue(self, digest: bytes) -> TimestampToken:
        """Issue a timestamp token over ``digest`` at the current time."""
        if not digest:
            raise TimestampError("cannot timestamp an empty digest")
        unsigned = TimestampToken(
            token_id=new_unique_id("tst"),
            authority=self.name,
            digest=digest,
            timestamp=self._clock.now(),
            signature=None,  # type: ignore[arg-type]
        )
        signature = self._signer.sign(unsigned.body_bytes())
        token = TimestampToken(
            token_id=unsigned.token_id,
            authority=unsigned.authority,
            digest=unsigned.digest,
            timestamp=unsigned.timestamp,
            signature=signature,
        )
        self._issued[token.token_id] = token
        return token

    def verify(self, token: TimestampToken, digest: Optional[bytes] = None) -> bool:
        """Verify a token's signature (and optionally that it covers ``digest``)."""
        if token.authority != self.name:
            return False
        if digest is not None and token.digest != digest:
            return False
        scheme = get_scheme(self._keypair.public.scheme)
        return scheme.verify(self._keypair.public, token.body_bytes(), token.signature)


def verify_timestamp(token: TimestampToken, authority_key: PublicKey) -> bool:
    """Verify a timestamp token given the authority's public key.

    This is the verification path available to parties that hold only the
    authority's certificate, not a reference to the authority itself.
    """
    if token.signature is None:
        return False
    scheme = get_scheme(authority_key.scheme)
    return scheme.verify(authority_key, token.body_bytes(), token.signature)
