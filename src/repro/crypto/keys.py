"""Key material objects shared by all signature schemes.

Keys are simple immutable value objects carrying the scheme name, the key
parameters (a mapping of named integers / byte strings) and an identifier
derived from a digest of the public parameters, so that evidence can refer to
the signing key unambiguously.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from repro.crypto.hashing import secure_hash_hex
from repro.errors import KeyError_


def _canonical_params(params: Mapping[str, Any]) -> str:
    """Serialise key parameters canonically (sorted keys, ints as decimal)."""
    encodable: Dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, bytes):
            encodable[name] = {"__bytes__": value.hex()}
        elif isinstance(value, int):
            encodable[name] = value
        elif isinstance(value, str):
            encodable[name] = value
        else:
            raise KeyError_(f"unsupported key parameter type for {name!r}: {type(value)}")
    return json.dumps(encodable, sort_keys=True, separators=(",", ":"))


def _decode_params(payload: Mapping[str, Any]) -> Dict[str, Any]:
    decoded: Dict[str, Any] = {}
    for name, value in payload.items():
        if isinstance(value, dict) and "__bytes__" in value:
            decoded[name] = bytes.fromhex(value["__bytes__"])
        else:
            decoded[name] = value
    return decoded


@dataclass(frozen=True)
class PublicKey:
    """Public half of a key pair."""

    scheme: str
    params: Mapping[str, Any]
    key_id: str = field(default="")

    def __post_init__(self) -> None:
        fingerprint = secure_hash_hex(
            self.scheme + ":" + _canonical_params(self.params)
        )[:32]
        self.__dict__["_material_fingerprint"] = fingerprint
        if not self.key_id:
            object.__setattr__(self, "key_id", fingerprint)

    def material_fingerprint(self) -> str:
        """Digest of the actual key material (scheme + parameters).

        Unlike :attr:`key_id` -- which deserialisation accepts verbatim from
        the payload -- this is always recomputed from the parameters, so it
        cannot be spoofed by declaring someone else's identifier.  Security
        decisions that are cached across calls (e.g. the signature
        verification memo) must key on this, never on ``key_id``.
        """
        return self.__dict__["_material_fingerprint"]

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "scheme": self.scheme,
            "key_id": self.key_id,
            "params": json.loads(_canonical_params(self.params)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PublicKey":
        return cls(
            scheme=payload["scheme"],
            params=_decode_params(payload["params"]),
            key_id=payload.get("key_id", ""),
        )

    def fingerprint(self) -> str:
        """Return the key identifier (digest of scheme + parameters)."""
        return self.key_id


@dataclass(frozen=True)
class PrivateKey:
    """Private half of a key pair.

    The private key carries the same ``key_id`` as its public counterpart so
    signatures can be matched to verification keys.
    """

    scheme: str
    params: Mapping[str, Any]
    key_id: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "key_id": self.key_id,
            "params": json.loads(_canonical_params(self.params)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PrivateKey":
        return cls(
            scheme=payload["scheme"],
            params=_decode_params(payload["params"]),
            key_id=payload["key_id"],
        )


@dataclass(frozen=True)
class KeyPair:
    """A matched private/public key pair for one scheme."""

    private: PrivateKey
    public: PublicKey

    def __post_init__(self) -> None:
        if self.private.scheme != self.public.scheme:
            raise KeyError_("key pair halves use different schemes")
        if self.private.key_id != self.public.key_id:
            raise KeyError_("key pair halves have mismatched key ids")

    @property
    def scheme(self) -> str:
        return self.public.scheme

    @property
    def key_id(self) -> str:
        return self.public.key_id
