"""Credential (certificate) management.

Section 3.5 requires "a service to support signature verification that stores
certificates and certificate revocation information, and can be used to
verify certificate chains."  This module provides:

* :class:`Certificate` -- an X.509-like binding of a subject name (URI) to a
  public key, signed by an issuer;
* :class:`CertificateAuthority` -- issues and revokes certificates and
  publishes a :class:`RevocationList`;
* :class:`CertificateStore` -- the verification service used by trusted
  interceptors: stores certificates and revocation information, verifies
  chains up to trusted roots and resolves key ids and subjects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from repro.clock import Clock, SystemClock
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.rng import new_unique_id
from repro.crypto.signature import Signature, Signer, get_scheme
from repro.errors import CertificateError

#: Default certificate lifetime (one year) in seconds.
DEFAULT_VALIDITY_SECONDS = 365 * 24 * 3600


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject to a public key.

    Attributes:
        serial: unique certificate serial number.
        subject: subject name, normally the organisation's URI.
        issuer: issuer name (equal to ``subject`` for self-signed roots).
        public_key: the certified public key.
        not_before / not_after: validity window (seconds since epoch).
        extensions: free-form attributes (roles, constraints...).
        signature: issuer's signature over the canonical certificate body.
    """

    serial: str
    subject: str
    issuer: str
    public_key: PublicKey
    not_before: float
    not_after: float
    extensions: Mapping[str, Any] = field(default_factory=dict)
    signature: Optional[Signature] = None

    def body_bytes(self) -> bytes:
        """Canonical byte encoding of the signed portion of the certificate."""
        body = {
            "serial": self.serial,
            "subject": self.subject,
            "issuer": self.issuer,
            "public_key": self.public_key.to_dict(),
            "not_before": self.not_before,
            "not_after": self.not_after,
            "extensions": dict(self.extensions),
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def is_valid_at(self, timestamp: float) -> bool:
        """Return ``True`` if ``timestamp`` is within the validity window."""
        return self.not_before <= timestamp <= self.not_after

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "serial": self.serial,
            "subject": self.subject,
            "issuer": self.issuer,
            "public_key": self.public_key.to_dict(),
            "not_before": self.not_before,
            "not_after": self.not_after,
            "extensions": dict(self.extensions),
        }
        if self.signature is not None:
            payload["signature"] = self.signature.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Certificate":
        signature = payload.get("signature")
        return cls(
            serial=payload["serial"],
            subject=payload["subject"],
            issuer=payload["issuer"],
            public_key=PublicKey.from_dict(payload["public_key"]),
            not_before=payload["not_before"],
            not_after=payload["not_after"],
            extensions=dict(payload.get("extensions", {})),
            signature=Signature.from_dict(signature) if signature else None,
        )


@dataclass
class RevocationList:
    """Certificate revocation information published by a CA."""

    issuer: str
    revoked_serials: Set[str] = field(default_factory=set)
    issued_at: float = 0.0

    def is_revoked(self, serial: str) -> bool:
        return serial in self.revoked_serials


class CertificateAuthority:
    """Issues, signs and revokes certificates.

    A CA has its own key pair and a self-signed root certificate.  Subordinate
    CAs can be created by issuing a CA certificate to another authority's
    public key, which produces verifiable chains.
    """

    def __init__(
        self,
        name: str,
        keypair: Optional[KeyPair] = None,
        scheme: str = "rsa",
        clock: Optional[Clock] = None,
        validity_seconds: float = DEFAULT_VALIDITY_SECONDS,
    ) -> None:
        self.name = name
        self._clock = clock or SystemClock()
        self._validity = validity_seconds
        self._keypair = keypair or get_scheme(scheme).generate_keypair()
        self._signer = Signer(self._keypair.private)
        self._revoked: Set[str] = set()
        self._issued: Dict[str, Certificate] = {}
        self._root = self._issue(
            subject=name,
            public_key=self._keypair.public,
            extensions={"ca": True},
        )

    @property
    def root_certificate(self) -> Certificate:
        """The CA's self-signed root certificate."""
        return self._root

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def _issue(
        self,
        subject: str,
        public_key: PublicKey,
        extensions: Optional[Mapping[str, Any]] = None,
        validity_seconds: Optional[float] = None,
    ) -> Certificate:
        now = self._clock.now()
        unsigned = Certificate(
            serial=new_unique_id("cert"),
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            not_before=now,
            not_after=now + (validity_seconds or self._validity),
            extensions=dict(extensions or {}),
        )
        signature = self._signer.sign(unsigned.body_bytes())
        certificate = Certificate(
            serial=unsigned.serial,
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            public_key=unsigned.public_key,
            not_before=unsigned.not_before,
            not_after=unsigned.not_after,
            extensions=unsigned.extensions,
            signature=signature,
        )
        self._issued[certificate.serial] = certificate
        return certificate

    def issue_certificate(
        self,
        subject: str,
        public_key: PublicKey,
        extensions: Optional[Mapping[str, Any]] = None,
        validity_seconds: Optional[float] = None,
    ) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``."""
        if not subject:
            raise CertificateError("certificate subject must not be empty")
        return self._issue(subject, public_key, extensions, validity_seconds)

    def issue_ca_certificate(
        self, subordinate: "CertificateAuthority"
    ) -> Certificate:
        """Certify another authority, creating a chain link."""
        return self._issue(
            subject=subordinate.name,
            public_key=subordinate.public_key,
            extensions={"ca": True},
        )

    def revoke(self, serial: str) -> None:
        """Revoke a previously issued certificate by serial number."""
        if serial not in self._issued:
            raise CertificateError(f"unknown certificate serial {serial!r}")
        self._revoked.add(serial)

    def revocation_list(self) -> RevocationList:
        """Publish the CA's current revocation list."""
        return RevocationList(
            issuer=self.name,
            revoked_serials=set(self._revoked),
            issued_at=self._clock.now(),
        )


class CertificateStore:
    """Stores certificates and revocation lists and verifies chains.

    Trusted interceptors use the store to verify the signatures on incoming
    evidence: the signer's key id is resolved to a certificate, the
    certificate chain is verified up to a trusted root and revocation is
    checked.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock or SystemClock()
        self._by_serial: Dict[str, Certificate] = {}
        self._by_subject: Dict[str, List[Certificate]] = {}
        self._by_key_id: Dict[str, List[Certificate]] = {}
        self._trusted_roots: Dict[str, Certificate] = {}
        self._revocations: Dict[str, RevocationList] = {}

    # -- population ----------------------------------------------------------

    def add_certificate(self, certificate: Certificate) -> None:
        """Add a certificate to the store."""
        if certificate.signature is None:
            raise CertificateError("cannot store an unsigned certificate")
        self._by_serial[certificate.serial] = certificate
        self._by_subject.setdefault(certificate.subject, []).append(certificate)
        self._by_key_id.setdefault(certificate.public_key.key_id, []).append(certificate)

    def add_trusted_root(self, certificate: Certificate) -> None:
        """Register a self-signed certificate as a trust anchor."""
        if not certificate.is_self_signed():
            raise CertificateError("trusted roots must be self-signed")
        self.add_certificate(certificate)
        self._trusted_roots[certificate.subject] = certificate

    def add_revocation_list(self, crl: RevocationList) -> None:
        """Install (or replace) the revocation list for an issuer."""
        self._revocations[crl.issuer] = crl

    # -- lookup ---------------------------------------------------------------

    def certificates_for_subject(self, subject: str) -> List[Certificate]:
        return list(self._by_subject.get(subject, []))

    def certificate_for_key(self, key_id: str) -> Optional[Certificate]:
        """Return a currently valid certificate for ``key_id`` if one exists."""
        now = self._clock.now()
        for certificate in self._by_key_id.get(key_id, []):
            if certificate.is_valid_at(now) and not self._is_revoked(certificate):
                return certificate
        return None

    def public_key_for_subject(self, subject: str) -> Optional[PublicKey]:
        """Return the public key from the newest valid certificate of ``subject``."""
        now = self._clock.now()
        candidates = [
            cert
            for cert in self._by_subject.get(subject, [])
            if cert.is_valid_at(now) and not self._is_revoked(cert)
        ]
        if not candidates:
            return None
        newest = max(candidates, key=lambda cert: cert.not_before)
        return newest.public_key

    # -- verification ---------------------------------------------------------

    def _is_revoked(self, certificate: Certificate) -> bool:
        crl = self._revocations.get(certificate.issuer)
        return bool(crl and crl.is_revoked(certificate.serial))

    def _issuer_certificate(self, certificate: Certificate) -> Optional[Certificate]:
        now = self._clock.now()
        for candidate in self._by_subject.get(certificate.issuer, []):
            if not candidate.extensions.get("ca") and not candidate.is_self_signed():
                continue
            if candidate.is_valid_at(now):
                return candidate
        return None

    def verify_certificate(
        self, certificate: Certificate, _depth: int = 0, _max_depth: int = 8
    ) -> bool:
        """Verify ``certificate`` up to a trusted root.

        Checks the validity window, revocation status and issuer signature at
        each step of the chain, terminating at a registered trust anchor.
        """
        if _depth > _max_depth:
            return False
        if certificate.signature is None:
            return False
        now = self._clock.now()
        if not certificate.is_valid_at(now):
            return False
        if self._is_revoked(certificate):
            return False
        if certificate.is_self_signed():
            anchor = self._trusted_roots.get(certificate.subject)
            if anchor is None or anchor.serial != certificate.serial:
                return False
            scheme = get_scheme(certificate.public_key.scheme)
            return scheme.verify(
                certificate.public_key, certificate.body_bytes(), certificate.signature
            )
        issuer_cert = self._issuer_certificate(certificate)
        if issuer_cert is None:
            return False
        scheme = get_scheme(issuer_cert.public_key.scheme)
        if not scheme.verify(
            issuer_cert.public_key, certificate.body_bytes(), certificate.signature
        ):
            return False
        return self.verify_certificate(issuer_cert, _depth + 1, _max_depth)

    def verify_chain(self, chain: Iterable[Certificate]) -> bool:
        """Verify an explicitly supplied leaf-to-root chain."""
        chain = list(chain)
        if not chain:
            return False
        for certificate, issuer in zip(chain, chain[1:]):
            if certificate.issuer != issuer.subject:
                return False
        for certificate in chain:
            # Issuer certs may not yet be in the store; add them transiently.
            if certificate.serial not in self._by_serial:
                self.add_certificate(certificate)
        return self.verify_certificate(chain[0])
