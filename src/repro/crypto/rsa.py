"""From-scratch RSA signature scheme.

Key generation uses Miller-Rabin prime generation; signing follows the
hash-then-pad-then-exponentiate structure of PKCS#1 v1.5 (a deterministic
padding of the digest with a scheme identifier, then modular exponentiation
with the private exponent).  The implementation targets correctness and
auditability, not constant-time operation -- it is the "perfect cryptography"
substrate assumed by the paper, not a hardened production library.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.modexp import mod_exp
from repro.crypto.primality import generate_prime, modular_inverse
from repro.crypto.rng import SecureRandom, default_rng
from repro.errors import SignatureError
from repro.crypto.signature import SignatureScheme

#: Default modulus size.  1024 bits keeps key generation fast enough for
#: tests and benchmarks while exercising exactly the same code path as a
#: production-size modulus.
DEFAULT_MODULUS_BITS = 1024

#: Public exponent, the conventional F4.
PUBLIC_EXPONENT = 65537

# DigestInfo-style prefix identifying the digest algorithm inside the padding.
_DIGEST_PREFIX = b"repro-rsa-sha256:"


def _pad_digest(digest: bytes, modulus_bytes: int) -> int:
    """Apply deterministic type-1 style padding to ``digest``.

    Layout: ``0x00 0x01 FF..FF 0x00 prefix digest`` -- identical in spirit to
    EMSA-PKCS1-v1_5.
    """
    payload = _DIGEST_PREFIX + digest
    padding_length = modulus_bytes - len(payload) - 3
    if padding_length < 8:
        raise SignatureError("RSA modulus too small for digest padding")
    encoded = b"\x00\x01" + b"\xff" * padding_length + b"\x00" + payload
    return int.from_bytes(encoded, "big")


class RSAScheme(SignatureScheme):
    """RSA signatures with deterministic PKCS#1-v1.5-style padding."""

    name = "rsa"

    def generate_keypair(
        self,
        bits: int = DEFAULT_MODULUS_BITS,
        rng: Optional[SecureRandom] = None,
        **options: Any,
    ) -> KeyPair:
        """Generate an RSA key pair with a ``bits``-bit modulus."""
        if bits < 512:
            raise SignatureError("RSA modulus must be at least 512 bits")
        rng = rng or default_rng()
        half = bits // 2
        while True:
            p = generate_prime(half, rng=rng)
            q = generate_prime(bits - half, rng=rng)
            if p == q:
                continue
            n = p * q
            if n.bit_length() != bits:
                continue
            phi = (p - 1) * (q - 1)
            if phi % PUBLIC_EXPONENT == 0:
                continue
            d = modular_inverse(PUBLIC_EXPONENT, phi)
            break
        public = PublicKey(scheme=self.name, params={"n": n, "e": PUBLIC_EXPONENT})
        private = PrivateKey(
            scheme=self.name,
            params={"n": n, "e": PUBLIC_EXPONENT, "d": d, "p": p, "q": q},
            key_id=public.key_id,
        )
        return KeyPair(private=private, public=public)

    def __init__(self) -> None:
        # Per-key CRT exponents (dp, dq, qinv), derived once per key id.
        self._crt_params: dict = {}

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        n = private_key.params["n"]
        d = private_key.params["d"]
        modulus_bytes = (n.bit_length() + 7) // 8
        message_int = _pad_digest(digest, modulus_bytes)
        if message_int >= n:
            raise SignatureError("padded digest exceeds modulus")
        signature_int = self._private_exponentiate(private_key, message_int, n, d)
        return signature_int.to_bytes(modulus_bytes, "big")

    def _private_exponentiate(
        self, private_key: PrivateKey, message_int: int, n: int, d: int
    ) -> int:
        """Compute ``message_int ** d mod n``, via CRT when p and q are known.

        Garner recombination over the half-size primes produces a value
        identical to the direct exponentiation at roughly a quarter of the
        cost; the per-key exponents are computed once and cached.
        """
        p = private_key.params.get("p")
        q = private_key.params.get("q")
        if not p or not q:
            return mod_exp(message_int, d, n)
        crt = self._crt_params.get(private_key.key_id)
        if crt is None:
            crt = (d % (p - 1), d % (q - 1), modular_inverse(q, p))
            if len(self._crt_params) >= 1024:
                self._crt_params.clear()
            self._crt_params[private_key.key_id] = crt
        dp, dq, q_inverse = crt
        m1 = mod_exp(message_int % p, dp, p)
        m2 = mod_exp(message_int % q, dq, q)
        h = ((m1 - m2) * q_inverse) % p
        return (m2 + h * q) % n

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        n = public_key.params["n"]
        e = public_key.params["e"]
        modulus_bytes = (n.bit_length() + 7) // 8
        if len(signature) != modulus_bytes:
            return False
        signature_int = int.from_bytes(signature, "big")
        if signature_int >= n:
            return False
        recovered = mod_exp(signature_int, e, n)
        try:
            expected = _pad_digest(digest, modulus_bytes)
        except SignatureError:
            return False
        return recovered == expected
