"""Secure pseudo-random generation and unique identifiers.

The paper requires "a secure pseudo-random sequence generator to generate
statistically random and unpredictable sequences of bits.  Random numbers are
used to generate unique identifiers and random authenticators during
non-repudiation protocols." (Section 3.5).

:class:`SecureRandom` is an HMAC-DRBG (NIST SP 800-90A style) built on
SHA-256.  By default it is seeded from ``os.urandom``; tests may seed it
explicitly to obtain deterministic sequences.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import threading
from typing import Optional

_DIGEST = hashlib.sha256
_DIGEST_SIZE = _DIGEST().digest_size


class SecureRandom:
    """HMAC-DRBG pseudo-random generator.

    The generator maintains the usual (K, V) state and supports reseeding.
    It is thread-safe: concurrent callers each receive distinct output.
    """

    def __init__(self, seed: Optional[bytes] = None) -> None:
        if seed is None:
            seed = os.urandom(48)
        self._key = b"\x00" * _DIGEST_SIZE
        self._value = b"\x01" * _DIGEST_SIZE
        self._lock = threading.Lock()
        self._reseed_counter = 0
        self._update(seed)

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, _DIGEST).digest()

    def _update(self, provided_data: Optional[bytes]) -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + (provided_data or b""))
        self._value = self._hmac(self._key, self._value)
        if provided_data:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided_data)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix additional entropy into the generator state."""
        with self._lock:
            self._update(entropy)
            self._reseed_counter = 0

    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        with self._lock:
            output = bytearray()
            while len(output) < length:
                self._value = self._hmac(self._key, self._value)
                output.extend(self._value)
            self._update(None)
            self._reseed_counter += 1
            return bytes(output[:length])

    def random_int(self, bits: int) -> int:
        """Return a uniformly random integer with at most ``bits`` bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        nbytes = (bits + 7) // 8
        raw = self.random_bytes(nbytes)
        value = int.from_bytes(raw, "big")
        excess = nbytes * 8 - bits
        return value >> excess

    def random_int_below(self, upper: int) -> int:
        """Return a uniformly random integer in ``[0, upper)``."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        bits = upper.bit_length()
        while True:
            candidate = self.random_int(bits)
            if candidate < upper:
                return candidate

    def random_int_range(self, lower: int, upper: int) -> int:
        """Return a uniformly random integer in ``[lower, upper)``."""
        if upper <= lower:
            raise ValueError("upper must be greater than lower")
        return lower + self.random_int_below(upper - lower)

    def random_odd_int(self, bits: int) -> int:
        """Return a random odd integer with exactly ``bits`` bits set high."""
        if bits < 2:
            raise ValueError("bits must be at least 2")
        value = self.random_int(bits)
        value |= (1 << (bits - 1)) | 1
        return value

    def random_hex(self, length: int) -> str:
        """Return a random hex string of ``length`` characters."""
        nbytes = (length + 1) // 2
        return self.random_bytes(nbytes).hex()[:length]


_default_rng = SecureRandom()


def default_rng() -> SecureRandom:
    """Return the process-wide default generator."""
    return _default_rng


def new_nonce(length: int = 16) -> bytes:
    """Return a fresh random authenticator of ``length`` bytes."""
    return _default_rng.random_bytes(length)


def new_unique_id(prefix: str = "id") -> str:
    """Return a globally unique identifier string.

    Identifiers are used as protocol-run (request) identifiers to distinguish
    between protocol runs and to bind protocol steps to a run (Section 3.2).
    """
    return f"{prefix}-{_default_rng.random_hex(32)}"
