"""Symmetric HMAC "signature" scheme.

The paper observes that "a more lightweight mechanism can be used when
parties, who otherwise trust each other, need a verifiable audit trail"
(Section 3.1).  The HMAC scheme provides exactly that lightweight option: it
offers integrity and attribution *within* a group that shares the MAC key
(for example, interceptors co-located at a single inline TTP, Figure 3(a)),
but not third-party verifiability.  The benchmarks use it to quantify the gap
between lightweight and full public-key non-repudiation.
"""

from __future__ import annotations

import hmac
import hashlib
from typing import Any, Optional

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.rng import SecureRandom, default_rng
from repro.crypto.signature import SignatureScheme


class HMACScheme(SignatureScheme):
    """HMAC-SHA256 based symmetric scheme.

    The "public" key carries a commitment (digest) to the shared secret so
    key identifiers still work, and the secret itself so co-located verifiers
    can check tags.  This is intentionally *not* third-party verifiable.
    """

    name = "hmac"

    def generate_keypair(
        self, key_bytes: int = 32, rng: Optional[SecureRandom] = None, **options: Any
    ) -> KeyPair:
        rng = rng or default_rng()
        secret = rng.random_bytes(key_bytes)
        commitment = hashlib.sha256(secret).hexdigest()
        public = PublicKey(
            scheme=self.name, params={"secret": secret, "commitment": commitment}
        )
        private = PrivateKey(
            scheme=self.name,
            params={"secret": secret, "commitment": commitment},
            key_id=public.key_id,
        )
        return KeyPair(private=private, public=public)

    def sign_digest(self, private_key: PrivateKey, digest: bytes) -> bytes:
        secret = private_key.params["secret"]
        return hmac.new(secret, digest, hashlib.sha256).digest()

    def verify_digest(
        self, public_key: PublicKey, digest: bytes, signature: bytes
    ) -> bool:
        secret = public_key.params["secret"]
        expected = hmac.new(secret, digest, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)
