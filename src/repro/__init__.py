"""repro -- reproduction of "Component Middleware to Support Non-repudiable
Service Interactions" (Cook, Robinson, Shrivastava, 2004).

The package provides component middleware for regulated, non-repudiable
interaction between organisations:

* **NR-Invocation** -- non-repudiable service invocation with exchange of
  NRO/NRR evidence tokens around an ordinary component invocation.
* **NR-Sharing** -- non-repudiable information sharing (B2BObjects) with
  unanimous, attributable agreement on every update to shared state.
* **Trust domains** -- the same application code runs over direct,
  inline-TTP and distributed-inline-TTP deployments of the trusted
  interceptors.

Quickstart::

    from repro import TrustDomain, DeploymentStyle, ComponentDescriptor

    domain = TrustDomain.create(["urn:org:dealer", "urn:org:manufacturer"])
    dealer = domain.organisation("urn:org:dealer")
    manufacturer = domain.organisation("urn:org:manufacturer")

    class OrderService:
        def place_order(self, model):
            return {"order_id": 1, "model": model, "status": "accepted"}

    manufacturer.deploy(
        OrderService(),
        ComponentDescriptor(name="OrderService", non_repudiation=True),
    )
    proxy = dealer.nr_proxy(manufacturer, "OrderService")
    proxy.place_order("roadster")          # non-repudiable invocation

Performance architecture
------------------------

The paper's own evaluation names cryptographic computation, evidence space
overhead and protocol communication as the dominant costs of non-repudiable
interaction.  The hot paths are built around an **encode-once invariant**:
every value that crosses a protocol boundary is resolved to its canonical
representation exactly once, and the ``(bytes, digest, size)`` triple of
that representation is reused everywhere downstream.

* **Content-addressed canonical encoding** -- ``repro.codec.canonicalize``
  produces an immutable ``Encoded`` snapshot; ``Encoded`` values (and the
  cached encodings of evidence tokens and protocol messages) are *spliced*
  verbatim into any enclosing encoding, so fanning one proposal out to N
  peers encodes the shared body once, not N times.  ``Encoded`` behaves as a
  read-only mapping over its source value, so handlers keep treating
  payloads as dictionaries.

* **Cache keys and invalidation** -- per-instance caches live on immutable
  carriers (frozen ``EvidenceToken``; ``B2BProtocolMessage`` drops its cache
  whenever a public field is reassigned -- mutate fields by reassignment,
  never in place).  Agreed shared state is held directly as its canonical
  encoding (content-addressed versions), so state digests are free and no
  version-keyed lookup is needed on the hot paths.  For values that lack an
  immutable carrier, ``repro.codec.EncodingCache`` provides keyed
  cross-version reuse: keys must change with the payload (e.g.
  ``(object_id, version)``), and payloads replaced in place under an
  unchanged key require an explicit ``invalidate(key)``.

* **Verification memoisation** -- signature verification verdicts are
  memoised process-wide, keyed on (scheme, key id, digest, signature bytes),
  so redistributed ``NR_DECISION``/``NR_OUTCOME`` tokens verify once per
  process.  Signing uses per-key CRT exponents, and all modular
  exponentiation routes through OpenSSL's ``BN_mod_exp`` when libcrypto is
  loadable (``repro.crypto.modexp``), with a built-in ``pow`` fallback.

* **Batched coordination fan-out** -- ``B2BCoordinator.request_all`` /
  ``send_all`` deliver a whole fan-out through one batched, retried network
  call (``SimulatedNetwork.send_batch``), accounting per-message statistics
  identically to sequential sends without re-encoding the shared body per
  recipient.  Message sizes are computed once and cached; payloads that fall
  back to lossy ``repr`` sizing are surfaced in
  ``NetworkStatistics.messages_sized_by_repr``.

Concurrency model
-----------------

On top of the encode-once substrate, the protocol engine runs concurrently:

* **What the network lock protects** -- admission of every message (fault
  decisions, statistics, trace, message ids) happens under the single
  network lock, in entry order, so traffic accounting is deterministic and
  bit-identical whatever happens afterwards.  Handler *dispatch* happens
  outside the lock through a pluggable ``DispatchStrategy``:
  ``SequentialDispatch`` (default) preserves strict entry-order execution,
  ``ParallelDispatch`` runs the admitted handlers of one ``send_batch`` on a
  shared worker pool, so per-destination link latency and GIL-releasing
  signature work (``BN_mod_exp`` via ctypes) overlap across the fan-out.
  Property tests assert that both strategies produce identical
  ``NetworkStatistics`` and replica state for the same seeded fault model.

* **Handler thread-safety contract** -- any endpoint reachable through a
  batched call on a parallel network may be invoked concurrently with other
  endpoints (never concurrently with itself for one message).  Every store
  in this package (evidence, state, audit), the coordinator tables, the
  membership service and the signature-verification memo are lock-protected;
  application handlers deployed behind NR interceptors must either be
  thread-safe or be deployed on a sequential network.  Work submitted from a
  worker thread runs inline (``repro.parallel``), so nested fan-outs degrade
  to sequential execution instead of risking pool-exhaustion deadlock.

* **Nonce-pool lifecycle** -- DSA's expensive per-signature work
  (``r = g^k mod p``, ``k^-1 mod q``) is message-independent, so a
  ``repro.crypto.dsa.NoncePool`` precomputes ``(k, k^-1, r)`` triples per
  domain-parameter set.  Pools are created lazily after
  ``enable_nonce_pools()`` and dropped by ``disable_nonce_pools()``; a
  daemon refill thread tops the pool up whenever it drains below its
  low-water mark, and an empty pool computes triples synchronously, so
  signing is never blocked on the refill thread.  Pooling trades the
  deterministic RFC 6979 nonce derivation for offline precomputation
  (nonces then come from the thread-safe HMAC-DRBG) and is therefore
  opt-in; the default remains deterministic signing.

* **Batched verification** -- ``EvidenceVerifier.verify_all`` checks an
  evidence-token set concurrently (one ``require_valid`` per token, errors
  reported per slot), used by dispute resolution and by ``handle_outcome``
  for the decision evidence forwarded with a sharing outcome.

* **Event-driven retries** -- delivery retries over lossy links used to
  sleep their exponential backoff on the calling thread, so one flaky link
  parked a whole protocol run.  With a
  ``repro.transport.scheduler.RetryScheduler`` attached to the network
  (``TrustDomain.create(..., scheduled_retries=True)``), a failed
  ``send``/``send_batch`` entry instead registers a deadline timer and
  resolves through a ``DeliveryFuture``: the retry state machine is
  attempt -> outcome -> complete the future (success, permanent failure,
  exhausted budget) or schedule the next attempt at ``now + backoff``.
  There is no dedicated timer thread -- threads *waiting* on futures drive
  the scheduler, firing whatever is due (their own run's retries or any
  other's) and advancing a virtual clock idempotently to the next deadline,
  so concurrent runs overlap their retry waits instead of summing them and
  pool workers are never parked in backoff sleeps.  Completion futures
  thread through ``RemoteInvoker.call_batch_async`` and
  ``B2BCoordinator.request_all_async`` / ``send_all_async``, which the
  sharing and membership fan-outs await as sets.  The scheduled batch state
  machine groups retry waves exactly like the blocking loop, so for
  non-interleaved workloads statistics and replica state are *byte
  identical* between modes (property-tested, including under a seeded
  lossy fault model); delivery effort is observable either way through
  ``NetworkStatistics.attempts_per_destination`` /
  ``deliveries_per_destination``.  ``ReliableChannel.close()`` cancels
  in-flight retries without leaking timers.

* **Run multiplexing (async protocol engine)** -- a coordination round is
  an explicit two-phase state machine (``repro.core.sharing``) with two
  drivers over the same protocol hooks: the blocking driver awaits each
  fan-out inline (the reference behaviour), while
  ``propose_update_async`` / ``connect_member_async`` /
  ``disconnect_member_async`` register each subsequent phase as a
  *continuation* on its ``CoordinatorFanOut`` (executed via
  ``repro.parallel``) and return a ``RunFuture`` immediately.  Between
  phases a run occupies no thread -- only timers and callbacks -- so a
  bounded pool multiplexes hundreds of concurrent runs (BENCH_4: 256 runs
  over 8 workers).  ``TrustDomain.create(async_runs=True)`` routes the
  blocking sharing API through the async engine (``.result()`` wrappers);
  stats, evidence and replica state are property-tested identical across
  engines at 0% and seeded 10% drop.  Virtual-clock integrity is kept by
  scheduler *advance holds*: while a continuation is in flight, drivers
  wait instead of advancing simulated time over it.

* **Protocol deadlines as timers** -- scheduler timers carry an optional
  *run tag*, and ``RetryScheduler.cancel_run(run_id)`` withdraws every
  timer of one protocol run at once.  On top of this, an async run accepts
  a ``deadline`` (fair-exchange-style abort for updates, membership-change
  expiry for connect/disconnect): expiry aborts the pending run --
  cancelling its delivery retries, resolving its ``RunFuture`` as
  not-agreed, leaking no timers -- instead of parking a thread in a
  timeout wait.  ``FairExchangeClient.schedule_abort`` registers the
  TTP abort deadline the same way.

* **Forward-secure offline/online split** -- everything in a
  forward-secure signature except the inner DSA operation is
  message-independent (per-period key, Merkle inclusion proof).
  ``repro.crypto.forward_secure.enable_period_precompute()`` (opt-in,
  beside ``enable_nonce_pools()``) caches that context per
  ``(root, period)``, builds the Merkle tree once per key set, and stages
  the next period's context on the shared executor at first use and on
  ``evolve_key`` -- which also eagerly evicts the evolved-away period's
  secret from the cache, so forward security never depends on cache luck.
  Signature bytes are identical to the uncached path.

Durability architecture
-----------------------

A trusted interceptor process can die mid-coordination.  Without durability
a crashed proposer silently strands its run: peers hold half-collected
evidence and responder state for a round that will never settle, and a
restarted proposer has no memory the run ever existed.
``TrustDomain.create(durable_runs=True)`` (or
``Organisation(durable_runs=True)``) closes that gap:

* **Write-ahead run journal** -- ``repro.persistence.run_journal.RunJournal``
  records each coordination run's phase transition *before its side effects
  dispatch*, behind the same ``StorageBackend`` interface as the evidence
  store (pair it with a ``run_journal_backend_factory`` returning
  ``FileBackend`` directories for real crash recovery).  Three records per
  run, keyed ``runjournal:{owner}:{run_id}:{phase}``: ``proposed`` (the
  canonical proposal -- spliced encode-once -- plus the fan-out wave
  membership, written before the first proposal message leaves),
  ``committed`` (written inside the commit barrier before any outcome
  message leaves: the outcome payload/attributes, recipients, the original
  per-recipient message ids, and the signed ``NR_OUTCOME`` token) and
  ``settled`` (the run resolved; no recovery needed).

* **Recovery semantics** -- ``Organisation.recover_runs()`` (or
  ``TrustDomain.recover_runs()``) replays open journal entries
  deterministically, in run-id order.  The commit barrier decides the
  direction: a run journaled only as ``proposed`` never dispatched its
  outcome, so *no peer can have applied anything* -- recovery aborts it
  through the existing abort machinery and sends every wave member an
  explicit wire-level abort notice (``RunAbortNotice``, action ``abort``).
  A run journaled as ``committed`` may already be applied at peers, so
  recovery *resumes* it: the outcome wave is re-dispatched verbatim (the
  journaled message ids make re-delivery deduplicate at peers that already
  processed it) and the local apply re-driven, version-guarded so a double
  recovery never re-applies.  Both paths settle the journal, making
  ``recover_runs()`` idempotent.  Restarted processes must present the same
  key their peers pinned (``keypair_factory``); the journaled evidence was
  signed with it.

* **Orphan expiry** -- responders arm a proposal-age timer
  (``orphan_run_timeout`` seconds, riding the ``RetryScheduler`` with an
  ``orphan:{party}:{run_id}`` tag) when they return a decision; an outcome
  or abort notice cancels it, and expiry garbage-collects the orphaned
  responder run state -- no divergent replica state, no leaked timers --
  covering proposers that die and never recover.

* **Crash-atomic storage** -- ``FileBackend`` writes records to a temp
  file, fsyncs and renames; the index entry is the commit point of a put.
  Torn index lines, orphaned record files and leftover temp files from a
  crash are ignored (and temp files swept) on reopen.

The kill/restart chaos suite (``tests/property/test_durable_runs_wire.py``)
SIGKILLs a proposer process mid-run over real TCP at a seeded schedule of
crash points, restarts it against the same journal/evidence directories,
recovers, and asserts converge-never-diverge: responder replicas end
mutually identical (state, version and evidence multisets) and no scheduler
timers leak.

Recovery architecture
---------------------

Three self-healing layers sit above the journal, each owning a failure the
others cannot see.  All are opt-in through ``DurabilityConfig`` /
``TrustDomain.create`` and all default off:

* **Journal replay** (``durable_runs=True``, above) heals the *proposer's
  own crash*: ``recover_runs()`` aborts half-proposed runs and resumes
  committed ones.  It cannot help when the proposer stayed up but a *peer*
  missed the outcome -- the run is settled, the journal closed.

* **Outcome re-delivery** (``outcome_redelivery=True``, requires
  ``scheduled_retries``) heals the *undelivered outcome wave*: when an
  agreed run's outcome fan-out fails for some peers (and when a degraded
  run could not dispatch at all), the proposer queues the exact journaled
  wave messages and a ``RetryScheduler`` task pushes them --
  exponential-backoff timers tagged ``redeliver:{party}:{run_id}``,
  circuit-breaker-open peers skipped passively -- until every peer acks or
  the object advances past the run's version (then the task retires,
  audited ``outcome-redelivery-superseded``, without re-sending).  Peers
  absorb late waves idempotently: evidence is stored unconditionally, the
  apply is version-guarded, and the original message ids deduplicate
  re-sends at peers that already processed the wave.  Observable via
  ``pending_redeliveries()`` and ``outcome-redelivery-*`` audit records.

* **Durable object state + restart-time resync** (``durable_state=True``,
  ``resync_on_connect=True``) heal the *restarted replica*: every committed
  apply persists ``(version, state digest)`` and the signed outcome record
  through the digest-addressed ``StateStore`` (under the same ``storage=``
  profile), so ``register_object`` resumes a known object at its recorded
  version (audited ``object-resumed``) instead of re-registering from
  configuration.  A replica that was *down while versions were agreed* then
  anti-entropy-pulls what it missed: peers exchange per-object
  ``(version, digest)`` vectors over the wire's ``@system`` channel
  (``WireTransport.resync_with`` / ``resync_with_peers``, automatic after
  ``introduce_to``/``exchange`` when ``resync_on_connect`` is set), and the
  stale side fetches the missing signed outcome + decision evidence,
  verifying signatures and applying version-guarded (the same path is
  drivable in-process through ``resync_vector`` / ``resync_records`` /
  ``apply_resync_record`` on the controller; same-version digest mismatches
  audit ``resync-divergence``).

Responder-side orphan GC (above) composes with all three: an expiry racing
a late outcome application cancels itself (audited
``orphan-expiry-cancelled``) rather than aborting a committing run, and a
wave re-delivered *after* GC still applies -- the excluded peer ends
byte-identical to one healed by re-delivery or resync
(``tests/property/test_recovery_convergence.py``).  The composed stack is
chaos-gated end to end on both transports
(``tests/property/test_self_healing_chaos.py``): a replica SIGKILLed through
the client-side crash failpoint right after committing restarts over its
persistent store and must reconverge -- durable resume, journal recovery,
resync -- with zero manual re-registration.

Deployment architecture
-----------------------

Two transports implement one network surface (``register`` / ``send`` /
``send_batch`` + statistics, clock, retry-scheduler and dispatch-strategy
attachment points), so every engine above the transport -- reliable
channels, scheduled retries, parallel dispatch, the async run engine -- is
deployment-agnostic:

* **Simulated (in-process)** -- ``repro.transport.network.SimulatedNetwork``
  hosts every endpoint in one interpreter with a configurable injected
  fault model (loss, duplication, latency, partitions) on a virtual clock.
  This is the deterministic research instrument: seeded faults, exact
  statistics, reproducible timelines.

* **Wire (cross-process)** -- ``repro.transport.wire.WireNetwork`` is one
  *node* of a multi-process deployment: locally registered endpoints are
  served from a length-prefixed TCP frame loop, remote destinations are
  resolved through a peer address book (endpoint URI -> ``host:port``) and
  reached through a per-peer connection pool.  Frame bodies reuse the
  encode-once canonical codec; the receiving side *revives* protocol
  objects (messages, evidence tokens) from a wire type registry.  A
  ``repro.transport.wire.WireTransport`` bundles one process's share of a
  trust domain -- hosted parties plus a symmetric credential exchange over
  the node's system channel (introductions pin verification keys and
  routes, trust-on-first-use) -- and plugs into
  ``TrustDomain.create(transport=...)``: the domain then builds
  organisations only for the local parties and resolves the rest over the
  socket.  See ``examples/two_process_sharing.py`` and
  ``benchmarks/bench_wire_runs.py``.

* **Addressing** -- protocol-level addresses stay URIs in both transports
  (coordinator routes, ``reply_to`` fields); only the wire's address book
  knows which process serves which URI, so application and protocol code
  never see ``host:port``.

* **Failure model** -- one fault plane serves both transports.  A seeded
  ``repro.faults.FaultPlan`` (drop, delay+jitter, duplicate, reorder,
  corrupt frames, connection resets, partition windows, crash failpoints)
  drives a deterministic ``FaultInjector`` consulted at message admission
  by *either* network: the simulator realises decisions virtually, while
  the wire maps them onto real sockets -- an injected reset kills the
  connection under the exchange, an injected corrupt frame makes the peer
  reject a framing violation -- so injected failures flow through the
  organic ``DeliveryError`` taxonomy and the organic recovery machinery.
  Organic wire failures behave as before: socket-level failures (refused,
  reset, timeout, killed connection) and offline endpoints surface as
  retryable ``DeliveryError``; unmapped endpoints are permanent
  ``UnknownEndpointError``; remote handler exceptions are revived as
  themselves after the delivery was counted.  Hardening rides the same
  plane: channels honour a per-peer ``repro.faults.CircuitBreaker``
  (audited closed/open/half-open transitions), retry policies offer
  opt-in deterministic full-jitter backoff, wire servers shed inbound
  frames beyond ``max_inflight_frames`` with a retryable overload reply,
  the protocol layer suppresses duplicate message ids and replays cached
  responses, and partition-exhausted runs resolve not-agreed with an
  audited ``run-degraded`` reason instead of stranding waiters.
  Statistics are sender-side, so summing every node's counters reproduces
  the simulator's global view; at 0% loss a split deployment is
  property-tested counter-identical to the simulated one, and under a
  seeded plan (``repro.faults.chaos``) both transports are CI-gated to
  resolve identical outcomes, evidence multisets and replica states.

* **Quiescence** -- external drivers (serve loops, benchmark orchestrators)
  can *check* that the engine has settled instead of sleeping:
  ``RetryScheduler.quiescence()`` samples pending timers (optionally within
  a horizon), advance holds and the shared executor's queue depth, and
  ``wait_quiescent(until=T)`` drives the engine up to -- never past -- the
  horizon.

* **Many-peer scale-out** -- a wire node no longer has to pre-register and
  eagerly exchange credentials with its whole peer set.  With
  ``PeeringConfig`` (``TrustDomain.create(config=DomainConfig(...,
  peering=...))`` or ``WireTransport(peering=PeeringPolicy(...))``), a
  ``repro.peering.PeerChannelManager`` creates each peer's channel --
  credential introduction, pinned key, route, pooled sockets, breaker
  entry -- lazily on first send, tracks last activity, and evicts
  least-recently-used or idle channels under a configurable cap
  (``max_live_channels``, ``idle_timeout_seconds``).  Evictions are
  audited (``transport.peering``) and release only *transport* resources
  (sockets via per-peer pool retirement, breaker state); pinned keys and
  routes survive, so a re-touched peer is re-dialled without a second
  trust-on-first-use window.  ``benchmarks/bench_many_peers.py`` drives
  one node over 1000+ peer channels with live sockets bounded by the cap.

* **Storage profiles** -- ``TrustDomain.create(storage=...)`` provisions
  every organisation's persistence from one selector: ``"memory"``
  (fresh in-memory backends), ``"file:<dir>"`` (one
  ``repro.persistence.storage.FileBackend`` directory per organisation
  and store), or ``"sqlite:<path>"`` (one shared
  ``repro.persistence.sqlite_backend.SQLiteBackend`` embedded-KV file,
  WAL-journalled so many processes of a wire deployment can share it).
  Backends that advertise ``supports_prefix_scan`` serve the evidence
  store's ``(run, token_type)`` queries and the audit-chain replay by
  indexed range scans -- reopening such a store reads only what is
  queried instead of rebuilding an in-memory index over every record.

* **Configuration** -- ``repro.core.config.DomainConfig`` groups
  ``TrustDomain.create``'s two dozen knobs into ``TransportConfig``,
  ``ReliabilityConfig``, ``DurabilityConfig``, ``FaultConfig`` and
  ``PeeringConfig``; every cross-field validity rule lives in
  ``DomainConfig.validate()``.  The flat keyword surface remains and
  delegates through the same path.

Observability architecture
--------------------------

``repro.observability`` is one opt-in plane -- run-scoped distributed
tracing, a process-wide metrics registry and exporters -- shared by both
transports, enabled by ``DomainConfig(observability=ObservabilityConfig())``
(or programmatically via ``repro.observability.runtime.enable``).  When
disabled (the default) every instrumented site is a single attribute load
against ``runtime.STATE`` -- no spans, no timing, no allocation -- and
``benchmarks/bench_observability.py`` asserts the gated traffic counters
stay byte-identical either way.

* **Tracing** -- a coordination run is one trace: the run id is the trace
  id, and ``_CoordinationRun`` opens the root span (``run:update`` /
  ``run:membership``).  Context rides a thread-local ambient slot,
  captured onto every outbound ``Message`` at construction and restored
  around handler dispatch on both transports (the wire carries it in the
  frame envelope, *outside* the canonical byte-accounted payload), onto
  scheduler timers at ``schedule()`` time, and across executor hops by
  explicit re-activation -- so one proposal yields one connected tree
  across processes: per-peer ``request:<peer>``/``send:<peer>`` legs, each
  peer's ``handle:*`` spans, a ``commit`` barrier span covering the
  outcome wave, plus ``redeliver`` attempts and (as a second root in the
  same trace) ``resync:apply`` on a caught-up replica.  Spans land in a
  bounded ``SpanCollector``; ``repro.observability.tracing`` renders and
  compares trees (``render_tree`` / ``tree_shape``), and
  ``python -m repro.observability.trace spans.json`` renders an exported
  file.  Audit records appended under an active span gain
  ``trace_id``/``span_id`` details, and ``audit_records(trace_id=...)``
  joins the evidence trail against the tree.

* **Metrics** -- ``MetricsRegistry`` holds counters, gauges and
  per-thread-sharded histograms (lock-free ``observe`` on the hot path).
  Push-side instruments cover crypto (``crypto.sign_seconds``,
  ``crypto.verify_seconds``), the codec (``codec.encode_seconds``), wire
  round trips (``wire.round_trip_seconds``) and whole runs
  (``run.duration_seconds``); everything else is *pull* collectors
  registered by ``TrustDomain`` -- network statistics, scheduler depth,
  circuit-breaker states, peering occupancy/evictions, evidence/audit/
  journal sizes, nonce pools, executor queue depth -- evaluated only when
  a snapshot is taken.

* **Exporters** -- ``render_prometheus``/``render_json`` serialise a
  snapshot; ``WireTransport.serve_observability(port)`` (or
  ``ObservabilityConfig(http_port=...)``) serves ``/metrics``,
  ``/metrics.json`` and ``/spans.json`` from a daemon-threaded local HTTP
  endpoint, stopped with the transport.
"""

from repro.container.component import Component, ComponentDescriptor, ComponentType
from repro.container.container import Container
from repro.container.interceptor import Interceptor, Invocation, InvocationResult
from repro.core.coordinator import B2BCoordinator
from repro.core.dispute import ClaimType, DisputeClaim, DisputeResolver, Verdict
from repro.core.evidence import EvidenceBuilder, EvidenceToken, EvidenceVerifier, TokenType
from repro.core.invocation import (
    B2BInvocation,
    B2BInvocationHandler,
    InvocationOutcome,
    InvocationStatus,
)
from repro.core.messages import B2BProtocolMessage
from repro.core.organisation import Organisation
from repro.core.sharing import (
    B2BObjectController,
    RunAbortNotice,
    RunFuture,
    SharingOutcome,
)
from repro.core.transactions import SharedStateTransaction, TransactionManager
from repro.core.contracts import ContractFSM, ContractMonitor, ContractValidator
from repro.core.fair_exchange import FairExchangeClient
from repro.core.config import (
    DomainConfig,
    DurabilityConfig,
    FaultConfig,
    ObservabilityConfig,
    PeeringConfig,
    ReliabilityConfig,
    TransportConfig,
)
from repro.core.trust_domain import DeploymentStyle, TrustDomain
from repro.peering import PeerChannelManager, PeeringPolicy
from repro.core.validators import (
    CallableValidator,
    CompositeValidator,
    StateValidator,
    ValidationContext,
    ValidationDecision,
)
from repro.errors import ReproError
from repro.observability import MetricsRegistry, SpanCollector
from repro.persistence.run_journal import JournaledRun, RunJournal
from repro.persistence.sqlite_backend import SQLiteBackend
from repro.persistence.storage import StorageProfile
from repro.transport.network import FaultModel, SimulatedNetwork
from repro.transport.wire import WireNetwork, WireTransport, wire_type

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "B2BCoordinator",
    "B2BInvocation",
    "B2BInvocationHandler",
    "B2BObjectController",
    "B2BProtocolMessage",
    "CallableValidator",
    "ClaimType",
    "Component",
    "ComponentDescriptor",
    "ComponentType",
    "CompositeValidator",
    "Container",
    "ContractFSM",
    "ContractMonitor",
    "ContractValidator",
    "DeploymentStyle",
    "DisputeClaim",
    "DisputeResolver",
    "DomainConfig",
    "DurabilityConfig",
    "EvidenceBuilder",
    "EvidenceToken",
    "EvidenceVerifier",
    "FairExchangeClient",
    "FaultConfig",
    "FaultModel",
    "Interceptor",
    "Invocation",
    "InvocationOutcome",
    "InvocationResult",
    "InvocationStatus",
    "JournaledRun",
    "MetricsRegistry",
    "ObservabilityConfig",
    "Organisation",
    "PeerChannelManager",
    "PeeringConfig",
    "PeeringPolicy",
    "ReliabilityConfig",
    "ReproError",
    "RunAbortNotice",
    "RunFuture",
    "RunJournal",
    "SharedStateTransaction",
    "SharingOutcome",
    "SimulatedNetwork",
    "SpanCollector",
    "SQLiteBackend",
    "StateValidator",
    "StorageProfile",
    "TokenType",
    "TransactionManager",
    "TransportConfig",
    "TrustDomain",
    "ValidationContext",
    "ValidationDecision",
    "Verdict",
    "wire_type",
    "WireNetwork",
    "WireTransport",
]
