"""repro -- reproduction of "Component Middleware to Support Non-repudiable
Service Interactions" (Cook, Robinson, Shrivastava, 2004).

The package provides component middleware for regulated, non-repudiable
interaction between organisations:

* **NR-Invocation** -- non-repudiable service invocation with exchange of
  NRO/NRR evidence tokens around an ordinary component invocation.
* **NR-Sharing** -- non-repudiable information sharing (B2BObjects) with
  unanimous, attributable agreement on every update to shared state.
* **Trust domains** -- the same application code runs over direct,
  inline-TTP and distributed-inline-TTP deployments of the trusted
  interceptors.

Quickstart::

    from repro import TrustDomain, DeploymentStyle, ComponentDescriptor

    domain = TrustDomain.create(["urn:org:dealer", "urn:org:manufacturer"])
    dealer = domain.organisation("urn:org:dealer")
    manufacturer = domain.organisation("urn:org:manufacturer")

    class OrderService:
        def place_order(self, model):
            return {"order_id": 1, "model": model, "status": "accepted"}

    manufacturer.deploy(
        OrderService(),
        ComponentDescriptor(name="OrderService", non_repudiation=True),
    )
    proxy = dealer.nr_proxy(manufacturer, "OrderService")
    proxy.place_order("roadster")          # non-repudiable invocation
"""

from repro.container.component import Component, ComponentDescriptor, ComponentType
from repro.container.container import Container
from repro.container.interceptor import Interceptor, Invocation, InvocationResult
from repro.core.coordinator import B2BCoordinator
from repro.core.dispute import ClaimType, DisputeClaim, DisputeResolver, Verdict
from repro.core.evidence import EvidenceBuilder, EvidenceToken, EvidenceVerifier, TokenType
from repro.core.invocation import (
    B2BInvocation,
    B2BInvocationHandler,
    InvocationOutcome,
    InvocationStatus,
)
from repro.core.messages import B2BProtocolMessage
from repro.core.organisation import Organisation
from repro.core.sharing import B2BObjectController, SharingOutcome
from repro.core.transactions import SharedStateTransaction, TransactionManager
from repro.core.contracts import ContractFSM, ContractMonitor, ContractValidator
from repro.core.fair_exchange import FairExchangeClient
from repro.core.trust_domain import DeploymentStyle, TrustDomain
from repro.core.validators import (
    CallableValidator,
    CompositeValidator,
    StateValidator,
    ValidationContext,
    ValidationDecision,
)
from repro.errors import ReproError
from repro.transport.network import FaultModel, SimulatedNetwork

__version__ = "1.0.0"

__all__ = [
    "B2BCoordinator",
    "B2BInvocation",
    "B2BInvocationHandler",
    "B2BObjectController",
    "B2BProtocolMessage",
    "CallableValidator",
    "ClaimType",
    "Component",
    "ComponentDescriptor",
    "ComponentType",
    "CompositeValidator",
    "Container",
    "ContractFSM",
    "ContractMonitor",
    "ContractValidator",
    "DeploymentStyle",
    "DisputeClaim",
    "DisputeResolver",
    "EvidenceBuilder",
    "EvidenceToken",
    "EvidenceVerifier",
    "FairExchangeClient",
    "FaultModel",
    "Interceptor",
    "Invocation",
    "InvocationOutcome",
    "InvocationResult",
    "InvocationStatus",
    "Organisation",
    "ReproError",
    "SharedStateTransaction",
    "SharingOutcome",
    "SimulatedNetwork",
    "StateValidator",
    "TokenType",
    "TransactionManager",
    "TrustDomain",
    "ValidationContext",
    "ValidationDecision",
    "Verdict",
    "__version__",
]
