"""Cross-transport chaos scenarios: one seeded plan, two transports.

The acceptance property of the unified fault plane: replaying the *same*
seeded :class:`~repro.faults.FaultPlan` over the in-process simulator and
over a 2-node wire loopback deployment must leave every party with the
same evidence multiset and the same replica state.  With the proposer
alone on its wire node, the wire node's admission sequence is identical
to the simulator's global sequence, so the same seed produces the same
fault pattern on both transports and the comparison can be exact -- not
merely "both converged somewhere".

Statistics are deliberately *not* compared under faults: retry attempts
against a partitioned peer depend on per-link bookkeeping that the two
deployments spread differently across nodes.  Evidence and state are the
paper's non-repudiation currency; those must match token for token.

This module is imported explicitly (``repro.faults.chaos``), not
re-exported by the package: it pulls in the full core stack, which the
injector-level modules must not.

Run from the command line for a quick reproduction::

    PYTHONPATH=src python -m repro.faults.chaos --seed 7
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import shutil
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.clock import SimulatedClock
from repro.core.config import PeeringConfig
from repro.core.trust_domain import TrustDomain
from repro.faults.plan import FaultPlan, FaultRule
from repro.transport.wire import WireTransport

__all__ = [
    "ChaosReport",
    "run_cross_transport_scenario",
    "standard_chaos_plan",
    "write_failure_artifact",
]

#: Object id shared objects are coordinated under in every scenario.
OBJECT_ID = "chaos-doc"


def standard_chaos_plan(seed: int) -> FaultPlan:
    """The stock chaos mix: drop + duplicate + reorder + a partition window.

    Probabilities and the partition width are chosen so the worst case the
    plan can produce (the 3-message partition window followed by the
    plan's bounded run of consecutive losses) still resolves within the
    default 10-attempt retry budget: chaos exercises the recovery
    machinery, it never manufactures unwinnable runs.
    """
    return FaultPlan(
        rules=(
            FaultRule(fault="drop", probability=0.2),
            FaultRule(fault="duplicate", probability=0.3),
            FaultRule(fault="reorder", probability=0.5),
            FaultRule(fault="partition", after_message=5, until_message=8),
        ),
        seed=f"chaos-{seed}".encode("utf-8"),
        name=f"standard-chaos-{seed}",
    )


@dataclass
class ChaosReport:
    """Outcome of one cross-transport scenario, ready for comparison."""

    plan: FaultPlan
    parties: int
    split: int
    values: List[int]
    #: Per-transport summaries: outcome flags, evidence multisets, states.
    simulated: Dict[str, Any] = field(default_factory=dict)
    wired: Dict[str, Any] = field(default_factory=dict)

    def mismatches(self) -> List[str]:
        """Human-readable divergences between the two transports."""
        problems: List[str] = []
        for key in ("outcomes", "evidence", "states"):
            if self.simulated.get(key) != self.wired.get(key):
                problems.append(
                    f"{key} diverged:\n"
                    f"  simulated: {self.simulated.get(key)!r}\n"
                    f"  wired:     {self.wired.get(key)!r}"
                )
        return problems

    @property
    def converged(self) -> bool:
        return not self.mismatches()


def _uris(parties: int) -> List[str]:
    return [f"urn:org:chaos{i}" for i in range(parties)]


def _evidence_summary(organisation, run_ids) -> Dict[str, int]:
    counts: Counter = Counter()
    for run_id in run_ids:
        for record in organisation.evidence_store.evidence_for_run(run_id):
            counts[f"{record.token_type}/{record.role}"] += 1
    return dict(sorted(counts.items()))


def _drive(proposer, values):
    """Propose each value in turn; chaos may legitimately defeat a run.

    A not-agreed outcome is part of the record, not a scenario failure:
    the property under test is that *both* transports resolve each run
    the same way, agreed or not.
    """
    outcomes = []
    run_ids = []
    for value in values:
        outcome = proposer.propose_update(OBJECT_ID, {"v": value})
        outcomes.append((outcome.agreed, outcome.new_version))
        run_ids.append(outcome.run_id)
    return outcomes, run_ids


def _summarize(outcomes, run_ids, uris, org_for) -> Dict[str, Any]:
    return {
        "outcomes": outcomes,
        "evidence": {
            uri: _evidence_summary(org_for(uri), run_ids) for uri in uris
        },
        "states": {
            uri: (
                org_for(uri).shared_state(OBJECT_ID),
                org_for(uri).shared_version(OBJECT_ID),
            )
            for uri in uris
        },
    }


@contextlib.contextmanager
def _storage_profile(kind: Optional[str]) -> Iterator[Optional[str]]:
    """Provision a throwaway ``storage=`` profile of ``kind`` for one run.

    ``None`` and ``"memory"`` pass through; ``"file"`` and ``"sqlite"``
    get a fresh temporary location, removed afterwards, so chaos runs
    over persistent backends never see each other's state.
    """
    if kind is None or kind == "memory":
        yield kind
        return
    if kind not in ("file", "sqlite"):
        raise ValueError(
            f"chaos storage kind must be memory, file or sqlite, got {kind!r}"
        )
    directory = tempfile.mkdtemp(prefix="chaos-storage-")
    try:
        if kind == "file":
            yield f"file:{directory}"
        else:
            yield f"sqlite:{os.path.join(directory, 'chaos.db')}"
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _simulated_run(
    plan: FaultPlan,
    parties: int,
    values: List[int],
    storage: Optional[str] = None,
):
    uris = _uris(parties)
    with _storage_profile(storage) as profile:
        domain = TrustDomain.create(
            uris,
            scheme="hmac",
            clock=SimulatedClock(),
            fault_plan=plan,
            storage=profile,
        )
        domain.share_object(OBJECT_ID, {"v": 0})
        outcomes, run_ids = _drive(domain.organisation(uris[0]), values)
        return _summarize(
            outcomes, run_ids, uris, lambda uri: domain.organisation(uri)
        )


def _wire_run(
    plan: FaultPlan,
    parties: int,
    split: int,
    values: List[int],
    storage: Optional[str] = None,
    peering_cap: Optional[int] = None,
):
    uris = _uris(parties)
    local_a, local_b = uris[:split], uris[split:]
    with _storage_profile(storage) as profile, WireTransport(
        local_parties=local_a,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as ta, WireTransport(
        local_parties=local_b,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as tb:
        # The plan installs on both nodes; with split=1 only the proposer's
        # node originates accounted traffic, so only its injector draws --
        # which is exactly what makes the draw sequence match the simulator.
        # Both nodes share one storage profile: under ``sqlite`` that is
        # one embedded-KV file serving every party of both processes.
        peering = (
            PeeringConfig(max_live_channels=peering_cap)
            if peering_cap is not None
            else None
        )
        da = TrustDomain.create(
            uris,
            transport=ta,
            scheme="hmac",
            fault_plan=plan,
            storage=profile,
            peering=peering,
        )
        db = TrustDomain.create(
            uris, transport=tb, scheme="hmac", fault_plan=plan, storage=profile
        )
        ta.introduce_to(tb.host, tb.port)
        tb.introduce_to(ta.host, ta.port)
        da.share_object(OBJECT_ID, {"v": 0})
        db.share_object(OBJECT_ID, {"v": 0})
        outcomes, run_ids = _drive(da.organisation(uris[0]), values)

        def org_for(uri):
            return (da if uri in da.organisations else db).organisation(uri)

        return _summarize(outcomes, run_ids, uris, org_for)


def run_cross_transport_scenario(
    plan: FaultPlan,
    parties: int = 3,
    split: int = 1,
    values: Optional[List[int]] = None,
    storage: Optional[str] = None,
    peering_cap: Optional[int] = None,
) -> ChaosReport:
    """Replay ``plan`` on the simulator and a 2-node wire loopback.

    Returns a :class:`ChaosReport` whose :meth:`~ChaosReport.mismatches`
    is empty exactly when the two transports resolved every run the same
    way and left identical evidence and replica state everywhere.  With
    ``split=1`` (the default) the comparison is exact per-party equality;
    larger splits move responders off the proposer's node, which changes
    the wire draw sequence, so only use them for convergence smoke tests.

    ``storage`` selects a backend kind (``"memory"``/``"file"``/
    ``"sqlite"``) provisioned as a throwaway profile per run, so the
    convergence property is also checked over persistent evidence
    backends -- under ``sqlite`` both wire nodes share one embedded-KV
    file.  ``peering_cap`` enables the lazy channel manager on the
    proposer's wire node with that ``max_live_channels``, making channel
    eviction/recreation churn part of the faulted scenario.
    """
    values = list(values) if values is not None else [1, 2, 3]
    if not 1 <= split < parties:
        raise ValueError("split must keep at least one party on each node")
    report = ChaosReport(
        plan=plan, parties=parties, split=split, values=values
    )
    report.simulated = _simulated_run(plan, parties, values, storage=storage)
    report.wired = _wire_run(
        plan, parties, split, values, storage=storage, peering_cap=peering_cap
    )
    return report


def write_failure_artifact(report: ChaosReport, directory: str) -> str:
    """Dump the plan schedule and both summaries for offline replay.

    Returns the artifact path.  The schedule half round-trips through
    :meth:`FaultPlan.from_schedule`, so a CI failure is reproducible from
    the artifact alone.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"{report.plan.name or 'fault-plan'}.json"
    )
    payload = {
        "schedule": report.plan.to_schedule(),
        "parties": report.parties,
        "split": report.split,
        "values": report.values,
        "mismatches": report.mismatches(),
        "simulated": report.simulated,
        "wired": report.wired,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay a seeded chaos plan across both transports."
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--parties", type=int, default=3)
    parser.add_argument(
        "--values", type=int, nargs="+", default=None,
        help="update values to propose (default: 1 2 3)",
    )
    parser.add_argument(
        "--artifact-dir", default=None,
        help="write a replayable failure artifact here on divergence",
    )
    options = parser.parse_args(argv)
    plan = standard_chaos_plan(options.seed)
    report = run_cross_transport_scenario(
        plan, parties=options.parties, values=options.values
    )
    if report.converged:
        print(f"converged: plan {plan.name} over {options.parties} parties")
        return 0
    for problem in report.mismatches():
        print(problem)
    if options.artifact_dir:
        print(f"artifact: {write_failure_artifact(report, options.artifact_dir)}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
