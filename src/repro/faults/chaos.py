"""Cross-transport chaos scenarios: one seeded plan, two transports.

The acceptance property of the unified fault plane: replaying the *same*
seeded :class:`~repro.faults.FaultPlan` over the in-process simulator and
over a 2-node wire loopback deployment must leave every party with the
same evidence multiset and the same replica state.  With the proposer
alone on its wire node, the wire node's admission sequence is identical
to the simulator's global sequence, so the same seed produces the same
fault pattern on both transports and the comparison can be exact -- not
merely "both converged somewhere".

Statistics are deliberately *not* compared under faults: retry attempts
against a partitioned peer depend on per-link bookkeeping that the two
deployments spread differently across nodes.  Evidence and state are the
paper's non-repudiation currency; those must match token for token.

This module is imported explicitly (``repro.faults.chaos``), not
re-exported by the package: it pulls in the full core stack, which the
injector-level modules must not.

Run from the command line for a quick reproduction::

    PYTHONPATH=src python -m repro.faults.chaos --seed 7
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.clock import SimulatedClock
from repro.core.config import ObservabilityConfig, PeeringConfig
from repro.core.sharing import set_run_fault_injector
from repro.core.trust_domain import TrustDomain
from repro.faults.failpoints import VERB_CLOSE
from repro.faults.plan import FaultPlan, FaultRule
from repro.observability import runtime as _obs_runtime
from repro.observability.tracing import render_tree
from repro.transport.wire import WireTransport
from repro.transport.wire.network import FAILPOINT_CLIENT_BEFORE_SEND

__all__ = [
    "ChaosReport",
    "SelfHealingReport",
    "run_cross_transport_scenario",
    "run_self_healing_scenario",
    "standard_chaos_plan",
    "write_failure_artifact",
    "write_self_healing_artifact",
    "write_trace_artifact",
]

#: Object id shared objects are coordinated under in every scenario.
OBJECT_ID = "chaos-doc"


def standard_chaos_plan(seed: int) -> FaultPlan:
    """The stock chaos mix: drop + duplicate + reorder + a partition window.

    Probabilities and the partition width are chosen so the worst case the
    plan can produce (the 3-message partition window followed by the
    plan's bounded run of consecutive losses) still resolves within the
    default 10-attempt retry budget: chaos exercises the recovery
    machinery, it never manufactures unwinnable runs.
    """
    return FaultPlan(
        rules=(
            FaultRule(fault="drop", probability=0.2),
            FaultRule(fault="duplicate", probability=0.3),
            FaultRule(fault="reorder", probability=0.5),
            FaultRule(fault="partition", after_message=5, until_message=8),
        ),
        seed=f"chaos-{seed}".encode("utf-8"),
        name=f"standard-chaos-{seed}",
    )


@dataclass
class ChaosReport:
    """Outcome of one cross-transport scenario, ready for comparison."""

    plan: FaultPlan
    parties: int
    split: int
    values: List[int]
    #: Per-transport summaries: outcome flags, evidence multisets, states.
    simulated: Dict[str, Any] = field(default_factory=dict)
    wired: Dict[str, Any] = field(default_factory=dict)

    def mismatches(self) -> List[str]:
        """Human-readable divergences between the two transports."""
        problems: List[str] = []
        for key in ("outcomes", "evidence", "states"):
            if self.simulated.get(key) != self.wired.get(key):
                problems.append(
                    f"{key} diverged:\n"
                    f"  simulated: {self.simulated.get(key)!r}\n"
                    f"  wired:     {self.wired.get(key)!r}"
                )
        return problems

    @property
    def converged(self) -> bool:
        return not self.mismatches()


def _uris(parties: int) -> List[str]:
    return [f"urn:org:chaos{i}" for i in range(parties)]


def _evidence_summary(organisation, run_ids) -> Dict[str, int]:
    counts: Counter = Counter()
    for run_id in run_ids:
        for record in organisation.evidence_store.evidence_for_run(run_id):
            counts[f"{record.token_type}/{record.role}"] += 1
    return dict(sorted(counts.items()))


def _drive(proposer, values):
    """Propose each value in turn; chaos may legitimately defeat a run.

    A not-agreed outcome is part of the record, not a scenario failure:
    the property under test is that *both* transports resolve each run
    the same way, agreed or not.
    """
    outcomes = []
    run_ids = []
    for value in values:
        outcome = proposer.propose_update(OBJECT_ID, {"v": value})
        outcomes.append((outcome.agreed, outcome.new_version))
        run_ids.append(outcome.run_id)
    return outcomes, run_ids


def _summarize(outcomes, run_ids, uris, org_for) -> Dict[str, Any]:
    return {
        "outcomes": outcomes,
        "evidence": {
            uri: _evidence_summary(org_for(uri), run_ids) for uri in uris
        },
        "states": {
            uri: (
                org_for(uri).shared_state(OBJECT_ID),
                org_for(uri).shared_version(OBJECT_ID),
            )
            for uri in uris
        },
    }


@contextlib.contextmanager
def _storage_profile(kind: Optional[str]) -> Iterator[Optional[str]]:
    """Provision a throwaway ``storage=`` profile of ``kind`` for one run.

    ``None`` and ``"memory"`` pass through; ``"file"`` and ``"sqlite"``
    get a fresh temporary location, removed afterwards, so chaos runs
    over persistent backends never see each other's state.
    """
    if kind is None or kind == "memory":
        yield kind
        return
    if kind not in ("file", "sqlite"):
        raise ValueError(
            f"chaos storage kind must be memory, file or sqlite, got {kind!r}"
        )
    directory = tempfile.mkdtemp(prefix="chaos-storage-")
    try:
        if kind == "file":
            yield f"file:{directory}"
        else:
            yield f"sqlite:{os.path.join(directory, 'chaos.db')}"
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@contextlib.contextmanager
def _leg_tracing(capture: bool):
    """Record one leg's span trees without disturbing the host's plane.

    Yields a renderer mapping run ids to their ASCII span trees (empty when
    ``capture`` is off).  A fresh tracing-only plane is enabled for the leg
    and whatever observability state the process had before is suspended
    around it, so each leg's trace is self-contained.  Capture cannot
    perturb convergence: trace context rides out-of-band and injector draws
    never touch the observability plane.
    """
    if not capture:
        yield lambda run_ids: {}
        return
    previous = _obs_runtime.suspend()
    _obs_runtime.enable(ObservabilityConfig(metrics=False))
    collector = _obs_runtime.STATE.tracing
    try:
        def render(run_ids):
            spans = collector.spans()
            return {
                run_id: render_tree(spans, run_id) for run_id in run_ids
            }
        yield render
    finally:
        _obs_runtime.disable()
        _obs_runtime.resume(previous)


def _simulated_run(
    plan: FaultPlan,
    parties: int,
    values: List[int],
    storage: Optional[str] = None,
    capture_traces: bool = False,
):
    uris = _uris(parties)
    with _storage_profile(storage) as profile, _leg_tracing(
        capture_traces
    ) as render:
        domain = TrustDomain.create(
            uris,
            scheme="hmac",
            clock=SimulatedClock(),
            fault_plan=plan,
            storage=profile,
        )
        domain.share_object(OBJECT_ID, {"v": 0})
        outcomes, run_ids = _drive(domain.organisation(uris[0]), values)
        summary = _summarize(
            outcomes, run_ids, uris, lambda uri: domain.organisation(uri)
        )
        if capture_traces:
            summary["traces"] = render(run_ids)
        return summary


def _wire_run(
    plan: FaultPlan,
    parties: int,
    split: int,
    values: List[int],
    storage: Optional[str] = None,
    peering_cap: Optional[int] = None,
    capture_traces: bool = False,
):
    uris = _uris(parties)
    local_a, local_b = uris[:split], uris[split:]
    with _storage_profile(storage) as profile, _leg_tracing(
        capture_traces
    ) as render, WireTransport(
        local_parties=local_a,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as ta, WireTransport(
        local_parties=local_b,
        await_remote_credentials=False,
        clock=SimulatedClock(),
    ) as tb:
        # The plan installs on both nodes; with split=1 only the proposer's
        # node originates accounted traffic, so only its injector draws --
        # which is exactly what makes the draw sequence match the simulator.
        # Both nodes share one storage profile: under ``sqlite`` that is
        # one embedded-KV file serving every party of both processes.
        peering = (
            PeeringConfig(max_live_channels=peering_cap)
            if peering_cap is not None
            else None
        )
        da = TrustDomain.create(
            uris,
            transport=ta,
            scheme="hmac",
            fault_plan=plan,
            storage=profile,
            peering=peering,
        )
        db = TrustDomain.create(
            uris, transport=tb, scheme="hmac", fault_plan=plan, storage=profile
        )
        ta.introduce_to(tb.host, tb.port)
        tb.introduce_to(ta.host, ta.port)
        da.share_object(OBJECT_ID, {"v": 0})
        db.share_object(OBJECT_ID, {"v": 0})
        outcomes, run_ids = _drive(da.organisation(uris[0]), values)

        def org_for(uri):
            return (da if uri in da.organisations else db).organisation(uri)

        summary = _summarize(outcomes, run_ids, uris, org_for)
        if capture_traces:
            summary["traces"] = render(run_ids)
        return summary


def run_cross_transport_scenario(
    plan: FaultPlan,
    parties: int = 3,
    split: int = 1,
    values: Optional[List[int]] = None,
    storage: Optional[str] = None,
    peering_cap: Optional[int] = None,
    capture_traces: bool = False,
) -> ChaosReport:
    """Replay ``plan`` on the simulator and a 2-node wire loopback.

    Returns a :class:`ChaosReport` whose :meth:`~ChaosReport.mismatches`
    is empty exactly when the two transports resolved every run the same
    way and left identical evidence and replica state everywhere.  With
    ``split=1`` (the default) the comparison is exact per-party equality;
    larger splits move responders off the proposer's node, which changes
    the wire draw sequence, so only use them for convergence smoke tests.

    ``storage`` selects a backend kind (``"memory"``/``"file"``/
    ``"sqlite"``) provisioned as a throwaway profile per run, so the
    convergence property is also checked over persistent evidence
    backends -- under ``sqlite`` both wire nodes share one embedded-KV
    file.  ``peering_cap`` enables the lazy channel manager on the
    proposer's wire node with that ``max_live_channels``, making channel
    eviction/recreation churn part of the faulted scenario.

    ``capture_traces`` records each leg under a throwaway tracing plane
    and attaches the rendered per-run span trees to the summaries (under
    ``"traces"``), so a divergence artifact shows *where inside the run*
    the two transports parted ways, not just the end states.
    """
    values = list(values) if values is not None else [1, 2, 3]
    if not 1 <= split < parties:
        raise ValueError("split must keep at least one party on each node")
    report = ChaosReport(
        plan=plan, parties=parties, split=split, values=values
    )
    report.simulated = _simulated_run(
        plan, parties, values, storage=storage, capture_traces=capture_traces
    )
    report.wired = _wire_run(
        plan,
        parties,
        split,
        values,
        storage=storage,
        peering_cap=peering_cap,
        capture_traces=capture_traces,
    )
    return report


def write_failure_artifact(report: ChaosReport, directory: str) -> str:
    """Dump the plan schedule and both summaries for offline replay.

    Returns the artifact path.  The schedule half round-trips through
    :meth:`FaultPlan.from_schedule`, so a CI failure is reproducible from
    the artifact alone.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"{report.plan.name or 'fault-plan'}.json"
    )
    payload = {
        "schedule": report.plan.to_schedule(),
        "parties": report.parties,
        "split": report.split,
        "values": report.values,
        "mismatches": report.mismatches(),
        "simulated": report.simulated,
        "wired": report.wired,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def write_trace_artifact(report: ChaosReport, directory: str) -> str:
    """Dump both legs' rendered span trees next to the replayable plan.

    Requires the report to have been produced with ``capture_traces=True``;
    runs a leg never traced render as ``(no spans recorded)``.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"{report.plan.name or 'fault-plan'}-traces.txt"
    )
    sections = []
    for leg, summary in (("simulated", report.simulated), ("wired", report.wired)):
        sections.append(f"== {leg} leg ==")
        traces = summary.get("traces") or {}
        if not traces:
            sections.append("(no spans recorded)")
        for run_id in sorted(traces):
            sections.append(traces[run_id])
        sections.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections))
    return path


# -- self-healing replicas: kill + restart + resync ----------------------------------
#
# The second chaos scenario exercises the recovery stack end to end: a
# replica is killed *post-commit* (it already applied agreed state), an
# outcome wave is coordinated while it is dead (so the wave is effectively
# partitioned away from it and queued for re-delivery), and the restarted
# replica must converge with zero manual re-registration -- durable resume
# picks up its recorded version, journal recovery aborts its half-proposed
# run, and restart-time resync pulls the versions it missed.  Both legs run
# the same narrative; the wire leg kills a real subprocess through the
# client-side crash failpoint and restarts it over its persistent store.

SELF_HEALING_RUNS = ("bootstrap", "crashed", "partitioned", "confirm")


class SelfHealingScenarioError(AssertionError):
    """A leg of the self-healing scenario broke one of its invariants."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SelfHealingScenarioError(message)


class _SimulatedCrash(Exception):
    """In-process stand-in for the wire leg's SIGKILL."""


def _self_healing_values(seed: int) -> Dict[str, Dict[str, int]]:
    """The update payloads of one seeded scenario, identical on both legs."""
    return {
        label: {"v": seed * 10 + offset}
        for offset, label in enumerate(SELF_HEALING_RUNS, start=1)
    }


def _self_healing_profile(kind: str, directory: Path, name: str) -> str:
    """A persistent ``storage=`` profile under ``directory``.

    Unlike the cross-transport scenario, ``memory`` is not an option here:
    the victim restarts from nothing but its store, so the store must
    survive the process.
    """
    if kind == "file":
        return f"file:{directory / (name + '-store')}"
    if kind == "sqlite":
        return f"sqlite:{directory / (name + '.db')}"
    raise ValueError(
        "self-healing storage must be file or sqlite "
        f"(a restart needs a persistent store), got {kind!r}"
    )


def _wait_for(
    predicate: Callable[[], bool], timeout: float, message: str
) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise SelfHealingScenarioError(message)


@dataclass
class SelfHealingReport:
    """Outcome of one kill/restart/resync scenario on both transports."""

    seed: int
    storage: str
    simulated: Dict[str, Any] = field(default_factory=dict)
    wired: Dict[str, Any] = field(default_factory=dict)

    def mismatches(self) -> List[str]:
        problems: List[str] = []
        for key in ("versions", "states", "evidence", "recovery"):
            if self.simulated.get(key) != self.wired.get(key):
                problems.append(
                    f"{key} diverged:\n"
                    f"  simulated: {self.simulated.get(key)!r}\n"
                    f"  wired:     {self.wired.get(key)!r}"
                )
        return problems

    @property
    def converged(self) -> bool:
        return not self.mismatches()


def _resync_from(stale, fresh) -> int:
    """Controller-level anti-entropy pull (the simulator has no transport).

    The in-process analogue of the wire node's resync exchange: compare
    per-object vectors, pull the missing signed outcome records from the
    fresher controller, apply them signature-checked and version-guarded.
    """
    applied = 0
    for object_id, remote in fresh.resync_vector().items():
        if not stale.is_shared(object_id):
            continue
        local_version = stale.get_version(object_id)
        if remote["version"] <= local_version:
            continue
        for record in fresh.resync_records(object_id, local_version):
            if stale.apply_resync_record(dict(record)):
                applied += 1
    return applied


def _simulated_self_healing(seed: int, storage_uri: str) -> Dict[str, Any]:
    from repro.crypto.signature import get_scheme

    uris = _uris(3)
    proposer_uri, responder_uri, victim_uri = uris
    values = _self_healing_values(seed)
    # Identities survive the restart (the wire victim persists its keypair
    # the same way): resync records signed before the crash must still
    # verify in the rebuilt domain.
    keypairs = {uri: get_scheme("hmac").generate_keypair() for uri in uris}

    def build_domain() -> TrustDomain:
        return TrustDomain.create(
            uris,
            scheme="hmac",
            clock=SimulatedClock(),
            storage=storage_uri,
            durable_runs=True,
            durable_state=True,
            outcome_redelivery=True,
            scheduled_retries=True,
            keypair_factory=lambda uri: keypairs[uri],
        )

    first = build_domain()
    first.share_object(OBJECT_ID, {"v": 0})
    bootstrap = first.organisation(proposer_uri).propose_update(
        OBJECT_ID, values["bootstrap"]
    )
    _require(bootstrap.agreed, "bootstrap update did not agree")

    # Partitioned wave: every member decides (agreement is unanimous, so
    # the victim must be reachable through phase 1), then the link to the
    # victim is severed right at the commit barrier -- the victim holds an
    # accepted decision but the outcome never arrives, and the proposer
    # queues a re-delivery for it.
    severed: List[str] = []

    def sever_wave(stage: str, run) -> None:
        if stage == "after-journal-committed" and not severed:
            severed.append(run.run_id)
            first.network.partition.sever(proposer_uri, victim_uri)

    set_run_fault_injector(sever_wave)
    try:
        partitioned = first.organisation(proposer_uri).propose_update(
            OBJECT_ID, values["partitioned"]
        )
    finally:
        set_run_fault_injector(None)
    _require(partitioned.agreed, "partitioned update did not agree")
    _require(
        severed == [partitioned.run_id], "commit-barrier sever never fired"
    )
    _require(
        first.organisation(proposer_uri).controller.pending_redeliveries()
        == [partitioned.run_id],
        "undelivered outcome wave was not queued for re-delivery",
    )

    # The victim dies post-commit (it holds agreed version 1): its own next
    # proposal crashes at the journal barrier -- the in-process analogue of
    # the wire leg's client-send SIGKILL, leaving a half-proposed journal
    # entry behind and nothing at any peer.
    crashed: List[str] = []

    def crash(stage: str, run) -> None:
        if stage == "after-journal-proposed" and not crashed:
            crashed.append(run.run_id)
            raise _SimulatedCrash(stage)

    set_run_fault_injector(crash)
    try:
        with contextlib.suppress(_SimulatedCrash):
            first.organisation(victim_uri).propose_update(
                OBJECT_ID, values["crashed"]
            )
    finally:
        set_run_fault_injector(None)
    _require(len(crashed) == 1, "crash injector never fired")
    crashed_run_id = crashed[0]

    # Restart the world from nothing but its durable stores.
    second = build_domain()
    second.share_object(OBJECT_ID, {"v": 0})
    recovered = second.recover_runs()
    _require(
        recovered[victim_uri] == {crashed_run_id: "aborted"},
        f"victim recovery did not abort the crashed run: {recovered!r}",
    )
    victim = second.organisation(victim_uri)
    resumed_version = victim.shared_version(OBJECT_ID)
    _require(
        resumed_version == 1,
        f"durable resume landed at version {resumed_version}, wanted 1",
    )
    applied = _resync_from(
        victim.controller, second.organisation(proposer_uri).controller
    )
    confirm = victim.propose_update(OBJECT_ID, values["confirm"])
    _require(confirm.agreed, "confirm update did not agree after resync")

    labelled = {
        "bootstrap": bootstrap.run_id,
        "crashed": crashed_run_id,
        "partitioned": partitioned.run_id,
        "confirm": confirm.run_id,
    }
    org_for = second.organisation
    return {
        "versions": {uri: org_for(uri).shared_version(OBJECT_ID) for uri in uris},
        "states": {uri: org_for(uri).shared_state(OBJECT_ID) for uri in uris},
        "evidence": {
            label: {
                uri: _evidence_summary(org_for(uri), [run_id]) for uri in uris
            }
            for label, run_id in labelled.items()
        },
        "recovery": {
            "crashed_run": "aborted",
            "resumed_version": resumed_version,
            "resync_applied": applied,
        },
    }


# -- the wire leg's victim process ---------------------------------------------------
#
# ``python -m repro.faults.chaos --victim-dir ... --victim-phase run`` is the
# victim's entry point.  Its first life introduces itself, applies the
# bootstrap wave, then arms the client-side crash failpoint and proposes into
# it: the armed callable SIGKILLs the process on its first outbound protocol
# send, after the proposal hit the journal.  Its second life restarts over
# the same keypair and stores and must converge without re-registration.


def _victim_keypair(directory: Path):
    """The victim's identity, persisted so both lives sign as the same party."""
    from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
    from repro.crypto.signature import get_scheme

    key_path = directory / "victim-keypair.json"
    if key_path.exists():
        payload = json.loads(key_path.read_text())
        return KeyPair(
            private=PrivateKey.from_dict(payload["private"]),
            public=PublicKey.from_dict(payload["public"]),
        )
    keypair = get_scheme("hmac").generate_keypair()
    key_path.write_text(
        json.dumps(
            {
                "private": keypair.private.to_dict(),
                "public": keypair.public.to_dict(),
            }
        )
    )
    return keypair


def _victim_domain(directory: Path, storage_kind: str):
    uris = _uris(3)
    victim_uri = uris[2]
    endpoint = json.loads((directory / "host.json").read_text())
    keypair = _victim_keypair(directory)
    # A virtual clock keeps the victim's retry/orphan timers dormant unless
    # a fan-out drives them, so nothing fires between deciding the
    # partitioned wave and dying -- the restart owns all recovery.
    transport = WireTransport(
        local_parties=[victim_uri],
        peers={
            uri: (endpoint["host"], endpoint["port"]) for uri in uris[:2]
        },
        clock=SimulatedClock(),
    )
    domain = TrustDomain.create(
        uris,
        transport=transport,
        scheme="hmac",
        storage=_self_healing_profile(storage_kind, directory, "victim"),
        durable_runs=True,
        durable_state=True,
        outcome_redelivery=True,
        resync_on_connect=True,
        scheduled_retries=True,
        keypair_factory=lambda uri: keypair,
    )
    return domain, transport, endpoint


def _victim_run(directory: Path, seed: int, storage_kind: str) -> None:
    """First life: decide the host's waves, then die on the next send."""
    values = _self_healing_values(seed)
    domain, transport, endpoint = _victim_domain(directory, storage_kind)
    uris = _uris(3)
    organisation = domain.organisation(uris[2])
    domain.share_object(OBJECT_ID, {"v": 0})
    transport.introduce_to(endpoint["host"], endpoint["port"])
    (directory / "victim-ready.json").write_text(
        json.dumps({"host": transport.host, "port": transport.port})
    )
    _wait_for(
        lambda: organisation.shared_version(OBJECT_ID) == 1,
        timeout=60.0,
        message="bootstrap wave never reached the victim",
    )
    # The host now coordinates the partitioned wave: this replica decides
    # it (phase 1 rides server replies, never the armed client path), but
    # the outcome is dropped host-side.  runs.json appearing is the signal
    # that the wave settled and this replica's turn to die has come.
    _wait_for(
        (directory / "runs.json").exists,
        timeout=60.0,
        message="host never published the partitioned run",
    )
    transport.network.failpoints.arm(
        FAILPOINT_CLIENT_BEFORE_SEND,
        action=lambda _message: os.kill(os.getpid(), signal.SIGKILL),
        max_shots=1,
    )
    organisation.propose_update(OBJECT_ID, values["crashed"])
    # Unreachable: the proposal's first outbound send fired the failpoint.
    transport.close()
    raise SelfHealingScenarioError("client crash failpoint never fired")


def _victim_recover(directory: Path, seed: int, storage_kind: str) -> None:
    """Second life: durable resume, journal recovery, resync, keep working."""
    values = _self_healing_values(seed)
    runs = json.loads((directory / "runs.json").read_text())
    domain, transport, endpoint = _victim_domain(directory, storage_kind)
    uris = _uris(3)
    organisation = domain.organisation(uris[2])
    domain.share_object(OBJECT_ID, {"v": 0})

    resumed_version = organisation.shared_version(OBJECT_ID)
    _require(
        resumed_version == 1,
        f"durable resume landed at version {resumed_version}, wanted 1",
    )
    resumes = [
        record.details
        for record in organisation.audit_records(subject=OBJECT_ID)
        if record.details.get("event") == "object-resumed"
    ]
    _require(
        bool(resumes) and resumes[-1].get("resumed_version") == 1,
        f"restart did not resume from the recorded version: {resumes!r}",
    )
    actions = organisation.recover_runs()
    _require(
        list(actions.values()) == ["aborted"],
        f"journal recovery did not abort the half-proposed run: {actions!r}",
    )
    (crashed_run_id,) = actions

    # Reconnect: anti-entropy rides the re-introduction (resync_on_connect),
    # pulling the version agreed while this replica was dead.
    transport.introduce_to(endpoint["host"], endpoint["port"])
    _require(
        organisation.shared_version(OBJECT_ID) == 2,
        "resync on reconnect did not catch the replica up",
    )
    resync_applied = sum(
        1
        for record in organisation.audit_records(subject=runs["partitioned"])
        if record.details.get("event") == "resync-applied"
    )
    sweep = transport.resync_with_peers()
    _require(
        all(
            counts == {"pulled": 0, "pushed": 0} for counts in sweep.values()
        ),
        f"resync was not idempotent after catch-up: {sweep!r}",
    )

    confirm = organisation.propose_update(OBJECT_ID, values["confirm"])
    _require(confirm.agreed, "confirm update did not agree after recovery")

    labelled = {
        "bootstrap": runs["bootstrap"],
        "crashed": crashed_run_id,
        "partitioned": runs["partitioned"],
        "confirm": confirm.run_id,
    }
    result = {
        "crashed_run_id": crashed_run_id,
        "confirm_run_id": confirm.run_id,
        "version": organisation.shared_version(OBJECT_ID),
        "state": organisation.shared_state(OBJECT_ID),
        "evidence": {
            label: _evidence_summary(organisation, [run_id])
            for label, run_id in labelled.items()
        },
        "recovery": {
            "crashed_run": "aborted",
            "resumed_version": resumed_version,
            "resync_applied": resync_applied,
        },
    }
    (directory / "victim-result.json").write_text(json.dumps(result))
    transport.close()


def _victim_main(directory: Path, phase: str, seed: int, storage_kind: str) -> int:
    try:
        if phase == "run":
            _victim_run(directory, seed, storage_kind)
        else:
            _victim_recover(directory, seed, storage_kind)
    except Exception as error:  # surfaced to the host through the error file
        (directory / "victim-error.txt").write_text(
            f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
        )
        return 2
    return 0


def _spawn_victim(
    directory: Path, phase: str, seed: int, storage_kind: str
) -> subprocess.Popen:
    source_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [source_root, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.faults.chaos",
            "--victim-dir",
            str(directory),
            "--victim-phase",
            phase,
            "--seed",
            str(seed),
            "--self-healing-storage",
            storage_kind,
        ],
        env=env,
    )


def _victim_failure(directory: Path, fallback: str) -> str:
    error_file = directory / "victim-error.txt"
    if error_file.exists():
        return f"{fallback}:\n{error_file.read_text()}"
    return fallback


def _wired_self_healing(
    seed: int, directory: Path, storage_kind: str
) -> Dict[str, Any]:
    uris = _uris(3)
    proposer_uri, responder_uri, victim_uri = uris
    values = _self_healing_values(seed)
    with WireTransport(
        local_parties=[proposer_uri, responder_uri],
        await_remote_credentials=False,  # the victim introduces itself
        clock=SimulatedClock(),
    ) as transport:
        # The virtual clock keeps the host's retry scheduler dormant unless
        # driven, so re-delivery timing never races the victim's resync --
        # the comparison with the simulated leg stays exact.
        domain = TrustDomain.create(
            uris,
            transport=transport,
            scheme="hmac",
            storage=_self_healing_profile(storage_kind, directory, "host"),
            durable_runs=True,
            durable_state=True,
            outcome_redelivery=True,
            resync_on_connect=True,
            scheduled_retries=True,
        )
        (directory / "host.json").write_text(
            json.dumps({"host": transport.host, "port": transport.port})
        )
        domain.share_object(OBJECT_ID, {"v": 0})
        proposer = domain.organisation(proposer_uri)

        first = _spawn_victim(directory, "run", seed, storage_kind)
        try:
            _wait_for(
                (directory / "victim-ready.json").exists,
                timeout=60.0,
                message=_victim_failure(
                    directory, "victim never introduced itself"
                ),
            )
            bootstrap = proposer.propose_update(OBJECT_ID, values["bootstrap"])
            _require(bootstrap.agreed, "bootstrap update did not agree")

            # Partitioned wave: the victim decides phase 1 normally; at the
            # commit barrier the proposer's client path to it is closed, so
            # only the outcome delivery is partitioned away and queued for
            # re-delivery (agreement is unanimous, so the victim must stay
            # reachable until the barrier).
            def sever_wave(stage: str, run) -> None:
                if stage == "after-journal-committed":
                    transport.network.failpoints.arm(
                        FAILPOINT_CLIENT_BEFORE_SEND,
                        action=lambda message: VERB_CLOSE
                        if getattr(message, "destination", None) == victim_uri
                        else None,
                        max_shots=None,
                    )

            set_run_fault_injector(sever_wave)
            try:
                partitioned = proposer.propose_update(
                    OBJECT_ID, values["partitioned"]
                )
            finally:
                set_run_fault_injector(None)
                transport.network.failpoints.disarm(
                    FAILPOINT_CLIENT_BEFORE_SEND
                )
            _require(partitioned.agreed, "partitioned update did not agree")
            _require(
                proposer.controller.pending_redeliveries()
                == [partitioned.run_id],
                "undelivered outcome wave was not queued for re-delivery",
            )

            # Publishing the run ids doubles as the victim's go-signal: it
            # now proposes into its armed client crash failpoint and dies
            # post-commit, holding version 1 and a half-proposed journal.
            (directory / "runs.json").write_text(
                json.dumps(
                    {
                        "bootstrap": bootstrap.run_id,
                        "partitioned": partitioned.run_id,
                    }
                )
            )
            _require(
                first.wait(timeout=60) == -signal.SIGKILL,
                _victim_failure(
                    directory, "victim was not SIGKILLed by its crash failpoint"
                ),
            )
        finally:
            if first.poll() is None:
                first.kill()

        second = _spawn_victim(directory, "recover", seed, storage_kind)
        try:
            _require(
                second.wait(timeout=60) == 0,
                _victim_failure(directory, "victim recovery failed"),
            )
        finally:
            if second.poll() is None:
                second.kill()
        result = json.loads((directory / "victim-result.json").read_text())

        host_uris = (proposer_uri, responder_uri)
        _wait_for(
            lambda: all(
                domain.organisation(uri).shared_version(OBJECT_ID) == 3
                for uri in host_uris
            ),
            timeout=30.0,
            message="host replicas never applied the confirm update",
        )

        # The confirm version superseded the queued re-delivery; driving the
        # scheduler must retire it without touching the converged victim.
        scheduler = domain.retry_scheduler
        scheduler.drive_until(
            lambda: proposer.controller.pending_redeliveries() == []
        )
        redelivery_events = {
            record.details.get("event")
            for record in proposer.audit_records(subject=partitioned.run_id)
        }
        _require(
            "outcome-redelivery-superseded" in redelivery_events,
            f"re-delivery did not retire as superseded: {redelivery_events!r}",
        )
        _require(
            scheduler.pending_timers() == 0,
            "host scheduler leaked timers after convergence",
        )

        labelled = {
            "bootstrap": bootstrap.run_id,
            "crashed": result["crashed_run_id"],
            "partitioned": partitioned.run_id,
            "confirm": result["confirm_run_id"],
        }
        versions = {
            uri: domain.organisation(uri).shared_version(OBJECT_ID)
            for uri in host_uris
        }
        versions[victim_uri] = result["version"]
        states = {
            uri: domain.organisation(uri).shared_state(OBJECT_ID)
            for uri in host_uris
        }
        states[victim_uri] = result["state"]
        evidence = {
            label: {
                uri: _evidence_summary(domain.organisation(uri), [run_id])
                for uri in host_uris
            }
            for label, run_id in labelled.items()
        }
        for label in evidence:
            evidence[label][victim_uri] = result["evidence"][label]
        return {
            "versions": versions,
            "states": states,
            "evidence": evidence,
            "recovery": result["recovery"],
        }


def run_self_healing_scenario(
    seed: int, storage: str = "sqlite"
) -> SelfHealingReport:
    """Kill a replica post-commit, restart it, and check full convergence.

    Runs the same seeded narrative on the simulator and on a 2-node wire
    deployment whose victim is a real subprocess SIGKILLed by the
    client-side crash failpoint: bootstrap update, victim dies with a
    half-proposed run, an update is agreed without it (outcome wave
    partitioned away, re-delivery queued), then the victim restarts over
    its ``storage=`` profile -- durable resume + journal recovery + resync
    must reconverge every replica with zero manual re-registration.  The
    report's :meth:`~SelfHealingReport.mismatches` is empty exactly when
    both transports ended with identical versions, states, per-run evidence
    multisets, and recovery actions.
    """
    report = SelfHealingReport(seed=seed, storage=storage)
    directory = Path(tempfile.mkdtemp(prefix="chaos-self-healing-"))
    try:
        report.simulated = _simulated_self_healing(
            seed, _self_healing_profile(storage, directory, "sim")
        )
        report.wired = _wired_self_healing(seed, directory, storage)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return report


def write_self_healing_artifact(report: SelfHealingReport, directory: str) -> str:
    """Dump both legs' summaries; the seed alone replays the scenario."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"self-healing-{report.seed}.json")
    payload = {
        "seed": report.seed,
        "storage": report.storage,
        "mismatches": report.mismatches(),
        "simulated": report.simulated,
        "wired": report.wired,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay a seeded chaos plan across both transports."
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--parties", type=int, default=3)
    parser.add_argument(
        "--values", type=int, nargs="+", default=None,
        help="update values to propose (default: 1 2 3)",
    )
    parser.add_argument(
        "--artifact-dir", default=None,
        help="write a replayable failure artifact here on divergence",
    )
    parser.add_argument(
        "--trace-artifact", default=None, metavar="DIR",
        help=(
            "trace both legs and, on divergence, write their rendered "
            "span trees here alongside the replayable plan"
        ),
    )
    parser.add_argument(
        "--self-healing", action="store_true",
        help="run the kill/restart/resync scenario instead of the fault plan",
    )
    parser.add_argument(
        "--self-healing-storage", default="sqlite",
        help="persistent storage profile for --self-healing (file or sqlite)",
    )
    # Internal: entry point of the wire leg's victim subprocess.
    parser.add_argument("--victim-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument(
        "--victim-phase", choices=("run", "recover"), default=None,
        help=argparse.SUPPRESS,
    )
    options = parser.parse_args(argv)
    if options.victim_dir:
        return _victim_main(
            Path(options.victim_dir),
            options.victim_phase or "run",
            options.seed,
            options.self_healing_storage,
        )
    if options.self_healing:
        report = run_self_healing_scenario(
            options.seed, storage=options.self_healing_storage
        )
        if report.converged:
            print(
                f"converged: self-healing seed {report.seed} "
                f"over {report.storage} storage"
            )
            return 0
        for problem in report.mismatches():
            print(problem)
        if options.artifact_dir:
            print(
                "artifact: "
                f"{write_self_healing_artifact(report, options.artifact_dir)}"
            )
        return 1
    plan = standard_chaos_plan(options.seed)
    report = run_cross_transport_scenario(
        plan,
        parties=options.parties,
        values=options.values,
        capture_traces=options.trace_artifact is not None,
    )
    if report.converged:
        print(f"converged: plan {plan.name} over {options.parties} parties")
        return 0
    for problem in report.mismatches():
        print(problem)
    if options.artifact_dir:
        print(f"artifact: {write_failure_artifact(report, options.artifact_dir)}")
    if options.trace_artifact:
        print(f"traces: {write_trace_artifact(report, options.trace_artifact)}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
