"""Named failpoints for server-side crash injection.

A :class:`FailpointRegistry` is the wire server's hook surface: the server
calls :meth:`fire` at well-known points (``server-before-dispatch``,
``server-before-reply``) and acts on the returned verb.  Failpoints are
armed two ways:

* explicitly, with :meth:`arm` -- either a verb string (``"close"`` kills
  the connection at that point) or a callable action (e.g. a chaos
  harness SIGKILLing its own process);
* from a :class:`~repro.faults.plan.FaultPlan` via
  :meth:`bind_injector` -- the plan's ``crash`` rules trigger
  deterministically by failpoint *hit count*, so concurrent server
  threads never perturb the plan's admission RNG.

``fire`` returning ``"close"`` before dispatch simulates a peer dying with
the request unprocessed (sender retries a fresh delivery); firing before
the reply simulates the processed-but-reply-lost case, which is exactly
what the protocol layer's message-id dedup window must absorb.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Union

__all__ = ["FailpointRegistry", "VERB_CLOSE"]

#: The one verb the wire server interprets: drop the client connection now.
VERB_CLOSE = "close"

Action = Union[str, Callable[[Optional[Any]], Optional[str]]]


class _Armed:
    __slots__ = ("action", "max_shots", "after_hits", "hits", "shots")

    def __init__(self, action: Action, max_shots: Optional[int], after_hits: int):
        self.action = action
        self.max_shots = max_shots
        self.after_hits = after_hits
        self.hits = 0
        self.shots = 0


class FailpointRegistry:
    """Thread-safe registry of armed failpoints consulted by the server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: Dict[str, _Armed] = {}
        self._injector: Optional[Any] = None

    def bind_injector(self, injector: Optional[Any]) -> None:
        """Route crash rules of a plan's injector through this registry."""
        with self._lock:
            self._injector = injector

    def arm(
        self,
        name: str,
        action: Action = VERB_CLOSE,
        max_shots: Optional[int] = 1,
        after_hits: int = 0,
    ) -> None:
        """Arm ``name``: skip the first ``after_hits`` hits, then trigger
        ``action`` on up to ``max_shots`` subsequent hits (None = always)."""
        if max_shots is not None and max_shots < 1:
            raise ValueError("max_shots must be at least 1")
        if after_hits < 0:
            raise ValueError("after_hits must be non-negative")
        with self._lock:
            self._armed[name] = _Armed(action, max_shots, after_hits)

    def disarm(self, name: str) -> None:
        with self._lock:
            self._armed.pop(name, None)

    def fire(self, name: str, context: Optional[Any] = None) -> Optional[str]:
        """Record one hit of ``name``; return the verb to act on (or None).

        Callable actions run *outside* the registry lock (they may block or
        never return); a callable's string return value becomes the verb.
        """
        action: Optional[Action] = None
        with self._lock:
            armed = self._armed.get(name)
            if armed is not None:
                armed.hits += 1
                past_warmup = armed.hits > armed.after_hits
                shots_left = armed.max_shots is None or armed.shots < armed.max_shots
                if past_warmup and shots_left:
                    armed.shots += 1
                    action = armed.action
            injector = self._injector
        if action is None and injector is not None and injector.should_trigger(name):
            action = VERB_CLOSE
        if action is None:
            return None
        if callable(action):
            return action(context)
        return action
