"""Seeded, deterministic fault plans shared by both transports.

A :class:`FaultPlan` is a declarative schedule of faults -- message loss,
delay with jitter, duplication, reordering, frame corruption, connection
resets, partition windows and crash-at-failpoint -- that is applied
*uniformly* behind the two transport injection points:

* the :class:`~repro.transport.network.SimulatedNetwork` admits every
  message through a :class:`FaultInjector` (the legacy
  :class:`~repro.transport.network.FaultModel` is bridged through the same
  injector, draw-for-draw compatible with earlier releases);
* the :class:`~repro.transport.wire.network.WireNetwork` consults an
  injector at admission and maps the decision onto *real* socket faults
  (a corrupt frame written to the peer, a reset connection, a skipped
  round trip), so injected failures flow through the genuine
  :class:`~repro.errors.DeliveryError` taxonomy and the genuine recovery
  machinery.

Determinism: every probabilistic decision is drawn from one
:class:`~repro.crypto.rng.SecureRandom` seeded by the plan, in admission
order, so a seed reproduces the exact fault sequence.  Partition windows
and crash failpoints are *counter*-based (message index / failpoint hit
count) and involve no draws at all.  The paper's bounded-failure assumption
is enforced across all loss faults: after ``max_consecutive_failures``
consecutive injected losses on one link the next message passes, which is
what keeps retrying senders live under arbitrarily aggressive plans.

The schedule DSL (:meth:`FaultPlan.to_schedule` /
:meth:`FaultPlan.from_schedule`) is plain JSON-serialisable data, so a
failing chaos run can dump its exact plan as an artifact and a developer
can replay it verbatim.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.rng import SecureRandom

__all__ = [
    "FAULT_KINDS",
    "LOSS_FAULTS",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
]

#: Every fault kind a rule may inject.
FAULT_KINDS = (
    "drop",
    "delay",
    "duplicate",
    "reorder",
    "corrupt",
    "reset",
    "partition",
    "crash",
)

#: Kinds that destroy the message in transit; they share the consecutive-loss
#: bound that guarantees eventual delivery for retrying senders.
LOSS_FAULTS = ("drop", "corrupt", "reset")

#: Kinds whose triggering is deterministic (window / hit-count based); their
#: rules carry no probability draw.
_DETERMINISTIC_FAULTS = ("partition", "crash")


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault.

    ``sender`` / ``destination`` / ``operation`` filter which messages the
    rule applies to (``None`` matches everything).  ``after_message`` /
    ``until_message`` bound the rule to a half-open window
    ``[after_message, until_message)`` of the injector's global message
    index -- for ``crash`` rules the window counts *failpoint hits* of
    ``failpoint`` instead.  ``max_shots`` caps how many times the rule may
    trigger over the plan's lifetime.

    ``partition`` and ``crash`` rules are deterministic (no probability
    draw); the other kinds roll ``probability`` per matching message.
    """

    fault: str
    probability: float = 1.0
    sender: Optional[str] = None
    destination: Optional[str] = None
    operation: Optional[str] = None
    after_message: int = 0
    until_message: Optional[int] = None
    latency_seconds: float = 0.0
    jitter_seconds: float = 0.0
    failpoint: Optional[str] = None
    max_shots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.fault!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {self.probability}"
            )
        if self.fault in _DETERMINISTIC_FAULTS and self.probability != 1.0:
            raise ValueError(
                f"{self.fault} rules are deterministic (window-based); "
                "probability must stay 1.0"
            )
        if self.latency_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("latency and jitter must be non-negative")
        if self.after_message < 0:
            raise ValueError("after_message must be non-negative")
        if self.until_message is not None and self.until_message <= self.after_message:
            raise ValueError("until_message must exceed after_message")
        if self.fault == "crash" and not self.failpoint:
            raise ValueError("crash rules need a failpoint= name to trigger at")
        if self.max_shots is not None and self.max_shots < 1:
            raise ValueError("max_shots must be at least 1")

    def matches(
        self, sender: str, destination: str, operation: str, index: int
    ) -> bool:
        """Does this rule apply to the message at global ``index``?"""
        if self.sender is not None and self.sender != sender:
            return False
        if self.destination is not None and self.destination != destination:
            return False
        if self.operation is not None and self.operation != operation:
            return False
        return self.in_window(index)

    def in_window(self, index: int) -> bool:
        if index < self.after_message:
            return False
        return self.until_message is None or index < self.until_message

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form; omits fields left at their defaults."""
        out: Dict[str, Any] = {"fault": self.fault}
        if self.probability != 1.0:
            out["probability"] = self.probability
        for name in ("sender", "destination", "operation", "failpoint"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.after_message:
            out["after_message"] = self.after_message
        if self.until_message is not None:
            out["until_message"] = self.until_message
        if self.latency_seconds:
            out["latency_seconds"] = self.latency_seconds
        if self.jitter_seconds:
            out["jitter_seconds"] = self.jitter_seconds
        if self.max_shots is not None:
            out["max_shots"] = self.max_shots
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        allowed = {
            "fault",
            "probability",
            "sender",
            "destination",
            "operation",
            "after_message",
            "until_message",
            "latency_seconds",
            "jitter_seconds",
            "failpoint",
            "max_shots",
        }
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown fault-rule fields: {sorted(unknown)}")
        return cls(**data)


def _coerce_seed(seed: Any) -> bytes:
    if isinstance(seed, bytes):
        return seed
    if isinstance(seed, int):
        return seed.to_bytes(8, "big", signed=True)
    if isinstance(seed, str):
        return seed.encode("utf-8")
    raise ValueError(f"seed must be bytes, int or str, got {type(seed).__name__}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of :class:`FaultRule` entries."""

    rules: Tuple[FaultRule, ...] = ()
    seed: bytes = b"fault-plan"
    max_consecutive_failures: int = 5
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "seed", _coerce_seed(self.seed))
        if self.max_consecutive_failures < 0:
            raise ValueError("max_consecutive_failures must be non-negative")

    def rules_for(self, kind: str) -> List[Tuple[int, FaultRule]]:
        """``(rule index, rule)`` pairs of one kind, in declaration order."""
        return [
            (index, rule)
            for index, rule in enumerate(self.rules)
            if rule.fault == kind
        ]

    def injector(self) -> "FaultInjector":
        """A fresh injector drawing from this plan's seed."""
        return FaultInjector(plan=self)

    # -- schedule DSL -----------------------------------------------------------

    def to_schedule(self) -> Dict[str, Any]:
        """The plan as JSON-serialisable data (the chaos artifact format)."""
        return {
            "name": self.name,
            "seed": self.seed.hex(),
            "max_consecutive_failures": self.max_consecutive_failures,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_schedule(cls, schedule: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_schedule` data.

        ``seed`` may be a hex string (the serialised form), an int or a
        plain string; rules are :meth:`FaultRule.from_dict` dictionaries.
        """
        seed: Any = schedule.get("seed", b"fault-plan")
        if isinstance(seed, str):
            try:
                seed = bytes.fromhex(seed)
            except ValueError:
                pass  # a human-written schedule may use a plain-text seed
        return cls(
            rules=tuple(
                FaultRule.from_dict(rule) for rule in schedule.get("rules", [])
            ),
            seed=seed,
            max_consecutive_failures=schedule.get("max_consecutive_failures", 5),
            name=schedule.get("name", ""),
        )

    @classmethod
    def from_fault_model(cls, model: Any) -> "FaultPlan":
        """Lift a legacy :class:`~repro.transport.network.FaultModel`.

        Used when a wired trust domain is given ``fault_model=``: the
        model's drop/latency/duplicate behaviour becomes an equivalent plan
        routed to the wire injector.
        """
        rules: List[FaultRule] = []
        if model.drop_probability > 0.0:
            rules.append(
                FaultRule(fault="drop", probability=model.drop_probability)
            )
        if model.latency_seconds > 0.0 or model.jitter_seconds > 0.0:
            rules.append(
                FaultRule(
                    fault="delay",
                    latency_seconds=model.latency_seconds,
                    jitter_seconds=model.jitter_seconds,
                )
            )
        if model.duplicate_probability > 0.0:
            rules.append(
                FaultRule(
                    fault="duplicate", probability=model.duplicate_probability
                )
            )
        return cls(
            rules=tuple(rules),
            seed=model.seed if model.seed is not None else b"fault-plan",
            max_consecutive_failures=model.max_consecutive_drops,
            name="from-fault-model",
        )


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one admitted message."""

    drop: bool = False
    duplicate: bool = False
    reorder: bool = False
    corrupt: bool = False
    reset: bool = False
    partitioned: bool = False
    latency: float = 0.0
    reason: str = ""

    @property
    def lost(self) -> bool:
        """True when the message never reaches its destination handler."""
        return self.drop or self.corrupt or self.reset or self.partitioned


#: The no-fault verdict, shared to keep the clean path allocation-free.
CLEAN_DECISION = FaultDecision()


@dataclass
class _RuleState:
    shots: int = 0


class FaultInjector:
    """Per-transport fault decision engine.

    Exactly one of ``plan`` / ``model`` is given.  *Model* mode replicates
    the legacy :class:`~repro.transport.network.FaultModel` math
    draw-for-draw (same rolls, in the same order, under the same guards),
    so seeded tests written against earlier releases keep their exact
    fault sequences.  *Plan* mode evaluates the plan's rules in a fixed
    kind order -- partition (no draw), then the bounded loss kinds (drop,
    corrupt, reset), then delay, duplicate and reorder -- drawing one roll
    per matching probabilistic rule.

    Thread-safe; networks call :meth:`decide` under their admission lock,
    server threads may call :meth:`should_trigger` concurrently.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        model: Optional[Any] = None,
        rng: Optional[SecureRandom] = None,
    ) -> None:
        if (plan is None) == (model is None):
            raise ValueError("pass exactly one of plan= or model=")
        self.plan = plan
        self.model = model
        seed = plan.seed if plan is not None else model.seed
        self._rng = rng if rng is not None else SecureRandom(seed)
        self._lock = threading.Lock()
        self._consecutive: Dict[Tuple[str, str], int] = {}
        self._message_index = 0
        self._rule_state: Dict[int, _RuleState] = {}
        self._failpoint_hits: Dict[str, int] = {}
        if plan is not None:
            self._by_kind = {
                kind: plan.rules_for(kind) for kind in FAULT_KINDS
            }
            self._has_loss_rules = any(
                self._by_kind[kind] for kind in LOSS_FAULTS
            )

    @property
    def message_index(self) -> int:
        """Messages decided so far (the next message's window index)."""
        with self._lock:
            return self._message_index

    def _roll(self) -> float:
        return self._rng.random_int_below(1_000_000) / 1_000_000.0

    # -- admission decisions -----------------------------------------------------

    def decide(self, sender: str, destination: str, operation: str) -> FaultDecision:
        """Decide the faults for one admitted message (in admission order)."""
        with self._lock:
            if self.model is not None:
                return self._decide_model(sender, destination)
            return self._decide_plan(sender, destination, operation)

    def _decide_model(self, sender: str, destination: str) -> FaultDecision:
        # Draw-for-draw replica of the pre-plan SimulatedNetwork fault
        # logic: drop (guarded by probability > 0 and the consecutive
        # bound, which resets WITHOUT a draw), then latency (jitter draws
        # only when configured), then duplication -- and no further draws
        # once a message is dropped.
        model = self.model
        link = (sender, destination)
        if model.drop_probability > 0.0:
            consecutive = self._consecutive.get(link, 0)
            if consecutive >= model.max_consecutive_drops:
                self._consecutive[link] = 0
            else:
                if self._roll() < model.drop_probability:
                    self._consecutive[link] = consecutive + 1
                    return FaultDecision(drop=True, reason="injected drop")
                self._consecutive[link] = 0
        latency = model.latency_seconds
        if model.jitter_seconds > 0:
            latency += self._roll() * model.jitter_seconds
        duplicate = False
        if model.duplicate_probability > 0.0:
            duplicate = self._roll() < model.duplicate_probability
        if not duplicate and latency == 0.0:
            return CLEAN_DECISION
        return FaultDecision(duplicate=duplicate, latency=latency)

    def _decide_plan(
        self, sender: str, destination: str, operation: str
    ) -> FaultDecision:
        index = self._message_index
        self._message_index += 1
        link = (sender, destination)

        # Partition windows: deterministic message-index intervals, no draws.
        for rule_index, rule in self._by_kind["partition"]:
            if not rule.matches(sender, destination, operation, index):
                continue
            if self._shots_exhausted(rule_index, rule):
                continue
            self._spend_shot(rule_index)
            return FaultDecision(
                partitioned=True,
                reason=(
                    f"partition window [{rule.after_message}, "
                    f"{rule.until_message}) at message {index}"
                ),
            )

        # Loss kinds share the bounded-failure counter: after
        # max_consecutive_failures consecutive losses on a link the next
        # message is admitted without any loss draw, guaranteeing eventual
        # delivery for retrying senders (the paper's bounded temporary
        # failures).  The reset happens BEFORE any draw, mirroring the
        # legacy model's draw discipline.
        if self._has_loss_rules:
            consecutive = self._consecutive.get(link, 0)
            if consecutive >= self.plan.max_consecutive_failures:
                self._consecutive[link] = 0
            else:
                for kind in LOSS_FAULTS:
                    for rule_index, rule in self._by_kind[kind]:
                        if not rule.matches(sender, destination, operation, index):
                            continue
                        if self._shots_exhausted(rule_index, rule):
                            continue
                        if rule.probability < 1.0 and self._roll() >= rule.probability:
                            continue
                        self._spend_shot(rule_index)
                        self._consecutive[link] = consecutive + 1
                        return FaultDecision(
                            **{kind: True},
                            reason=f"injected {kind} at message {index}",
                        )
                self._consecutive[link] = 0

        latency = 0.0
        for rule_index, rule in self._by_kind["delay"]:
            if not rule.matches(sender, destination, operation, index):
                continue
            if self._shots_exhausted(rule_index, rule):
                continue
            if rule.probability < 1.0 and self._roll() >= rule.probability:
                continue
            self._spend_shot(rule_index)
            extra = rule.latency_seconds
            if rule.jitter_seconds > 0:
                extra += self._roll() * rule.jitter_seconds
            latency += extra

        duplicate = self._roll_simple("duplicate", sender, destination, operation, index)
        reorder = self._roll_simple("reorder", sender, destination, operation, index)
        if not duplicate and not reorder and latency == 0.0:
            return CLEAN_DECISION
        return FaultDecision(duplicate=duplicate, reorder=reorder, latency=latency)

    def _roll_simple(
        self, kind: str, sender: str, destination: str, operation: str, index: int
    ) -> bool:
        for rule_index, rule in self._by_kind[kind]:
            if not rule.matches(sender, destination, operation, index):
                continue
            if self._shots_exhausted(rule_index, rule):
                continue
            if rule.probability < 1.0 and self._roll() >= rule.probability:
                continue
            self._spend_shot(rule_index)
            return True
        return False

    def _shots_exhausted(self, rule_index: int, rule: FaultRule) -> bool:
        if rule.max_shots is None:
            return False
        return self._rule_state.setdefault(rule_index, _RuleState()).shots >= rule.max_shots

    def _spend_shot(self, rule_index: int) -> None:
        self._rule_state.setdefault(rule_index, _RuleState()).shots += 1

    # -- failpoints ----------------------------------------------------------------

    def should_trigger(self, failpoint: str) -> bool:
        """Consult the plan's crash rules for one failpoint hit.

        Deterministic: crash rules fire by *hit count* (``after_message`` /
        ``until_message`` bound the hit window), never by probability draw,
        so concurrent server threads cannot perturb the admission RNG.
        """
        if self.plan is None:
            return False
        with self._lock:
            hits = self._failpoint_hits.get(failpoint, 0)
            self._failpoint_hits[failpoint] = hits + 1
            for rule_index, rule in self._by_kind["crash"]:
                if rule.failpoint != failpoint:
                    continue
                if not rule.in_window(hits):
                    continue
                if self._shots_exhausted(rule_index, rule):
                    continue
                self._spend_shot(rule_index)
                return True
        return False
