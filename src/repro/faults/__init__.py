"""Unified fault plane: seeded chaos shared by both transports.

``repro.faults`` turns fault injection from a simulator-only feature into
a first-class subsystem:

* :mod:`repro.faults.plan` -- the declarative :class:`FaultPlan` /
  :class:`FaultRule` schedule DSL and the deterministic
  :class:`FaultInjector` both networks consult at admission;
* :mod:`repro.faults.failpoints` -- the :class:`FailpointRegistry` the
  wire server fires at named points (crash-at-failpoint injection);
* :mod:`repro.faults.breaker` -- the per-peer :class:`CircuitBreaker`
  (closed/open/half-open, audited transitions) channels consult before
  burning retry budget on a dead peer;
* :mod:`repro.faults.chaos` -- the cross-transport scenario runner that
  replays one seeded plan over the simulator and a 2-node wire loopback
  deployment and checks converged, identical evidence and state.

The same seed and plan reproduce the same fault sequence on either
transport, which is what lets CI assert the paper's
converge-never-diverge property under chaos rather than merely under
clean networks.
"""

from repro.faults.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.faults.failpoints import VERB_CLOSE, FailpointRegistry
from repro.faults.plan import (
    FAULT_KINDS,
    LOSS_FAULTS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "FAULT_KINDS",
    "LOSS_FAULTS",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "CircuitBreaker",
    "FailpointRegistry",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "VERB_CLOSE",
]
