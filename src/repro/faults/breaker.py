"""Per-peer circuit breaker guarding retry budgets.

Repeated :class:`~repro.errors.DeliveryError`\\ s against one destination
trip that destination's circuit from *closed* to *open*; while open, a
:class:`~repro.transport.delivery.ReliableChannel` refuses attempts
locally (no socket touched, no network-statistics attempt burned) and the
refusal is counted in ``NetworkStatistics.circuit_open_refusals``.  After
``recovery_seconds`` the circuit moves to *half-open* and admits exactly
one probe: a successful probe closes the circuit, a failed one re-opens
it.  Every transition is reported through ``on_event`` -- networks wire
that to their attached audit log, so breaker behaviour is evidence, not
folklore.

The breaker is deliberately transport-agnostic: attach one to either
network with ``network.attach_circuit_breaker(breaker)`` and every
channel over that network starts consulting it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["CircuitBreaker", "STATE_CLOSED", "STATE_HALF_OPEN", "STATE_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

OnEvent = Callable[[str, str, str, str], None]


class _Circuit:
    __slots__ = ("state", "failures", "opened_at", "probe_in_flight")

    def __init__(self) -> None:
        self.state = STATE_CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False


class CircuitBreaker:
    """Closed/open/half-open breaker keyed by destination address."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_seconds: float = 1.0,
        clock: Optional[object] = None,
        on_event: Optional[OnEvent] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._circuits: Dict[str, _Circuit] = {}

    def bind(self, clock=None, on_event: Optional[OnEvent] = None) -> None:
        """Late-bind the clock / event sink (done by ``attach_circuit_breaker``)."""
        if clock is not None:
            self._clock = clock
        if on_event is not None:
            self._on_event = on_event

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock.now()
        return time.monotonic()

    def state(self, destination: str) -> str:
        with self._lock:
            circuit = self._circuits.get(destination)
            if circuit is None:
                return STATE_CLOSED
            self._advance_locked(destination, circuit)
            return circuit.state

    def states(self) -> Dict[str, str]:
        """Current state per known destination (advancing open circuits)."""
        with self._lock:
            result = {}
            for destination, circuit in self._circuits.items():
                self._advance_locked(destination, circuit)
                result[destination] = circuit.state
            return result

    def allow(self, destination: str) -> bool:
        """May an attempt go out to ``destination`` right now?

        In half-open state only one probe is admitted at a time; callers
        MUST follow up with :meth:`record_success` or
        :meth:`record_failure` so the probe slot is released.
        """
        with self._lock:
            circuit = self._circuits.get(destination)
            if circuit is None or circuit.state == STATE_CLOSED:
                return True
            self._advance_locked(destination, circuit)
            if circuit.state == STATE_OPEN:
                return False
            if circuit.probe_in_flight:
                return False
            circuit.probe_in_flight = True
            return True

    def record_success(self, destination: str) -> None:
        with self._lock:
            circuit = self._circuits.get(destination)
            if circuit is None:
                return
            if circuit.state != STATE_CLOSED:
                self._transition_locked(
                    destination, circuit, STATE_CLOSED, "delivery succeeded"
                )
            circuit.failures = 0
            circuit.probe_in_flight = False

    def forget(self, destination: str) -> bool:
        """Drop one destination's circuit state (peer-channel eviction).

        The destination reverts to a pristine closed circuit; if it is
        touched again later, failure counting starts from zero.  Returns
        False when no state was held.
        """
        with self._lock:
            return self._circuits.pop(destination, None) is not None

    def record_failure(self, destination: str) -> None:
        with self._lock:
            circuit = self._circuits.setdefault(destination, _Circuit())
            if circuit.state == STATE_HALF_OPEN:
                circuit.probe_in_flight = False
                circuit.opened_at = self._now()
                self._transition_locked(
                    destination, circuit, STATE_OPEN, "probe failed"
                )
                return
            if circuit.state == STATE_OPEN:
                return  # an in-flight attempt from before the trip; already open
            circuit.failures += 1
            if circuit.failures >= self.failure_threshold:
                circuit.opened_at = self._now()
                self._transition_locked(
                    destination,
                    circuit,
                    STATE_OPEN,
                    f"{circuit.failures} consecutive delivery failures",
                )

    def _advance_locked(self, destination: str, circuit: _Circuit) -> None:
        if circuit.state != STATE_OPEN:
            return
        if self._now() - circuit.opened_at >= self.recovery_seconds:
            circuit.probe_in_flight = False
            self._transition_locked(
                destination, circuit, STATE_HALF_OPEN, "recovery timeout elapsed"
            )

    def _transition_locked(
        self, destination: str, circuit: _Circuit, new_state: str, reason: str
    ) -> None:
        old_state, circuit.state = circuit.state, new_state
        sink = self._on_event
        if sink is None:
            return
        try:
            sink(destination, old_state, new_state, reason)
        except Exception:  # noqa: BLE001 - auditing must never break delivery
            pass
