"""Exporters: Prometheus text format, JSON snapshots, and an opt-in HTTP
endpoint.

The HTTP endpoint is a tiny stdlib ``ThreadingHTTPServer`` serving

* ``/metrics`` — Prometheus text format (the registry snapshot, including
  pull collectors, rendered with a ``repro_`` prefix),
* ``/metrics.json`` — the same snapshot as JSON,
* ``/spans.json`` — the span collector's buffer as JSON.

It is only started when ``ObservabilityConfig.http_port`` is set (port 0
binds an ephemeral port) and is owned by the ``WireTransport`` that started
it; both renderers are also directly callable for in-process dumps.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.observability.runtime import STATE

__all__ = [
    "render_prometheus",
    "render_json",
    "metrics_snapshot",
    "ObservabilityHTTPServer",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text format."""

    lines = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for bound, count in data["buckets"]:
            lines.append(f'{metric}_bucket{{le="{_prom_value(bound)}"}} {count}')
        lines.append(f"{metric}_sum {_prom_value(data['sum'])}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"


def metrics_snapshot() -> Dict[str, Any]:
    """The live registry snapshot, or an empty shell when metrics are off."""

    registry = STATE.metrics
    if registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return registry.snapshot()


def render_json(snapshot: Optional[Dict[str, Any]] = None) -> str:
    if snapshot is None:
        snapshot = metrics_snapshot()
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)


class _Handler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(metrics_snapshot()).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = render_json().encode("utf-8")
            content_type = "application/json"
        elif path == "/spans.json":
            collector = STATE.tracing
            spans = collector.spans() if collector is not None else []
            body = json.dumps({"spans": spans}, default=str).encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404)
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: Any) -> None:  # silence request logging
        return


class ObservabilityHTTPServer:
    """A daemon-threaded HTTP server exposing the process's metrics/spans."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-observability-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)
