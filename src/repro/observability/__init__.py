"""Unified observability plane: tracing, metrics, exporters.

See the "Observability architecture" section of :mod:`repro` for the
propagation model and naming conventions.  The public surface:

* :func:`enable` / :func:`disable` / :func:`enabled` — the process-global
  switch (normally driven by ``ObservabilityConfig`` on ``DomainConfig``).
* :data:`runtime.STATE` — ``.tracing`` (a :class:`SpanCollector`) and
  ``.metrics`` (a :class:`MetricsRegistry`), both ``None`` when disabled.
* :mod:`tracing` — span primitives, context propagation helpers, and the
  tree build/render/shape utilities.
* :mod:`metrics` — counters, gauges, per-thread-sharded histograms, pull
  collectors.
* :mod:`exporters` — Prometheus text, JSON snapshots, and the opt-in HTTP
  endpoint.
* ``python -m repro.observability.trace`` — render exported span trees.
"""

from __future__ import annotations

from repro.observability.exporters import (
    ObservabilityHTTPServer,
    metrics_snapshot,
    render_json,
    render_prometheus,
)
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.runtime import STATE, disable, enable, enabled
from repro.observability.tracing import (
    Span,
    SpanCollector,
    activate,
    build_tree,
    call_in_ctx,
    current_ctx,
    render_tree,
    tree_shape,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityHTTPServer",
    "STATE",
    "Span",
    "SpanCollector",
    "activate",
    "build_tree",
    "call_in_ctx",
    "current_ctx",
    "disable",
    "enable",
    "enabled",
    "metrics_snapshot",
    "render_json",
    "render_prometheus",
    "render_tree",
    "tree_shape",
]
