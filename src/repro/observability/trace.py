"""CLI rendering collected span trees.

Usage::

    python -m repro.observability.trace spans.json            # all traces
    python -m repro.observability.trace spans.json --trace ID # one run's tree
    python -m repro.observability.trace spans.json --list     # trace ids only

The input is a JSON file as produced by
:meth:`repro.observability.tracing.SpanCollector.export_json` or the
``/spans.json`` HTTP endpoint: either ``{"spans": [...]}`` or a bare list
of span dicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from repro.observability.tracing import render_tree

__all__ = ["main"]


def _load_spans(path: str) -> List[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("spans", [])
    if not isinstance(data, list):
        raise SystemExit(f"{path}: expected a span list or {{'spans': [...]}}")
    return data


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.trace",
        description="Render collected spans as per-run trees.",
    )
    parser.add_argument("spans", help="path to a JSON span export")
    parser.add_argument("--trace", help="render only this trace (run) id")
    parser.add_argument(
        "--list", action="store_true", help="list trace ids and span counts"
    )
    options = parser.parse_args(argv)

    spans = _load_spans(options.spans)
    trace_ids: List[str] = []
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id is not None and trace_id not in trace_ids:
            trace_ids.append(trace_id)

    if options.list:
        for trace_id in trace_ids:
            count = sum(1 for span in spans if span.get("trace_id") == trace_id)
            print(f"{trace_id}  ({count} spans)")
        return 0

    selected = [options.trace] if options.trace else trace_ids
    if options.trace and options.trace not in trace_ids:
        print(f"trace {options.trace!r} not found", file=sys.stderr)
        return 1
    for index, trace_id in enumerate(selected):
        if index:
            print()
        print(render_tree(spans, trace_id))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
