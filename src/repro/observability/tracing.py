"""Run-scoped distributed tracing.

A *trace* is identified by the coordination run id (``trace_id == run_id``),
so every span produced on behalf of one run — on the proposer, inside the
transports, on each responder, and in later recovery actions — shares one
trace id regardless of which OS process produced it.  A *span* is one timed
unit of work inside a trace (the run itself, one fan-out leg, the commit
barrier, one responder handling a proposal, a redelivery wave, ...).

Propagation model
-----------------

The ambient span context is a thread-local ``(trace_id, span_id)`` pair.
Producers `activate()` a context around work; the transports stamp the
ambient context onto outgoing :class:`~repro.transport.network.Message`
objects at construction time and re-activate it around handler dispatch on
the receiving side (in-process for the simulator, in-band via an extra
``trace`` key in the wire call envelope for TCP).  The retry scheduler
captures the ambient context when a timer is scheduled and restores it when
the timer fires, so retry waves, redelivery pushes and deadline expiries all
stay attributed to the run that scheduled them.

Everything in this module is dependency-free and cheap: when tracing is
disabled (``runtime.STATE.tracing is None``) instrumented call sites do a
single attribute load and skip all of it.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "SpanCollector",
    "activate",
    "build_tree",
    "call_in_ctx",
    "current_ctx",
    "render_tree",
    "tree_shape",
]

SpanCtx = Tuple[str, str]

_local = threading.local()


def current_ctx() -> Optional[SpanCtx]:
    """The ambient ``(trace_id, span_id)`` pair for this thread, if any."""

    return getattr(_local, "ctx", None)


class _Activation:
    """Context manager pushing a span context onto the thread-local slot."""

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: Optional[SpanCtx]) -> None:
        self._ctx = ctx
        self._prev: Optional[SpanCtx] = None

    def __enter__(self) -> Optional[SpanCtx]:
        self._prev = getattr(_local, "ctx", None)
        _local.ctx = self._ctx
        return self._ctx

    def __exit__(self, *exc: Any) -> None:
        _local.ctx = self._prev


def activate(ctx: Optional[Sequence[str]]) -> _Activation:
    """Activate ``(trace_id, span_id)`` as the ambient context for a block."""

    if ctx is not None and type(ctx) is not tuple:
        # Wire envelopes deliver the context as a JSON list; normalise once.
        ctx = (str(ctx[0]), str(ctx[1]))
    return _Activation(ctx)


def call_in_ctx(ctx: Optional[Sequence[str]], fn: Callable[..., Any], *args: Any) -> Any:
    """Invoke ``fn(*args)`` with ``ctx`` active (or plainly when ``ctx`` is None)."""

    if ctx is None:
        return fn(*args)
    with activate(ctx):
        return fn(*args)


class Span:
    """One timed unit of work inside a trace.

    Spans are mutable until :meth:`end` is called, at which point they are
    handed to their collector.  ``end`` is idempotent.

    A span is also its own activation scope (``with span: ...``).  A span
    must not be re-entered while already active on the same thread — it
    keeps a single saved-previous-context slot; activations of *different*
    spans nest freely.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end_time",
        "status",
        "attributes",
        "_collector",
        "_ended",
        "_prev_ctx",
    )

    def __init__(
        self,
        collector: "SpanCollector",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._collector = collector
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.time()
        self.end_time: Optional[float] = None
        self.status = "unset"
        # The span owns the dict it is given (every producer passes a fresh
        # literal); None until the first attribute keeps creation allocation-
        # free on hot paths.
        self.attributes: Optional[Dict[str, Any]] = attributes
        self._ended = False

    @property
    def ctx(self) -> SpanCtx:
        return (self.trace_id, self.span_id)

    def activate(self) -> "Span":
        return self

    # A span is its own activation scope: entering pushes its context onto
    # the thread-local slot, leaving restores the previous one.  Being the
    # context manager directly (rather than returning an _Activation) saves
    # an allocation and a call on every traced unit of work.
    def __enter__(self) -> "Span":
        self._prev_ctx = getattr(_local, "ctx", None)
        _local.ctx = (self.trace_id, self.span_id)
        return self

    def __exit__(self, *exc: Any) -> None:
        _local.ctx = self._prev_ctx

    def set_attribute(self, key: str, value: Any) -> None:
        if self.attributes is None:
            self.attributes = {}
        self.attributes[key] = value

    def end(self, status: str = "ok") -> None:
        if self._ended:
            return
        self._ended = True
        self.end_time = time.time()
        self.status = status
        self._collector._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end_time,
            "status": self.status,
            "attributes": dict(self.attributes or {}),
        }


class SpanCollector:
    """Bounded in-process sink for finished spans.

    Span ids are process-unique (``pid-counter``); uniqueness across the
    processes of one deployment follows from the pid component.

    Finished spans are retained as flat tuples of atomic values rather than
    as objects: CPython untracks such tuples from the cyclic garbage
    collector, so a full span buffer adds nothing to GC scan time — which is
    where a long-lived in-process trace sink would otherwise leak overhead
    into every allocation-heavy hot path (measured ~10% on the update loop
    with 10k retained span objects).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        self._spans: deque = deque(maxlen=max(1, int(capacity)))
        self._ids = itertools.count(1)
        self._pid = os.getpid()
        self._id_prefix = "%x-" % self._pid

    def new_span_id(self) -> str:
        return self._id_prefix + "%x" % next(self._ids)

    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent: Optional[Sequence[str]] = None,
        attributes: Optional[Dict[str, Any]] = None,
        use_ambient_parent: bool = True,
    ) -> Span:
        """Start a span.

        Parentage defaults to the ambient context; pass ``parent`` to
        override it or ``use_ambient_parent=False`` to force a root.  The
        trace id defaults to the parent's, then to a fresh one.
        """

        parent_ctx: Optional[SpanCtx]
        if parent is not None:
            # Tuples come from Span.ctx or a wire-normalised context and are
            # already (str, str); anything else is normalised here.
            if type(parent) is not tuple:
                parent = (str(parent[0]), str(parent[1]))
            parent_ctx = parent
        elif use_ambient_parent:
            parent_ctx = current_ctx()
        else:
            parent_ctx = None
        if trace_id is None:
            if parent_ctx is not None:
                trace_id = parent_ctx[0]
            else:
                trace_id = f"trace-{self.new_span_id()}"
        elif type(trace_id) is not str:
            trace_id = str(trace_id)
        parent_id = None
        if parent_ctx is not None and parent_ctx[0] == trace_id:
            parent_id = parent_ctx[1]
        return Span(self, name, trace_id, self.new_span_id(), parent_id, attributes)

    def _finish(self, span: Span) -> None:
        attributes = span.attributes
        record = (
            span.trace_id,
            span.span_id,
            span.parent_id,
            span.name,
            span.start,
            span.end_time,
            span.status,
            tuple(attributes.items()) if attributes else (),
        )
        # deque.append is atomic under the GIL, so the finish path is
        # lock-free; readers snapshot with a retry loop instead.
        self._spans.append(record)

    def _snapshot(self) -> List[tuple]:
        # list(deque) raises RuntimeError if an append rotates the deque
        # mid-copy; retrying is cheaper than making every finish take a lock.
        while True:
            try:
                return list(self._spans)
            except RuntimeError:
                continue

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        records = self._snapshot()
        return [
            {
                "trace_id": record[0],
                "span_id": record[1],
                "parent_id": record[2],
                "name": record[3],
                "start": record[4],
                "end": record[5],
                "status": record[6],
                "attributes": dict(record[7]),
            }
            for record in records
            if trace_id is None or record[0] == trace_id
        ]

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self._snapshot():
            seen.setdefault(record[0], None)
        return list(seen)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def export_json(self, trace_id: Optional[str] = None) -> str:
        return json.dumps({"spans": self.spans(trace_id)}, indent=2, sort_keys=True)


# --------------------------------------------------------------------------
# Tree assembly and rendering (shared by the CLI, examples and tests).


def build_tree(
    spans: Iterable[Dict[str, Any]], trace_id: str
) -> List[Dict[str, Any]]:
    """Assemble the span dicts of one trace into a forest of nested nodes.

    Returns root nodes (spans whose parent is absent from the trace), each a
    copy of the span dict with a ``children`` list, ordered by start time.
    """

    members = [dict(span) for span in spans if span.get("trace_id") == trace_id]
    by_id = {span["span_id"]: span for span in members}
    roots: List[Dict[str, Any]] = []
    for span in members:
        span.setdefault("children", [])
    for span in members:
        parent = by_id.get(span.get("parent_id"))
        if parent is not None and parent is not span:
            parent["children"].append(span)
        else:
            roots.append(span)
    def _sort(nodes: List[Dict[str, Any]]) -> None:
        nodes.sort(key=lambda node: (node.get("start") or 0.0, node["name"]))
        for node in nodes:
            _sort(node["children"])
    _sort(roots)
    return roots


def tree_shape(spans: Iterable[Dict[str, Any]], trace_id: str) -> Any:
    """A timing-free normal form of a trace: ``(name, status, children)``.

    Children are sorted by (name, status) so two runs of the same protocol
    compare equal regardless of scheduling order or transport.
    """

    def _shape(node: Dict[str, Any]) -> Any:
        children = tuple(sorted(_shape(child) for child in node["children"]))
        return (node["name"], node["status"], children)

    return tuple(sorted(_shape(root) for root in build_tree(spans, trace_id)))


def render_tree(spans: Iterable[Dict[str, Any]], trace_id: str) -> str:
    """Render a trace as an indented ASCII tree with durations."""

    lines = [f"trace {trace_id}"]

    def _render(node: Dict[str, Any], prefix: str, last: bool) -> None:
        connector = "`-- " if last else "|-- "
        start, end = node.get("start"), node.get("end")
        took = f" ({(end - start) * 1000.0:.1f}ms)" if start and end else ""
        lines.append(f"{prefix}{connector}{node['name']} [{node['status']}]{took}")
        child_prefix = prefix + ("    " if last else "|   ")
        children = node["children"]
        for index, child in enumerate(children):
            _render(child, child_prefix, index == len(children) - 1)

    roots = build_tree(spans, trace_id)
    for index, root in enumerate(roots):
        _render(root, "", index == len(roots) - 1)
    return "\n".join(lines)
