"""Process-wide metrics registry.

Three instrument kinds:

* :class:`Counter` — monotonically increasing, lock-guarded (push sites are
  not on per-message hot paths).
* :class:`Gauge` — last-write-wins point-in-time value.
* :class:`Histogram` — latency distributions with *per-thread shards*: an
  ``observe()`` touches only the calling thread's shard (no lock on the hot
  path; the only lock is taken once per thread at shard creation), and the
  shards are merged at scrape time.

Beyond push instruments, the registry supports *pull collectors*: named
callbacks returning ``{metric_name: value}`` mappings, evaluated only when a
snapshot is taken.  Existing signal sources (``NetworkStatistics``, the
retry scheduler's quiescence probe, circuit breakers, peering caps, stores,
nonce pools, the shared executor) are absorbed this way, so enabling metrics
adds no work to their hot paths at all.  Registering a collector under an
existing name replaces it (processes hosting several trust domains re-bind
cleanly), and a collector that raises is skipped for that scrape.

Metric names are dotted lowercase (``crypto.sign_seconds``,
``network.messages_sent``); exporters map them to backend-specific forms.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)


class Counter:
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Shard:
    __slots__ = ("count", "total", "bucket_counts")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.count = 0
        self.total = 0.0
        self.bucket_counts = [0] * (len(buckets) + 1)  # trailing +Inf bucket


class Histogram:
    """Histogram with per-thread shards; ``observe`` is lock-free after the
    first observation on a thread."""

    __slots__ = ("name", "buckets", "_tls", "_lock", "_shards")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets or DEFAULT_BUCKETS)
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._shards: List[_Shard] = []

    def _shard(self) -> _Shard:
        try:
            return self._tls.shard
        except AttributeError:
            shard = _Shard(self.buckets)
            with self._lock:
                self._shards.append(shard)
            self._tls.shard = shard
            return shard

    def observe(self, value: float) -> None:
        try:
            shard = self._tls.shard
        except AttributeError:
            shard = self._shard()
        shard.count += 1
        shard.total += value
        # bisect_left on sorted bounds == first bucket with value <= bound;
        # an off-the-end index lands in the trailing +Inf slot.
        shard.bucket_counts[bisect_left(self.buckets, value)] += 1

    def snapshot(self) -> Dict[str, Any]:
        """Merge all per-thread shards into cumulative Prometheus-style data."""

        with self._lock:
            shards = list(self._shards)
        count = 0
        total = 0.0
        merged = [0] * (len(self.buckets) + 1)
        for shard in shards:
            count += shard.count
            total += shard.total
            for index, bucket_count in enumerate(shard.bucket_counts):
                merged[index] += bucket_count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for index, bound in enumerate(self.buckets):
            running += merged[index]
            cumulative.append((bound, running))
        cumulative.append((float("inf"), running + merged[-1]))
        return {"count": count, "sum": total, "buckets": cumulative}


class MetricsRegistry:
    """Named instruments plus pull collectors, snapshot-able at any time."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Mapping[str, float]]] = {}

    # -- instrument accessors (create on first use) ------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name, buckets))
        return histogram

    # -- convenience push helpers -----------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- pull collectors ---------------------------------------------------

    def register_collector(
        self, name: str, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- scraping ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        result: Dict[str, Any] = {
            "counters": {name: counter.value for name, counter in counters.items()},
            "gauges": {name: gauge.value for name, gauge in gauges.items()},
            "histograms": {
                name: histogram.snapshot() for name, histogram in histograms.items()
            },
        }
        for collector_name, fn in collectors.items():
            try:
                values = fn()
            except Exception:  # a broken probe must never break the scrape
                continue
            for metric_name, value in values.items():
                try:
                    result["gauges"][metric_name] = float(value)
                except (TypeError, ValueError):
                    continue
        return result
