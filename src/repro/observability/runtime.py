"""Process-global observability state and the enable/disable switch.

Instrumented call sites throughout the codebase do::

    from repro.observability.runtime import STATE as _OBS
    ...
    if _OBS.tracing is not None:        # one attribute load when disabled
        span = _OBS.tracing.start_span("commit")

``STATE.tracing`` / ``STATE.metrics`` are ``None`` until :func:`enable` is
called, so the disabled mode costs a single attribute load and identity
check per guarded site — no allocation, no locks, no extra bytes on the
wire (the trace key is simply absent from frames, and transport byte
accounting never includes it either way).

:func:`enable` is idempotent: a process hosting several trust domains keeps
one collector and one registry, and later calls only fill in components the
first call left disabled.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import SpanCollector

__all__ = ["STATE", "enable", "disable", "enabled", "suspend", "resume"]

_STATE_FIELDS = (
    "tracing",
    "metrics",
    "config",
    "observe_encode",
    "observe_sign",
    "observe_verify",
    "observe_round_trip",
    "observe_run_duration",
)


class _ObservabilityState:
    """Global switch plus pre-resolved hot-path observers.

    The ``observe_*`` slots hold the bound ``Histogram.observe`` methods of
    the per-site latency histograms, resolved once at :func:`enable` time.
    Sites on per-message hot paths (canonical encoding, signing,
    verification, wire round trips, run completion) call them directly, so
    one enabled observation costs a single function call instead of a
    registry lookup chain — measured, that halves the enabled-mode overhead
    of the update loop.
    """

    __slots__ = (
        "tracing",
        "metrics",
        "config",
        "observe_encode",
        "observe_sign",
        "observe_verify",
        "observe_round_trip",
        "observe_run_duration",
    )

    def __init__(self) -> None:
        self.tracing: Optional[SpanCollector] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.config: Optional[Any] = None
        self.observe_encode: Optional[Any] = None
        self.observe_sign: Optional[Any] = None
        self.observe_verify: Optional[Any] = None
        self.observe_round_trip: Optional[Any] = None
        self.observe_run_duration: Optional[Any] = None


STATE = _ObservabilityState()


def enable(config: Optional[Any] = None) -> _ObservabilityState:
    """Turn observability on for this process (idempotent).

    ``config`` is duck-typed (normally a
    :class:`repro.core.config.ObservabilityConfig`): ``tracing`` and
    ``metrics`` booleans select components, ``span_capacity`` bounds the
    span buffer.  Components that already exist are kept as-is so several
    domains in one process share one collector/registry.
    """

    want_tracing = bool(getattr(config, "tracing", True))
    want_metrics = bool(getattr(config, "metrics", True))
    capacity = int(getattr(config, "span_capacity", 10_000) or 10_000)
    if want_tracing and STATE.tracing is None:
        STATE.tracing = SpanCollector(capacity=capacity)
    if want_metrics and STATE.metrics is None:
        STATE.metrics = MetricsRegistry()
    if STATE.metrics is not None:
        registry = STATE.metrics
        STATE.observe_encode = registry.histogram("codec.encode_seconds").observe
        STATE.observe_sign = registry.histogram("crypto.sign_seconds").observe
        STATE.observe_verify = registry.histogram("crypto.verify_seconds").observe
        STATE.observe_round_trip = registry.histogram(
            "wire.round_trip_seconds"
        ).observe
        STATE.observe_run_duration = registry.histogram(
            "run.duration_seconds"
        ).observe
    if config is not None:
        STATE.config = config
    return STATE


def disable() -> None:
    """Drop all observability state (spans, metrics, collectors)."""

    STATE.tracing = None
    STATE.metrics = None
    STATE.config = None
    STATE.observe_encode = None
    STATE.observe_sign = None
    STATE.observe_verify = None
    STATE.observe_round_trip = None
    STATE.observe_run_duration = None


def enabled() -> bool:
    return STATE.tracing is not None or STATE.metrics is not None


def suspend() -> Any:
    """Pause collection without dropping what was collected.

    Detaches the live components from :data:`STATE` (instrumented sites see
    the plane as disabled) and returns an opaque snapshot that
    :func:`resume` re-attaches.  Unlike :func:`disable` + :func:`enable`,
    the collector, registry and their warmed per-thread shards survive, so
    A/B measurements can toggle the plane per leg without paying component
    reconstruction inside the measured region.
    """

    snapshot = tuple(getattr(STATE, field) for field in _STATE_FIELDS)
    for field in _STATE_FIELDS:
        setattr(STATE, field, None)
    return snapshot


def resume(snapshot: Any) -> None:
    """Re-attach components captured by :func:`suspend`."""

    for field, value in zip(_STATE_FIELDS, snapshot):
        setattr(STATE, field, value)
