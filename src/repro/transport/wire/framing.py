"""Length-prefixed framing for the wire transport.

A frame is a 4-byte big-endian unsigned length followed by that many payload
bytes.  The payload is always a canonical codec encoding (see
:mod:`repro.transport.wire.wirecodec`), so the framing layer never inspects
content -- it only guarantees message boundaries over a byte stream and
bounds the size of a single frame so a corrupt or hostile peer cannot make
the receiver allocate unbounded memory.

All failures surface as :class:`FramingError` (malformed length, oversized
frame) or :class:`ConnectionClosed` (EOF mid-frame).  The connection layer
maps read-side failures -- stream corruption, EOF -- onto *retryable*
delivery errors; a write-side :class:`FramingError` (the caller's own
payload exceeds the bound) is input-determined and stays *permanent*.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import TransportError

__all__ = [
    "ConnectionClosed",
    "FramingError",
    "MAX_FRAME_BYTES",
    "read_frame",
    "write_frame",
]

#: Upper bound on one frame's payload.  Protocol messages are a few KB;
#: 16 MiB leaves room for large shared states without allowing a corrupt
#: length word to trigger a gigabyte allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class FramingError(TransportError):
    """The byte stream does not contain a well-formed frame."""


class ConnectionClosed(TransportError):
    """The peer closed the connection (possibly mid-frame)."""


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame to ``sock``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    # One sendall keeps the length word and payload in a single syscall for
    # small frames, which is every protocol message.
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _read_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {count} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> bytes:
    """Read one length-prefixed frame from ``sock``.

    Raises :class:`ConnectionClosed` on EOF (clean EOF between frames raises
    too -- the caller decides whether that is an orderly shutdown) and
    :class:`FramingError` when the announced length exceeds
    :data:`MAX_FRAME_BYTES`.
    """
    (length,) = _LENGTH.unpack(_read_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise FramingError(
            f"peer announced a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    return _read_exact(sock, length)
