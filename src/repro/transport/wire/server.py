"""Serve loop: accept peer connections, dispatch inbound frames.

One :class:`WireServer` is the listening half of a wire network node.  It
accepts connections from peer processes and runs one reader thread per
connection: read a request frame, hand the bytes to the node's dispatch
callable, write the reply frame.  Requests on *one* connection are served in
order (the pool on the sending side never pipelines), while requests
arriving on different connections are served concurrently -- which is what
makes a parallel sender-side dispatch strategy overlap real round trips.

The dispatch callable owns all content handling (decoding, endpoint lookup,
handler invocation, error marshalling) and must never raise; the server only
manages sockets.  Reader threads exit on peer disconnect or server close.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, List

from repro.errors import TransportError
from repro.transport.wire.framing import read_frame, write_frame

__all__ = ["WireServer"]


class WireServer:
    """Listening socket plus per-connection serve threads."""

    def __init__(
        self,
        dispatch: Callable[[bytes], bytes],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._dispatch = dispatch
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(64)
        except OSError as error:
            self._listener.close()
            raise TransportError(
                f"wire server cannot listen on {host}:{port}: {error}"
            ) from error
        self._host, self._port = self._listener.getsockname()[:2]
        self._closed = False
        self._lock = threading.Lock()
        self._client_sockets: List[socket.socket] = []
        self.connections_accepted = 0
        self.frames_served = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"wire-accept-{self._port}", daemon=True
        )
        self._accept_thread.start()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    # -- accept / serve -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    client.close()
                    return
                self._client_sockets.append(client)
                self.connections_accepted += 1
            # Per-client setup must never take the accept loop down: a peer
            # that resets immediately can make setsockopt raise, and thread
            # exhaustion can make start() raise -- both lose one client,
            # not the node's ability to accept the next.
            try:
                client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                threading.Thread(
                    target=self._serve_connection,
                    args=(client,),
                    name=f"wire-serve-{self._port}",
                    daemon=True,
                ).start()
            except (OSError, RuntimeError):
                with self._lock:
                    if client in self._client_sockets:
                        self._client_sockets.remove(client)
                try:
                    client.close()
                except OSError:
                    pass

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            while True:
                try:
                    request = read_frame(client)
                except (TransportError, OSError):
                    return  # peer went away (or the server is closing)
                reply = self._dispatch(request)
                with self._lock:
                    self.frames_served += 1
                try:
                    write_frame(client, reply)
                except (TransportError, OSError):
                    return
        finally:
            with self._lock:
                if client in self._client_sockets:
                    self._client_sockets.remove(client)
            try:
                client.close()
            except OSError:
                pass

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting, close every connection, end the serve threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = list(self._client_sockets)
        # shutdown() wakes a thread blocked in accept(); close() alone does
        # not reliably do so, which would stall teardown on the join below.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=1.0)
