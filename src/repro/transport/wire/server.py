"""Serve loop: accept peer connections, dispatch inbound frames.

One :class:`WireServer` is the listening half of a wire network node.  It
accepts connections from peer processes and runs one reader thread per
connection: read a request frame, hand the bytes to the node's dispatch
callable, write the reply frame.  Requests on *one* connection are served in
order (the pool on the sending side never pipelines), while requests
arriving on different connections are served concurrently -- which is what
makes a parallel sender-side dispatch strategy overlap real round trips.

The dispatch callable owns all content handling (decoding, endpoint lookup,
handler invocation, error marshalling) and must never raise; the server only
manages sockets.  Reader threads exit on peer disconnect or server close.

Robustness hooks:

* ``max_inflight`` bounds concurrently dispatched frames; excess frames are
  *shed* -- answered with ``shed_reply``'s retryable error frame (or, with
  no shed handler, by dropping the connection).  Overload therefore always
  surfaces to the sender's retry machinery instead of hanging it.
* ``on_frame_error`` observes undecodable inbound frames (corrupt or
  oversized length prefixes, resets mid-frame) before the connection is
  killed, so a poisoned stream is audited and counted, never silent.
* ``failpoints`` (a :class:`repro.faults.FailpointRegistry`) is fired at
  ``server-before-dispatch`` and ``server-before-reply``; the ``"close"``
  verb kills the connection there, simulating a peer dying with the request
  unprocessed, or processed-but-reply-lost (the case the protocol layer's
  duplicate suppression must absorb).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, List, Optional

from repro.errors import TransportError
from repro.transport.wire.framing import ConnectionClosed, read_frame, write_frame

__all__ = ["WireServer"]

#: Failpoint names the serve loop fires, in order.
FAILPOINT_BEFORE_DISPATCH = "server-before-dispatch"
FAILPOINT_BEFORE_REPLY = "server-before-reply"


class WireServer:
    """Listening socket plus per-connection serve threads."""

    def __init__(
        self,
        dispatch: Callable[[bytes], bytes],
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: Optional[int] = None,
        shed_reply: Optional[Callable[[bytes], Optional[bytes]]] = None,
        on_frame_error: Optional[Callable[[Exception], None]] = None,
        failpoints=None,
    ) -> None:
        if max_inflight is not None and max_inflight < 0:
            raise ValueError("max_inflight must be non-negative")
        self._dispatch = dispatch
        # BoundedSemaphore(0) sheds every frame -- useful for overload tests.
        self._inflight = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight is not None
            else None
        )
        self._shed_reply = shed_reply
        self._on_frame_error = on_frame_error
        self._failpoints = failpoints
        self.frames_shed = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(64)
        except OSError as error:
            self._listener.close()
            raise TransportError(
                f"wire server cannot listen on {host}:{port}: {error}"
            ) from error
        self._host, self._port = self._listener.getsockname()[:2]
        self._closed = False
        self._lock = threading.Lock()
        self._client_sockets: List[socket.socket] = []
        self.connections_accepted = 0
        self.frames_served = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"wire-accept-{self._port}", daemon=True
        )
        self._accept_thread.start()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        return self._port

    # -- accept / serve -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    client.close()
                    return
                self._client_sockets.append(client)
                self.connections_accepted += 1
            # Per-client setup must never take the accept loop down: a peer
            # that resets immediately can make setsockopt raise, and thread
            # exhaustion can make start() raise -- both lose one client,
            # not the node's ability to accept the next.
            try:
                client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                threading.Thread(
                    target=self._serve_connection,
                    args=(client,),
                    name=f"wire-serve-{self._port}",
                    daemon=True,
                ).start()
            except (OSError, RuntimeError):
                with self._lock:
                    if client in self._client_sockets:
                        self._client_sockets.remove(client)
                try:
                    client.close()
                except OSError:
                    pass

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            while True:
                try:
                    request = read_frame(client)
                except ConnectionClosed:
                    return  # peer went away (or the server is closing)
                except (TransportError, OSError) as error:
                    # A frame that cannot be decoded (corrupt/oversized
                    # length prefix, reset mid-frame) desyncs the stream: no
                    # later frame on this connection can be trusted.  Report
                    # it -- audited and counted by the network's hook -- then
                    # kill the connection; the sender sees a retryable
                    # failure, never a silent hang.
                    self._report_frame_error(error)
                    return
                if self._fire(FAILPOINT_BEFORE_DISPATCH):
                    return
                if self._inflight is not None and not self._inflight.acquire(
                    blocking=False
                ):
                    reply = self._shed(request)
                    if reply is None:
                        return  # no shed handler: drop the connection
                    with self._lock:
                        self.frames_shed += 1
                    try:
                        write_frame(client, reply)
                    except (TransportError, OSError):
                        return
                    continue
                try:
                    reply = self._dispatch(request)
                finally:
                    if self._inflight is not None:
                        self._inflight.release()
                with self._lock:
                    self.frames_served += 1
                if self._fire(FAILPOINT_BEFORE_REPLY):
                    return
                try:
                    write_frame(client, reply)
                except (TransportError, OSError):
                    return
        finally:
            with self._lock:
                if client in self._client_sockets:
                    self._client_sockets.remove(client)
            try:
                client.close()
            except OSError:
                pass

    def _fire(self, name: str) -> bool:
        """Fire a failpoint; True means the connection must close here."""
        if self._failpoints is None:
            return False
        return self._failpoints.fire(name) == "close"

    def _shed(self, request: bytes) -> Optional[bytes]:
        if self._shed_reply is None:
            return None
        try:
            return self._shed_reply(request)
        except Exception:  # noqa: BLE001 - shedding must not kill the thread
            return None

    def _report_frame_error(self, error: Exception) -> None:
        with self._lock:
            if self._closed:
                return  # our own teardown, not a peer's corruption
        if self._on_frame_error is None:
            return
        try:
            self._on_frame_error(error)
        except Exception:  # noqa: BLE001 - observability must not kill serving
            pass

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting, close every connection, end the serve threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = list(self._client_sockets)
        # shutdown() wakes a thread blocked in accept(); close() alone does
        # not reliably do so, which would stall teardown on the join below.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        self._accept_thread.join(timeout=1.0)
