"""Cross-process deployment glue: host local parties, trust remote ones.

A :class:`WireTransport` bundles what one *process* of a multi-process trust
domain needs:

* a :class:`~repro.transport.wire.network.WireNetwork` node (serve loop,
  connection pool, peer address book);
* the set of party URIs whose organisations (trusted interceptors) this
  process hosts;
* a credential exchange, so the processes can pin each other's verification
  keys and coordinator addresses before protocol traffic flows.

Credential exchange is symmetric and runs over the node's *system* channel
(unaccounted infrastructure traffic, like the simulator's out-of-band key
agreement): an ``introduce`` request carries the sender's published
credentials and returns the receiver's, so one round trip teaches both
sides.  :meth:`exchange` retries until every wanted remote party has been
learned (covering start-up races where a peer process is still building its
organisations), and introductions that arrive *before* this process created
its organisations are buffered and applied when the organisations appear.

Trust model: keys learned through an introduction are pinned directly
(:meth:`Organisation.trust_key`), i.e. trust-on-first-use over the socket.
That matches the reproduction's simulated deployments, where key exchange
is assumed out of band; a production deployment would authenticate the
introduction channel (TLS with certificate pinning) instead.

Threaded through :meth:`repro.core.trust_domain.TrustDomain.create` via the
``transport=`` parameter: the domain then builds organisations only for
:attr:`local_parties`, publishes their credentials here, and resolves every
other party of the domain through the exchange.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import codec
from repro.clock import Clock
from repro.crypto.keys import PublicKey
from repro.errors import (
    DeliveryError,
    EvidenceVerificationError,
    ProtocolError,
    UnknownEndpointError,
)
from repro.peering import PeerChannel, PeerChannelManager, PeeringPolicy
from repro.transport.network import DispatchStrategy
from repro.transport.wire.network import WireNetwork
from repro.transport.wire.peers import PeerAddressBook

__all__ = ["WireTransport"]

#: How long one wall-clock pause between credential-exchange retries lasts.
_EXCHANGE_RETRY_SECONDS = 0.05


class WireTransport:
    """One process's view of a socket-connected trust domain."""

    def __init__(
        self,
        local_parties: List[str],
        host: str = "127.0.0.1",
        port: int = 0,
        peers: Optional[Dict[str, Tuple[str, int]]] = None,
        clock: Optional[Clock] = None,
        dispatch: Optional[DispatchStrategy] = None,
        await_remote_credentials: bool = True,
        credential_timeout: float = 30.0,
        advertised_host: Optional[str] = None,
        peering: Optional[PeeringPolicy] = None,
    ) -> None:
        """Create the node and start serving.

        ``local_parties`` are the party URIs this process hosts.  ``peers``
        maps *remote* party URIs to the ``(host, port)`` of the process
        hosting them; parties absent from the map must introduce themselves
        (see :meth:`introduce_to`) before they can be spoken to.  With
        ``await_remote_credentials`` (the default),
        :meth:`TrustDomain.create` blocks until every remote party of the
        domain has been learned, retrying for ``credential_timeout``
        seconds; pass ``False`` for hub processes that cannot know their
        spokes' addresses up front and instead :meth:`wait_for_party`.
        ``advertised_host`` is the address peers are told to connect back
        to; it defaults to the bind ``host`` and is *required* when binding
        a wildcard address (``0.0.0.0`` / ``::``), which peers cannot dial.
        ``peering`` enables the lazy channel manager (see
        :meth:`enable_peering`) with the given policy.
        """
        if not local_parties:
            raise ProtocolError("a wire transport must host at least one party")
        if advertised_host is None:
            if host in ("", "0.0.0.0", "::"):
                raise ProtocolError(
                    f"binding {host or 'the wildcard address'!r} needs an "
                    "explicit advertised_host= -- peers would otherwise be "
                    "introduced to an address they cannot dial"
                )
            advertised_host = host
        self.advertised_host = advertised_host
        self.local_parties = list(local_parties)
        self.await_remote_credentials = await_remote_credentials
        self.credential_timeout = credential_timeout
        self._lock = threading.Lock()
        # Serialises whole absorptions: key pinning and route installation
        # must complete before a party reads as known (wait_for_party /
        # exchange gate on that), and two concurrent introductions for the
        # same party must never interleave their conflict checks.
        self._absorb_lock = threading.Lock()
        #: Credentials of locally hosted parties, as wire-encodable dicts.
        self._published: Dict[str, Dict[str, Any]] = {}
        #: Verification keys learned from peers, by party URI.
        self._known_remote: Dict[str, PublicKey] = {}
        self._remote_addresses: Dict[str, str] = {}
        self._local_orgs: List[Any] = []  # Organisation (untyped: layering)
        # The node starts serving the moment it is constructed, so the
        # system handlers must ride in with it: a fast peer retrying
        # against our (fixed) port may land its first 'introduce' frame
        # before this constructor returns.  Until construction completes,
        # the handlers answer with a *retryable* error, so such a peer
        # simply tries again instead of seeing a permanent failure.
        self._ready = False
        #: When set (see ``DomainConfig.durability.resync_on_connect``),
        #: every successful introduction is followed by one anti-entropy
        #: round trip with the peer node, so replicas that went stale while
        #: disconnected converge as part of reconnecting.
        self.resync_on_connect = False
        self.peer_manager: Optional[PeerChannelManager] = None
        self.network = WireNetwork(
            host=host,
            port=port,
            clock=clock,
            dispatch=dispatch,
            address_book=PeerAddressBook(peers),
            system_handlers={
                "introduce": self._handle_introduce,
                "credentials": self._handle_credentials,
                "resync": self._handle_resync,
                "resync-apply": self._handle_resync_apply,
            },
        )
        self._ready = True
        #: Opt-in metrics/spans HTTP endpoint (see :meth:`serve_observability`).
        self.observability_server: Optional[Any] = None
        if peering is not None:
            self.enable_peering(peering)

    @property
    def host(self) -> str:
        return self.network.host

    @property
    def port(self) -> int:
        return self.network.port

    # -- lazy peering --------------------------------------------------------------

    def enable_peering(self, policy: Optional[PeeringPolicy] = None) -> PeerChannelManager:
        """Manage per-peer channel state lazily instead of pre-registering it.

        Installs a :class:`~repro.peering.PeerChannelManager` on the node:
        the first send to a peer creates its channel on demand (performing
        the credential introduction right there if the peer is only an
        address-book hint), least-recently-used and idle channels are
        evicted under ``policy``, and an evicted channel is transparently
        recreated on its next touch.  Eviction releases the peer's pooled
        sockets (once no other live channel shares the endpoint) and
        forgets its circuit-breaker state -- but never unpins credentials:
        trust-on-first-use means a learned key stays pinned for the
        process's lifetime, so recreation cannot be a substitution window.

        A domain created over a peering-enabled transport skips the eager
        whole-peer-set credential exchange.
        """
        if self.peer_manager is not None:
            raise ProtocolError("peering is already enabled on this transport")
        self.peer_manager = PeerChannelManager(
            resolver=self._resolve_peer_channel,
            policy=policy,
            clock=self.network.clock,
            on_evict=self._on_channel_evicted,
        )
        self.network.attach_peer_manager(self.peer_manager)
        return self.peer_manager

    def _resolve_peer_channel(self, destination: str) -> Tuple[str, int]:
        """Create one peer channel: learn credentials, return the endpoint.

        ``destination`` is a coordinator address, which for wire domains is
        the party URI.  The peer address book supplies the host/port hint
        (seeded via ``peers=`` or a previous introduction); if the party's
        credentials are not pinned yet, one introduction round trip learns
        them.  Failure taxonomy matches delivery: an unmapped party is
        permanent (:class:`UnknownEndpointError`), an unreachable or
        not-yet-published peer is retryable (:class:`DeliveryError`).
        """
        hostport = self.network.address_book.resolve(destination)
        if not self.knows_party(destination):
            # Single attempt: lazy resolution runs inside a send, and the
            # send layer already owns retrying -- a 30s blocking loop here
            # (the eager exchange's courtesy for still-starting peers)
            # would stack under every channel-retry attempt.
            self.introduce_to(hostport[0], hostport[1], timeout=0.0)
            if not self.knows_party(destination):
                raise DeliveryError(
                    f"peer at {hostport[0]}:{hostport[1]} has not published "
                    f"credentials for {destination!r} yet; retry"
                )
        try:
            return self.network.address_book.resolve(destination)
        except UnknownEndpointError:
            return hostport

    def _on_channel_evicted(
        self, channel: PeerChannel, reason: str, endpoint_unused: bool
    ) -> None:
        """Release transport resources of an evicted channel.

        Pooled sockets are endpoint-level and shared by every party hosted
        on that process, so they are only released when the *last* channel
        using the endpoint goes; breaker state is per-party.  Pinned keys
        and installed routes survive eviction by design (see
        :meth:`enable_peering`).
        """
        if endpoint_unused:
            self.network.pool.close_peer(channel.endpoint)
        breaker = self.network.circuit_breaker
        if breaker is not None:
            breaker.forget(channel.party)

    def ensure_party(self, party: str) -> str:
        """Make ``party`` routable on demand; returns its coordinator address.

        The lazy-mode counterpart of the eager :meth:`exchange`: installed
        as the coordinators' route resolver by
        :meth:`TrustDomain.create`, so a proposer touching a peer for the
        first time triggers exactly one introduction instead of the domain
        pre-exchanging with its whole peer set.
        """
        if not self.knows_party(party):
            try:
                hostport = self.network.address_book.resolve(party)
            except UnknownEndpointError:
                raise ProtocolError(
                    f"party {party!r} is neither known nor in the peer "
                    "address map; add it to peers= or have it introduce itself"
                ) from None
            # Single attempt, like _resolve_peer_channel: the caller is a
            # mid-send route resolution whose retry policy lives above us.
            self.introduce_to(hostport[0], hostport[1], timeout=0.0)
        with self._lock:
            address = self._remote_addresses.get(party)
            if address is None:
                published = self._published.get(party)
                if published is not None:
                    address = published["coordinator_address"]
        if address is None:
            raise DeliveryError(
                f"peer did not publish credentials for {party!r}; retry"
            )
        return address

    # -- publication (this process's parties) --------------------------------------

    def publish(self, organisation: Any) -> None:
        """Announce a locally hosted organisation to future introductions.

        Called by :meth:`TrustDomain.create` for every local party; also
        pins every already-learned remote party into the new organisation,
        so introductions and organisation creation can happen in either
        order.
        """
        credential = {
            "party": organisation.uri,
            "coordinator_address": organisation.coordinator.address,
            "host": self.advertised_host,
            "port": self.port,
            "public_key": organisation.public_key,
        }
        with self._lock:
            self._published[organisation.uri] = credential
            self._local_orgs.append(organisation)
            known = [
                (party, key, self._remote_addresses[party])
                for party, key in self._known_remote.items()
            ]
        for party, key, address in known:
            organisation.trust_key(party, key, address)

    def _introduction(self) -> Dict[str, Any]:
        with self._lock:
            return {"credentials": [dict(cred) for cred in self._published.values()]}

    # -- absorption (other processes' parties) -------------------------------------

    def _absorb(self, credentials: List[Dict[str, Any]]) -> None:
        with self._absorb_lock:
            for credential in credentials or []:
                self._absorb_one(credential)

    def _absorb_one(self, credential: Dict[str, Any]) -> None:
        party = credential["party"]
        key = credential["public_key"]
        if not isinstance(key, PublicKey):
            raise ProtocolError(
                f"introduction for {party!r} carried no verification key"
            )
        address = credential.get("coordinator_address", party)
        with self._lock:
            if party in self._published:
                return  # we host this party; a peer cannot redefine it
            already = self._known_remote.get(party)
            if already is not None:
                if already.material_fingerprint() == key.material_fingerprint():
                    return  # benign re-introduction of the same key
                # Trust-on-FIRST-use: a later introduction claiming a
                # *different* key for a known party is a substitution
                # attempt (or a misconfigured redeploy), never silently
                # re-pinned.  Served introductions report this back to the
                # introducer as an error reply.
                raise ProtocolError(
                    f"introduction for {party!r} carries a key that "
                    "conflicts with the already-pinned one; refusing to "
                    "re-pin (restart this process to re-key a peer)"
                )
            orgs = list(self._local_orgs)
        # Install the route and pin the key into every organisation FIRST:
        # the moment the party reads as known (wait_for_party / exchange
        # return), it must be fully usable, or a racing proposer would hit
        # a permanent unknown-endpoint failure on a microsecond window.
        self.network.address_book.add(
            address, credential["host"], int(credential["port"])
        )
        for organisation in orgs:
            organisation.trust_key(party, key, address)
        with self._lock:
            self._known_remote[party] = key
            self._remote_addresses[party] = address
            late = [org for org in self._local_orgs if org not in orgs]
        # Organisations published while we were pinning saw neither the
        # snapshot above nor (necessarily) the just-recorded entry.
        for organisation in late:
            organisation.trust_key(party, key, address)

    def _require_ready(self) -> None:
        if not self._ready:
            raise DeliveryError("wire node is still starting; retry")

    def _handle_introduce(self, payload: Any) -> Dict[str, Any]:
        self._require_ready()
        self._absorb((payload or {}).get("credentials", []))
        return self._introduction()

    def _handle_credentials(self, _payload: Any) -> Dict[str, Any]:
        self._require_ready()
        return self._introduction()

    # -- exchange ------------------------------------------------------------------

    def known_parties(self) -> List[str]:
        """Every party this process can verify (local and learned remote)."""
        with self._lock:
            return sorted(set(self._published) | set(self._known_remote))

    def knows_party(self, party: str) -> bool:
        with self._lock:
            return party in self._published or party in self._known_remote

    def introduce_to(self, host: str, port: int, timeout: Optional[float] = None) -> None:
        """Push this process's credentials to the peer node at ``host:port``.

        One round trip also absorbs whatever the peer has published so far.
        Retries (the peer process may still be starting) until ``timeout``
        (default :attr:`credential_timeout`) wall-clock seconds elapse.
        """
        deadline = time.monotonic() + (
            self.credential_timeout if timeout is None else timeout
        )
        while True:
            try:
                reply = self.network.system_request(
                    (host, port), "introduce", self._introduction()
                )
            except DeliveryError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(_EXCHANGE_RETRY_SECONDS)
                continue
            self._absorb((reply or {}).get("credentials", []))
            if self.resync_on_connect:
                # Anti-entropy rides the (re)introduction: replicas that
                # went stale on either side converge right as the two
                # processes reconnect.
                try:
                    self.resync_with(host, port)
                except DeliveryError:
                    pass  # peer vanished mid-handshake; next reconnect resyncs
            return

    def exchange(self, remote_parties: List[str], timeout: Optional[float] = None) -> None:
        """Learn every party in ``remote_parties``, introducing ourselves too.

        Each wanted party must be resolvable through the peer address book
        (the ``peers`` constructor mapping).  Retries until every party has
        been learned or ``timeout`` elapses -- a peer that is reachable but
        has not yet *published* the wanted party keeps being polled, which
        is what makes simultaneous ``TrustDomain.create`` calls in several
        processes converge.
        """
        budget = self.credential_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            missing = [
                party for party in remote_parties if not self.knows_party(party)
            ]
            if not missing:
                return
            for party in missing:
                try:
                    hostport = self.network.address_book.resolve(party)
                except UnknownEndpointError:
                    raise ProtocolError(
                        f"remote party {party!r} is not in the peer address map "
                        "and has not introduced itself; add it to peers= or use "
                        "await_remote_credentials=False"
                    ) from None
                try:
                    self.introduce_to(hostport[0], hostport[1], timeout=0.0)
                except DeliveryError:
                    pass  # peer still starting; retried below
            if all(self.knows_party(party) for party in remote_parties):
                return
            if time.monotonic() >= deadline:
                still = [p for p in remote_parties if not self.knows_party(p)]
                raise DeliveryError(
                    f"credential exchange timed out after {budget:.1f}s; "
                    f"never learned {still}"
                )
            time.sleep(_EXCHANGE_RETRY_SECONDS)

    def wait_for_party(self, party: str, timeout: Optional[float] = None) -> None:
        """Block until ``party`` has introduced itself (hub-process helper)."""
        budget = self.credential_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while not self.knows_party(party):
            if time.monotonic() >= deadline:
                raise DeliveryError(
                    f"party {party!r} did not introduce itself within {budget:.1f}s"
                )
            time.sleep(_EXCHANGE_RETRY_SECONDS)

    # -- restart-time resync (anti-entropy) ------------------------------------------

    def _local_vectors(self) -> Dict[str, Dict[str, Dict[str, Any]]]:
        """Per-local-party resync vectors: ``{party: {object: {version, digest}}}``."""
        with self._lock:
            orgs = list(self._local_orgs)
        return {org.uri: org.controller.resync_vector() for org in orgs}

    def _records_for_remote(
        self, remote_vectors: Dict[str, Dict[str, Dict[str, Any]]]
    ) -> Dict[str, List[bytes]]:
        """Outcome records the remote replicas lack, per object id.

        For every object a remote vector mentions, the lowest remote version
        decides what to serve; any local controller that holds the missing
        durable records supplies them (they carry the *proposer's* signed
        evidence, so it does not matter which local replica serves them).
        Records cross the wire as canonical-codec bytes: the receiver
        decodes them to exactly the jsonable form its own store would have
        produced, keeping signature checks byte-stable.  Same-version digest
        mismatches are audited as divergence on the local side -- resync
        only ever advances a replica, never overwrites one.
        """
        with self._lock:
            orgs = list(self._local_orgs)
        wanted: Dict[str, int] = {}
        for remote_party, vector in (remote_vectors or {}).items():
            for object_id, entry in (vector or {}).items():
                version = int((entry or {}).get("version") or 0)
                if object_id not in wanted or version < wanted[object_id]:
                    wanted[object_id] = version
                digest = str((entry or {}).get("digest") or "")
                for org in orgs:
                    controller = org.controller
                    if (
                        controller.is_shared(object_id)
                        and controller.get_version(object_id) == version
                        and controller.state_digest(object_id).hex() != digest
                    ):
                        controller.note_resync_divergence(
                            object_id, remote_party, version, digest
                        )
        records: Dict[str, List[bytes]] = {}
        for object_id, from_version in sorted(wanted.items()):
            for org in orgs:
                served = org.controller.resync_records(object_id, from_version)
                if served:
                    records[object_id] = [
                        codec.encode(record) for record in served
                    ]
                    break
        return records

    def _apply_resync_records(self, records: Dict[str, List[bytes]]) -> int:
        """Apply served records to every stale local replica; counts applies.

        Each apply is signature-checked and version-guarded by the
        controller (:meth:`B2BObjectController.apply_resync_record`); a
        record that fails verification stops that replica's catch-up at the
        last good version instead of poisoning it.
        """
        with self._lock:
            orgs = list(self._local_orgs)
        applied = 0
        for object_id in sorted(records or {}):
            decoded = [codec.decode(raw) for raw in records[object_id]]
            decoded.sort(key=lambda record: int(record.get("new_version") or 0))
            for org in orgs:
                controller = org.controller
                if not controller.is_shared(object_id):
                    continue
                for record in decoded:
                    try:
                        if controller.apply_resync_record(dict(record)):
                            applied += 1
                    except EvidenceVerificationError:
                        break
        return applied

    def _handle_resync(self, payload: Any) -> Dict[str, Any]:
        """Serve one anti-entropy compare: our vectors plus what the caller lacks."""
        self._require_ready()
        remote_vectors = (payload or {}).get("vectors") or {}
        return {
            "vectors": self._local_vectors(),
            "records": self._records_for_remote(remote_vectors),
        }

    def _handle_resync_apply(self, payload: Any) -> Dict[str, Any]:
        """Absorb records a fresher caller pushed for replicas we are behind on."""
        self._require_ready()
        applied = self._apply_resync_records((payload or {}).get("records") or {})
        return {"applied": applied}

    def resync_with(self, host: str, port: int) -> Dict[str, int]:
        """One anti-entropy round with the node at ``host:port``.

        Compares per-object ``(version, digest)`` vectors over the system
        channel: whatever the peer is ahead on comes back and is applied
        here (signature-checked, version-guarded), and whatever *we* are
        ahead on is pushed to the peer in a follow-up ``resync-apply``.  One
        initiator therefore converges both sides.  Returns the applied
        counts as ``{"pulled": n, "pushed": m}``.
        """
        reply = self.network.system_request(
            (host, port), "resync", {"vectors": self._local_vectors()}
        )
        pulled = self._apply_resync_records((reply or {}).get("records") or {})
        push = self._records_for_remote((reply or {}).get("vectors") or {})
        pushed = 0
        if push:
            apply_reply = self.network.system_request(
                (host, port), "resync-apply", {"records": push}
            )
            pushed = int((apply_reply or {}).get("applied") or 0)
        return {"pulled": pulled, "pushed": pushed}

    def resync_with_peers(self) -> Dict[str, Dict[str, int]]:
        """Run one anti-entropy round with every known peer process.

        The restart-time entry point: a recovering process registers its
        objects (resuming their durable versions), replays its run journal,
        then calls this to pull whatever was agreed while it was down.
        Unreachable peers are skipped -- the next reconnect's automatic
        resync (see ``resync_on_connect``) is the backstop.
        """
        with self._lock:
            addresses = sorted(set(self._remote_addresses.values()))
        own = (self.advertised_host, self.port)
        seen: set = set()
        results: Dict[str, Dict[str, int]] = {}
        for address in addresses:
            try:
                hostport = self.network.address_book.resolve(address)
            except UnknownEndpointError:
                continue
            if hostport == own or hostport in seen:
                continue
            seen.add(hostport)
            try:
                results[f"{hostport[0]}:{hostport[1]}"] = self.resync_with(
                    hostport[0], hostport[1]
                )
            except DeliveryError:
                continue
        return results

    # -- teardown ------------------------------------------------------------------

    def serve_observability(self, port: int = 0):
        """Start (or return) the node's metrics/spans HTTP endpoint.

        Serves ``/metrics`` (Prometheus text), ``/metrics.json`` and
        ``/spans.json`` for the *process-wide* observability plane on
        ``127.0.0.1:port`` (``0`` picks a free port; read it back from
        ``observability_server.port``).  Stopped by :meth:`close`.
        """
        if self.observability_server is None:
            from repro.observability.exporters import ObservabilityHTTPServer

            self.observability_server = ObservabilityHTTPServer(port=port)
        return self.observability_server

    def close(self) -> None:
        """Stop the node (serve loop and client connections)."""
        server, self.observability_server = self.observability_server, None
        if server is not None:
            server.close()
        self.network.close()

    def __enter__(self) -> "WireTransport":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()
