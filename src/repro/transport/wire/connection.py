"""Per-destination connection pool with reconnect-on-failure.

The pool owns every client socket of a :class:`~repro.transport.wire.network.
WireNetwork`.  One *connection* carries one request/response exchange at a
time (a request frame out, a reply frame back), so correlation is positional
and a reply can never be attributed to the wrong caller; concurrency towards
one peer comes from pooling several connections, which is what lets a
parallel dispatch strategy overlap a fan-out's socket round trips.

Failure model: every socket-level failure (connect refused, reset, timeout,
EOF mid-frame) closes the affected connection, removes it from the pool and
surfaces as a retryable :class:`~repro.errors.DeliveryError`.  The existing
retry state machines (:class:`repro.transport.delivery.ReliableChannel`,
scheduled or blocking) then drive recovery: their next attempt simply opens
a fresh connection.  :meth:`ConnectionPool.kill` closes live sockets on
purpose, and :meth:`ConnectionPool.request` accepts an injected ``fault``
("reset" kills the socket under the request, "corrupt-frame" sends a
deliberately malformed frame) -- both flow through the *same* discard +
:class:`DeliveryError` path as organic failures, which is the point: chaos
plans exercise the real recovery machinery, not a parallel code path.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import DeliveryError
from repro.transport.wire.framing import (
    MAX_FRAME_BYTES,
    FramingError,
    read_frame,
    write_frame,
)

__all__ = ["ConnectionPool"]

HostPort = Tuple[str, int]

#: A length prefix announcing an impossible frame: the receiving server must
#: reject it as a framing violation and kill the connection.
_CORRUPT_FRAME = struct.pack("!I", MAX_FRAME_BYTES + 1) + b"\xde\xad\xbe\xef"


class _Connection:
    """One pooled client socket; used by one request at a time.

    ``sock`` is ``None`` while the entry is a placeholder whose connect is
    still in progress (no kernel resources are held for placeholders).
    """

    __slots__ = ("sock", "hostport", "busy", "alive", "retire")

    def __init__(self, sock: Optional[socket.socket], hostport: HostPort) -> None:
        self.sock = sock
        self.hostport = hostport
        self.busy = False
        self.alive = True
        # Marked by close_peer() on a busy connection: finish the in-flight
        # exchange, then close instead of returning to the pool.
        self.retire = False

    def close(self) -> None:
        self.alive = False
        if self.sock is None:
            return
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class ConnectionPool:
    """Pooled, reconnecting request/response connections, keyed by peer."""

    def __init__(
        self,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        max_connections_per_peer: int = 8,
    ) -> None:
        if max_connections_per_peer < 1:
            raise ValueError("the pool needs at least one connection per peer")
        self._connect_timeout = connect_timeout
        self._request_timeout = request_timeout
        self._max_per_peer = max_connections_per_peer
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._connections: Dict[HostPort, List[_Connection]] = {}
        self._closed = False
        # Bumped by every kill(): a connect that was in progress when a kill
        # swept the pool must not hand back a live connection the sweep
        # could not see (it would dodge both fault injection and close()).
        self._kill_epoch = 0
        # Per-peer counterpart, bumped by close_peer(): a channel eviction
        # must not strand a connection whose connect it could not see,
        # without invalidating in-progress connects to unrelated peers.
        self._peer_epochs: Dict[HostPort, int] = {}
        self.connections_opened = 0
        self.connection_failures = 0
        self.requests_sent = 0
        self.peer_releases = 0

    # -- acquisition --------------------------------------------------------------

    def _connect(self, hostport: HostPort) -> socket.socket:
        sock = None
        try:
            sock = socket.create_connection(hostport, timeout=self._connect_timeout)
            sock.settimeout(self._request_timeout)
            # Frames are small and latency-bound; never batch in the kernel.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as error:
            # Covers option-setting on a just-reset socket too: anything
            # escaping here but DeliveryError would leak the caller's busy
            # pool placeholder and eat a slot forever.
            if sock is not None:
                sock.close()
            with self._lock:
                self.connection_failures += 1
            raise DeliveryError(
                f"cannot connect to peer process at {hostport[0]}:{hostport[1]}: {error}"
            ) from error

    def _acquire(self, hostport: HostPort) -> _Connection:
        with self._condition:
            while True:
                if self._closed:
                    raise DeliveryError("connection pool is closed")
                pool = self._connections.setdefault(hostport, [])
                # Prune dead idle entries; busy ones include placeholders
                # whose connect is still in progress on another thread.
                pool[:] = [conn for conn in pool if conn.alive or conn.busy]
                for conn in pool:
                    if not conn.busy and conn.alive:
                        conn.busy = True
                        return conn
                if len(pool) < self._max_per_peer:
                    placeholder = _Connection(None, hostport)
                    placeholder.busy = True
                    placeholder.alive = False  # not usable until connected
                    pool.append(placeholder)
                    epoch = (self._kill_epoch, self._peer_epochs.get(hostport, 0))
                    break
                self._condition.wait(0.05)
        try:
            sock = self._connect(hostport)
        except DeliveryError:
            with self._condition:
                self._discard(placeholder)
            raise
        with self._condition:
            current = (self._kill_epoch, self._peer_epochs.get(hostport, 0))
            if not self._closed and current == epoch:
                placeholder.sock = sock
                placeholder.alive = True
                self.connections_opened += 1
                return placeholder
            # A close()/kill() swept the pool while we were connecting;
            # honour it instead of smuggling in an unseen connection.
            self._discard(placeholder)
        try:
            sock.close()
        except OSError:
            pass
        raise DeliveryError(
            f"connection to {hostport[0]}:{hostport[1]} was closed by a "
            "concurrent pool shutdown or kill"
        )

    def _discard(self, conn: _Connection) -> None:
        """Drop a connection from its pool slot; caller holds the lock."""
        conn.alive = False
        pool = self._connections.get(conn.hostport, [])
        if conn in pool:
            pool.remove(conn)
        self._condition.notify_all()

    def _release(self, conn: _Connection) -> None:
        with self._condition:
            conn.busy = False
            if conn.retire and conn.alive:
                self._discard(conn)
            else:
                conn = None
            self._condition.notify_all()
        if conn is not None:
            conn.close()

    # -- request/response ---------------------------------------------------------

    def request(
        self, hostport: HostPort, payload: bytes, fault: Optional[str] = None
    ) -> bytes:
        """Send one frame to the peer at ``hostport`` and await its reply.

        Any transport-level failure closes the connection and raises a
        retryable :class:`DeliveryError`; the next attempt reconnects.

        ``fault`` injects a transport failure into this exchange instead of
        performing it (see :meth:`_faulted_request`); the caller's retry
        machinery recovers exactly as it would from the organic equivalent.
        """
        conn = self._acquire(hostport)
        if fault is not None:
            self._faulted_request(conn, hostport, fault)
        try:
            write_frame(conn.sock, payload)
        except FramingError:
            # Outgoing size violation: input-determined, hence *permanent*
            # (retry layers only re-attempt DeliveryError).  The size check
            # fires before any byte is sent, so the connection is intact.
            self._release(conn)
            raise
        except Exception as error:
            with self._condition:
                self._discard(conn)
            conn.close()
            if isinstance(error, DeliveryError):
                raise
            raise DeliveryError(
                f"request to peer process at {hostport[0]}:{hostport[1]} "
                f"failed: {error}"
            ) from error
        try:
            reply = read_frame(conn.sock)
        except Exception as error:
            # Everything on the read side -- EOF, reset, timeout, and a
            # FramingError from a desynced stream -- is transport
            # corruption: close the connection and let retries recover.
            with self._condition:
                self._discard(conn)
            conn.close()
            if isinstance(error, DeliveryError):
                raise
            raise DeliveryError(
                f"request to peer process at {hostport[0]}:{hostport[1]} "
                f"failed: {error}"
            ) from error
        with self._lock:
            self.requests_sent += 1
        self._release(conn)
        return reply

    def _faulted_request(
        self, conn: _Connection, hostport: HostPort, fault: str
    ) -> None:
        """Apply an injected transport fault to an acquired connection.

        Always raises: ``"reset"`` closes the socket under the exchange (the
        peer observes a clean disconnect, the caller a failed request);
        ``"corrupt-frame"`` sends a malformed length prefix the server must
        reject, killing the connection from the far side.  Either way the
        connection is discarded and a retryable :class:`DeliveryError`
        surfaces -- the same taxonomy as organic socket failures.
        """
        try:
            if fault == "reset":
                conn.close()
                raise DeliveryError(
                    f"connection to peer process at {hostport[0]}:{hostport[1]} "
                    "was reset by fault injection"
                )
            if fault == "corrupt-frame":
                conn.sock.sendall(_CORRUPT_FRAME)
                # A correct peer kills the connection on the framing
                # violation; the read below surfaces that as EOF.
                read_frame(conn.sock)
                raise DeliveryError(
                    f"peer process at {hostport[0]}:{hostport[1]} answered a "
                    "corrupt frame instead of closing the connection"
                )
            raise DeliveryError(f"unknown injected fault {fault!r}")
        except Exception as error:
            with self._condition:
                self._discard(conn)
            conn.close()
            if isinstance(error, DeliveryError):
                raise
            raise DeliveryError(
                f"request to peer process at {hostport[0]}:{hostport[1]} "
                f"failed: {error}"
            ) from error

    # -- fault injection and teardown ---------------------------------------------

    def live_connections(self, hostport: Optional[HostPort] = None) -> int:
        """Number of open connections (to one peer, or overall)."""
        with self._lock:
            pools = (
                [self._connections.get(hostport, [])]
                if hostport is not None
                else list(self._connections.values())
            )
            return sum(1 for pool in pools for conn in pool if conn.alive)

    def kill(self, hostport: Optional[HostPort] = None) -> int:
        """Forcibly close open connections (all peers, or one).

        The fault-injection hook: in-flight requests on the killed sockets
        fail with a retryable :class:`DeliveryError` and the retry engines
        reconnect on their next attempt.  Returns how many were closed.
        """
        with self._condition:
            self._kill_epoch += 1  # connects in progress discard themselves
            victims = [
                conn
                for hp, pool in self._connections.items()
                if hostport is None or hp == hostport
                for conn in pool
                if conn.alive
            ]
            for conn in victims:
                self._discard(conn)
        for conn in victims:
            conn.close()
        return len(victims)

    def close_peer(self, hostport: HostPort) -> int:
        """Gracefully release one peer's pooled connections (channel eviction).

        Unlike :meth:`kill`, this is a resource-reclaim path, not a fault:
        idle connections close immediately, while busy ones finish their
        in-flight exchange and close on release instead of returning to
        the pool -- no request is failed.  Returns how many idle
        connections were closed now.
        """
        with self._condition:
            self._peer_epochs[hostport] = self._peer_epochs.get(hostport, 0) + 1
            pool = self._connections.get(hostport, [])
            victims = [conn for conn in pool if conn.alive and not conn.busy]
            for conn in victims:
                self._discard(conn)
            for conn in pool:
                if conn.alive and conn.busy:
                    conn.retire = True
            self.peer_releases += 1
        for conn in victims:
            conn.close()
        return len(victims)

    def close(self) -> None:
        """Close every connection and refuse further requests."""
        with self._condition:
            self._closed = True
        self.kill()
