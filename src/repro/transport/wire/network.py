"""Socket-backed network implementing the simulated network's surface.

A :class:`WireNetwork` is one *node* of a cross-process deployment: it hosts
the local endpoints of this process (registered exactly like on a
:class:`~repro.transport.network.SimulatedNetwork`), serves inbound frames
for them through a :class:`~repro.transport.wire.server.WireServer`, and
sends to endpoints hosted elsewhere through a per-peer
:class:`~repro.transport.wire.connection.ConnectionPool`, resolving the
destination process via a :class:`~repro.transport.wire.peers.
PeerAddressBook`.

The class exposes the same ``register`` / ``send`` / ``send_batch`` surface
(and the same :class:`~repro.transport.network.NetworkStatistics`,
``clock``, ``retry_scheduler`` and dispatch-strategy attachment points) as
the simulator, so every layer above -- :class:`~repro.transport.delivery.
ReliableChannel` state machines, :class:`~repro.transport.scheduler.
RetryScheduler` futures, :class:`~repro.transport.network.ParallelDispatch`,
the async run engine -- works unchanged on real sockets.

Invariants preserved relative to the simulator:

* **Accounting is sender-side.**  Every counter of ``statistics`` is taken
  by the node that *originates* a message (attempts and sends at admission,
  delivered/bytes on a successful reply, dropped on loss), so summing the
  statistics of all nodes of a deployment yields exactly the global view
  the simulator keeps, and ``messages_per_update`` / ``bytes_per_update``
  match the simulated transport.  Byte counts use the same canonical
  envelope size the simulator charges, not raw frame bytes.
* **Failure taxonomy.**  Socket-level failures (refused, reset, timeout)
  and offline endpoints surface as retryable
  :class:`~repro.errors.DeliveryError`; unmapped or unregistered endpoints
  as permanent :class:`~repro.errors.UnknownEndpointError`; exceptions
  raised by the remote handler are revived as themselves (see
  :func:`~repro.transport.wire.wirecodec.revive_error`) after the delivery
  was counted -- exactly the simulator's semantics, which is what keeps the
  retry state machines' recovery behaviour identical.
* **Local fast path.**  A destination registered on *this* node is invoked
  in process (no socket), like the simulator would; only genuinely remote
  destinations pay a frame round trip.

Fault injection: a seeded :class:`repro.faults.FaultPlan` attached via
``fault_plan=`` (or :meth:`WireNetwork.set_fault_plan`) is consulted at
admission by the same :class:`repro.faults.FaultInjector` engine the
simulator uses -- but here the decisions are realised as *real* transport
faults: a drop skips the round trip, a corrupt frame or injected reset is
performed on the actual socket (see
:meth:`~repro.transport.wire.connection.ConnectionPool.request`), a
duplicate performs the exchange twice, and crash rules fire the server's
:class:`~repro.faults.FailpointRegistry`.  Every injected failure flows
through the organic :class:`~repro.errors.DeliveryError` taxonomy, so the
recovery machinery exercised under chaos is exactly the machinery
production traffic relies on.  With no plan attached behaviour is
byte-identical to earlier releases; the wire's organic faults (kill a
connection, stop a peer) remain available regardless.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clock import Clock, MonotonicCounter, SystemClock
from repro.errors import DeliveryError, UnknownEndpointError
from repro.faults.breaker import CircuitBreaker
from repro.faults.failpoints import VERB_CLOSE, FailpointRegistry
from repro.faults.plan import FaultDecision, FaultPlan
from repro.observability import tracing as _tracing
from repro.observability.runtime import STATE as _OBS
from repro.transport.network import (
    AUDIT_CATEGORY_TRANSPORT,
    BatchResult,
    DispatchStrategy,
    Endpoint,
    EndpointHandler,
    Message,
    NetworkStatistics,
    SequentialDispatch,
)
from repro.transport.recorder import MessageTraceRecorder
from repro.transport.scheduler import RetryScheduler
from repro.transport.wire import wirecodec
from repro.transport.wire.connection import ConnectionPool
from repro.transport.wire.framing import MAX_FRAME_BYTES, FramingError
from repro.transport.wire.peers import HostPort, PeerAddressBook
from repro.transport.wire.server import WireServer

__all__ = [
    "FAILPOINT_CLIENT_AFTER_SEND",
    "FAILPOINT_CLIENT_BEFORE_SEND",
    "SYSTEM_ADDRESS",
    "WireNetwork",
]

#: Reserved destination served by the node itself (credential exchange,
#: peer introduction) rather than by a registered endpoint.  System traffic
#: is infrastructure, not protocol traffic, and is not accounted in
#: ``statistics`` -- mirroring the simulator, where key exchange happens out
#: of band.
SYSTEM_ADDRESS = "@system"

#: Client-side crash failpoints, fired around the primary socket exchange of
#: every remote protocol delivery (system traffic is infrastructure and draws
#: none).  ``before-send`` models a sender dying with the message unsent --
#: no peer ever sees it; ``after-send`` models the classic reply-lost window
#: -- the peer processed the message but the sender never learns it, so a
#: retry exercises the receiver's duplicate suppression.  The server-side
#: counterparts are ``server-before-dispatch`` / ``server-before-reply``.
FAILPOINT_CLIENT_BEFORE_SEND = "client-before-send"
FAILPOINT_CLIENT_AFTER_SEND = "client-after-send"


class WireNetwork:
    """One node of a socket-connected deployment."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Optional[Clock] = None,
        dispatch: Optional[DispatchStrategy] = None,
        retry_scheduler: Optional[RetryScheduler] = None,
        address_book: Optional[PeerAddressBook] = None,
        connection_pool: Optional[ConnectionPool] = None,
        system_handlers: Optional[Dict[str, Callable[[Any], Any]]] = None,
        fault_plan: Optional[FaultPlan] = None,
        max_inflight_frames: Optional[int] = None,
    ) -> None:
        self.clock = clock or SystemClock()
        self.dispatch = dispatch or SequentialDispatch()
        self.retry_scheduler = retry_scheduler
        self.address_book = address_book or PeerAddressBook()
        self.statistics = NetworkStatistics()
        self.pool = connection_pool or ConnectionPool()
        #: Named failpoints the serve loop fires; armed explicitly or by a
        #: fault plan's ``crash`` rules.
        self.failpoints = FailpointRegistry()
        self.fault_plan: Optional[FaultPlan] = None
        self.fault_injector = None
        #: Optional per-peer breaker consulted by channels over this node
        #: (see :meth:`attach_circuit_breaker`).
        self.circuit_breaker: Optional[CircuitBreaker] = None
        #: Optional lazy channel manager (see :meth:`attach_peer_manager`).
        self.peer_manager = None
        self.audit_log = None
        self._endpoints: Dict[str, Endpoint] = {}
        # ``system_handlers`` passed here are installed BEFORE the server
        # starts accepting: on a fixed port, a fast peer's first frame can
        # land the instant the listener is up, and it must find the node's
        # infrastructure operations (credential exchange) already serving.
        self._system_handlers: Dict[str, Callable[[Any], Any]] = dict(
            system_handlers or {}
        )
        self._lock = threading.RLock()
        self._message_counter = MonotonicCounter(1)
        self._seq = MonotonicCounter(1)
        self._recorder = MessageTraceRecorder()
        self.trace_enabled = False
        self._closed = False
        if fault_plan is not None:
            self.set_fault_plan(fault_plan)
        self.server = WireServer(
            self._serve_frame,
            host=host,
            port=port,
            max_inflight=max_inflight_frames,
            shed_reply=self._shed_reply,
            on_frame_error=self._on_frame_error,
            failpoints=self.failpoints,
        )

    # -- node identity -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def set_dispatch(self, dispatch: DispatchStrategy) -> None:
        """Switch the handler-dispatch strategy for subsequent batches."""
        self.dispatch = dispatch

    def set_retry_scheduler(self, scheduler: Optional[RetryScheduler]) -> None:
        """Attach (or detach) the event-driven retry scheduler (see simulator)."""
        self.retry_scheduler = scheduler

    # -- endpoint management -------------------------------------------------------

    def register(self, address: str, handler: EndpointHandler) -> Endpoint:
        """Register (or replace) the local handler for ``address``."""
        with self._lock:
            endpoint = Endpoint(address=address, handler=handler)
            self._endpoints[address] = endpoint
            return endpoint

    def unregister(self, address: str) -> None:
        with self._lock:
            self._endpoints.pop(address, None)

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise UnknownEndpointError(
                f"no endpoint registered at {address!r} on this node"
            ) from None

    def addresses(self) -> List[str]:
        """Locally hosted endpoint addresses."""
        return sorted(self._endpoints)

    def set_online(self, address: str, online: bool) -> None:
        """Take a *local* endpoint down (or back up); peers see DeliveryError."""
        self.endpoint(address).online = online

    def register_system_handler(self, operation: str, handler: Callable[[Any], Any]) -> None:
        """Serve ``operation`` on the node's reserved system destination."""
        with self._lock:
            self._system_handlers[operation] = handler

    # -- fault plane / observability -----------------------------------------------

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Attach (or, with ``None``, detach) a seeded fault plan.

        Subsequent admissions consult the plan's injector; its ``crash``
        rules are routed through :attr:`failpoints` so the serve loop fires
        them deterministically.  System traffic (credential exchange, peer
        introduction) is never faulted -- it is unaccounted infrastructure,
        exactly as on the simulator.
        """
        with self._lock:
            self.fault_plan = plan
            self.fault_injector = plan.injector() if plan is not None else None
        self.failpoints.bind_injector(self.fault_injector)

    def attach_audit_log(self, audit_log) -> None:
        """Route transport-level events (breaker transitions, shedding,
        frame-decode failures) to ``audit_log`` under ``"transport"``."""
        self.audit_log = audit_log
        if self.peer_manager is not None:
            self.peer_manager.attach_audit_log(audit_log)

    def attach_peer_manager(self, manager) -> None:
        """Route remote destination resolution through a lazy channel manager.

        With a :class:`~repro.peering.PeerChannelManager` attached, a
        remote destination's first send creates its channel on demand (the
        manager's resolver typically performs the credential introduction)
        instead of requiring the whole peer set to be pre-registered, and
        idle channels are evicted under the manager's policy.  Channel
        evictions are recorded in this node's audit log when one is
        attached.
        """
        self.peer_manager = manager
        if self.audit_log is not None:
            manager.attach_audit_log(self.audit_log)

    def attach_circuit_breaker(self, breaker: CircuitBreaker) -> None:
        """Install a per-peer breaker; channels over this node consult it."""
        breaker.bind(clock=self.clock, on_event=self._on_breaker_event)
        self.circuit_breaker = breaker

    def record_circuit_refusal(self, destination: str) -> None:
        """Count one locally-refused attempt (open circuit) for statistics."""
        with self._lock:
            self.statistics.circuit_open_refusals += 1

    def _on_breaker_event(
        self, destination: str, old_state: str, new_state: str, reason: str
    ) -> None:
        self._audit(
            destination,
            {
                "event": "circuit-breaker-transition",
                "from": old_state,
                "to": new_state,
                "reason": reason,
            },
        )

    def _audit(self, subject: str, details: Dict[str, Any]) -> None:
        log = self.audit_log
        if log is None:
            return
        try:
            log.append(
                category=AUDIT_CATEGORY_TRANSPORT, subject=subject, details=details
            )
        except Exception:  # noqa: BLE001 - observability must not break serving
            pass

    def _on_frame_error(self, error: Exception) -> None:
        """An inbound frame failed to decode; the connection is being killed.

        Receiver-side observability only: the *sender* accounts the drop
        when its request fails (sender-side accounting keeps node sums equal
        to the simulator's global view), but the poisoned stream is counted
        and audited here so it is never silent.
        """
        with self._lock:
            self.statistics.frame_decode_failures += 1
        self._audit(
            f"{self.host}:{self.port}",
            {
                "event": "frame-decode-failure",
                "error": str(error),
                "action": "connection closed",
            },
        )

    def _shed_reply(self, raw_request: bytes) -> bytes:
        """Build the retryable error reply for a load-shed inbound frame."""
        seq = 0
        try:
            request = wirecodec.decode_body(raw_request)
            if isinstance(request, dict):
                seq = request.get("seq", 0) or 0
        except Exception:  # noqa: BLE001 - shed even what we cannot decode
            pass
        with self._lock:
            self.statistics.messages_shed += 1
        self._audit(
            f"{self.host}:{self.port}",
            {"event": "inbound-frame-shed", "seq": seq, "reason": "overload"},
        )
        return self._error_reply(
            seq,
            DeliveryError(
                "node overloaded: inbound frame shed by backpressure; retry"
            ),
            delivered=False,
        )

    # -- sending -------------------------------------------------------------------

    def _admit_locked(self, message: Message) -> None:
        """Sender-side admission accounting, identical for send and send_batch."""
        self.statistics.messages_sent += 1
        self.statistics.per_operation[message.operation] = (
            self.statistics.per_operation.get(message.operation, 0) + 1
        )
        self.statistics.attempts_per_destination[message.destination] = (
            self.statistics.attempts_per_destination.get(message.destination, 0) + 1
        )
        if self.trace_enabled:
            self._recorder.record(message)

    def _decide_locked(self, message: Message) -> Optional[FaultDecision]:
        """Consult the fault injector for one admitted message.

        Called under the admission lock, in entry order, so the draw
        sequence is deterministic -- and identical to the simulator's for
        the same traffic, which is what the cross-transport chaos suite
        leans on.  Duplicate/reorder counters are taken here, mirroring the
        simulator's admission accounting.
        """
        if self.fault_injector is None:
            return None
        decision = self.fault_injector.decide(
            message.sender, message.destination, message.operation
        )
        if decision.duplicate:
            self.statistics.messages_duplicated += 1
        if decision.reorder:
            self.statistics.messages_reordered += 1
        if decision.latency:
            self.statistics.total_latency += decision.latency
        return decision

    def _loss_error(self, message: Message, decision: FaultDecision) -> DeliveryError:
        if decision.partitioned:
            return DeliveryError(
                f"link {message.sender!r} -> {message.destination!r} severed "
                f"by fault plan: {decision.reason}"
            )
        return DeliveryError(
            f"message {message.message_id} from {message.sender!r} to "
            f"{message.destination!r} was lost ({decision.reason})"
        )

    def _account_delivered_locked(self, message: Message) -> None:
        self.statistics.messages_delivered += 1
        self.statistics.deliveries_per_destination[message.destination] = (
            self.statistics.deliveries_per_destination.get(message.destination, 0) + 1
        )
        self.statistics.bytes_delivered += message.encoded_size()
        if message.sizing == "repr":
            self.statistics.messages_sized_by_repr += 1

    def _deliver_local(
        self,
        endpoint: Endpoint,
        message: Message,
        decision: Optional[FaultDecision] = None,
    ) -> Any:
        """Deliver to an endpoint hosted on this node (no socket).

        Injected losses (drop / corrupt / reset / partition window) destroy
        the message before the handler, exactly like on the simulator; a
        duplicate invokes the handler twice.
        """
        if decision is not None and decision.lost:
            with self._lock:
                self.statistics.messages_dropped += 1
            raise self._loss_error(message, decision)
        with self._lock:
            if not endpoint.online:
                self.statistics.messages_dropped += 1
                raise DeliveryError(f"endpoint {message.destination!r} is offline")
            self._account_delivered_locked(message)
        if decision is not None:
            if decision.latency:
                self.clock.sleep(decision.latency)
            if decision.duplicate:
                _tracing.call_in_ctx(message.trace, endpoint.handler, message)
        # Batch dispatch may hop threads: restore the sender's span context
        # around the handler so responder spans stay parented to the run.
        return _tracing.call_in_ctx(message.trace, endpoint.handler, message)

    def _round_trip(
        self,
        hostport: HostPort,
        sender: str,
        destination: str,
        operation: str,
        payload: Any,
        message_id: int,
        fault: Optional[str] = None,
        trace: Optional[Tuple[str, str]] = None,
    ) -> Dict[str, Any]:
        """One request/reply exchange with a peer; returns the reply envelope.

        The single definition of the wire's failure taxonomy, shared by
        protocol and system traffic: :class:`~repro.transport.wire.wirecodec.
        WireCodecError` for an unencodable *request* (permanent,
        input-determined), :class:`FramingError` for a frame-size violation
        (permanent, passed through by the pool unwrapped so retry layers do
        not burn their budget), :class:`DeliveryError` for everything
        transport-shaped -- unreachable peer, corrupt reply frame, lost
        correlation -- which retries recover.
        """
        seq = self._seq.next()
        envelope = {
            "kind": "call",
            "seq": seq,
            "sender": sender,
            "destination": destination,
            "operation": operation,
            "message_id": message_id,
            "payload": payload,
        }
        if trace is not None:
            # In-band span-context propagation.  The key is simply absent
            # when tracing is off, and frame bytes are never what the
            # statistics charge (they use the canonical envelope size), so
            # accounted byte counters are identical either way.
            envelope["trace"] = list(trace)
        request = wirecodec.encode_body(envelope)
        observe = _OBS.observe_round_trip
        started = perf_counter() if observe is not None else 0.0
        raw_reply = self.pool.request(hostport, request, fault=fault)
        if observe is not None:
            observe(perf_counter() - started)
        try:
            reply = wirecodec.decode_body(raw_reply)
        except wirecodec.WireCodecError as error:
            raise DeliveryError(
                f"peer at {hostport[0]}:{hostport[1]} sent an undecodable "
                f"reply: {error}"
            ) from error
        if not isinstance(reply, dict) or reply.get("seq") != seq:
            raise DeliveryError(
                f"peer at {hostport[0]}:{hostport[1]} answered out of sequence "
                f"(frame correlation lost)"
            )
        return reply

    def _deliver_remote(
        self,
        hostport: HostPort,
        message: Message,
        decision: Optional[FaultDecision] = None,
    ) -> Any:
        """Deliver across a socket; accounting resolves on the reply.

        Injected faults are realised here: a drop (or partition window)
        skips the round trip and counts the loss; corrupt-frame and reset
        decisions are performed on the real socket by the pool; a duplicate
        performs a best-effort extra exchange first (same ``message_id``, so
        receivers exercise their duplicate suppression) with the primary
        exchange deciding the outcome.
        """
        fault = None
        if decision is not None:
            if decision.drop or decision.partitioned:
                with self._lock:
                    self.statistics.messages_dropped += 1
                raise self._loss_error(message, decision)
            if decision.latency:
                self.clock.sleep(decision.latency)
            if decision.corrupt:
                fault = "corrupt-frame"
            elif decision.reset:
                fault = "reset"
            elif decision.duplicate:
                try:
                    self._round_trip(
                        hostport,
                        message.sender,
                        message.destination,
                        message.operation,
                        message.payload,
                        message.message_id,
                        trace=message.trace,
                    )
                except Exception:  # noqa: BLE001 - the duplicate leg is
                    pass  # best-effort; the primary leg decides the outcome
        # Client-side crash failpoint, pre-send: a plan's crash rule (or an
        # armed callable, which may SIGKILL this process) fires with the
        # message still unsent -- the peer never sees it.
        if self.failpoints.fire(FAILPOINT_CLIENT_BEFORE_SEND, message) == VERB_CLOSE:
            self.pool.close_peer(hostport)
            with self._lock:
                self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"client crash failpoint before send to {message.destination!r}"
            )
        try:
            reply = self._round_trip(
                hostport,
                message.sender,
                message.destination,
                message.operation,
                message.payload,
                message.message_id,
                fault=fault,
                trace=message.trace,
            )
        except (wirecodec.WireCodecError, DeliveryError, FramingError):
            # Every round-trip failure -- permanent or retryable, see
            # _round_trip -- is a loss: the message never reached a handler.
            with self._lock:
                self.statistics.messages_dropped += 1
            raise
        # Client-side crash failpoint, post-exchange: the peer (most likely)
        # processed the message, but this sender dies before accounting the
        # reply -- the reply-lost window the receivers' dedup absorbs when
        # the retry machinery re-sends.
        if self.failpoints.fire(FAILPOINT_CLIENT_AFTER_SEND, message) == VERB_CLOSE:
            self.pool.close_peer(hostport)
            with self._lock:
                self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"client crash failpoint after send to {message.destination!r}"
            )
        if reply.get("status") == "ok":
            with self._lock:
                self._account_delivered_locked(message)
            return reply.get("result")
        # The peer reports whether the message reached its handler: handler
        # failures count as delivered (the simulator delivers before the
        # handler runs), transport-stage failures count as dropped.
        error = wirecodec.revive_error(
            reply.get("error_type", "DeliveryError"),
            reply.get("error_message", "peer reported an unspecified failure"),
        )
        with self._lock:
            if reply.get("delivered"):
                self._account_delivered_locked(message)
            else:
                self.statistics.messages_dropped += 1
        raise error

    def _resolve(self, destination: str) -> Tuple[Optional[Endpoint], Optional[HostPort]]:
        """Map a destination to a local endpoint or a peer process."""
        with self._lock:
            endpoint = self._endpoints.get(destination)
        if endpoint is not None:
            return endpoint, None
        return None, self.address_book.resolve(destination)

    def send(self, sender: str, destination: str, operation: str, payload: Any) -> Any:
        """Deliver a message and return the destination handler's reply.

        Same contract as :meth:`SimulatedNetwork.send`: raises
        :class:`DeliveryError` on (real) loss, :class:`UnknownEndpointError`
        when no node hosts the destination; callers needing guaranteed
        delivery wrap sends in a :class:`ReliableChannel`.
        """
        message = Message(
            sender=sender,
            destination=destination,
            operation=operation,
            payload=payload,
            message_id=self._message_counter.next(),
        )
        if _OBS.tracing is not None:
            message.trace = _tracing.current_ctx()
        if self.peer_manager is not None:
            return self._send_via_manager(message)
        with self._lock:
            self._admit_locked(message)
            try:
                endpoint, hostport = self._resolve(destination)
            except UnknownEndpointError:
                self.statistics.messages_dropped += 1
                raise
            # Decide AFTER the endpoint resolves (unknown destinations draw
            # no faults), matching the simulator's admission order so seeded
            # draw sequences stay identical across transports.
            decision = self._decide_locked(message)
        if endpoint is not None:
            return self._deliver_local(endpoint, message, decision)
        return self._deliver_remote(hostport, message, decision)

    def _send_via_manager(self, message: Message) -> Any:
        """``send`` with a lazy channel manager attached.

        Channel resolution may perform a credential round trip, so it runs
        *outside* the admission lock; the fault decision is still drawn
        only after the destination resolves (unknown destinations draw no
        faults), keeping seeded draw sequences identical to the
        manager-less path and the simulator.  A failed lazy resolution
        counts as a drop of the admitted message: retryable resolver
        failures surface as :class:`DeliveryError` for the retry machinery,
        unknown peers as permanent :class:`UnknownEndpointError`.
        """
        with self._lock:
            self._admit_locked(message)
            endpoint = self._endpoints.get(message.destination)
        if endpoint is None:
            try:
                hostport = self.peer_manager.resolve(message.destination)
            except (UnknownEndpointError, DeliveryError):
                with self._lock:
                    self.statistics.messages_dropped += 1
                raise
        with self._lock:
            decision = self._decide_locked(message)
        if endpoint is not None:
            return self._deliver_local(endpoint, message, decision)
        return self._deliver_remote(hostport, message, decision)

    def send_batch(
        self, sender: str, entries: List[Tuple[str, str, Any]]
    ) -> List[BatchResult]:
        """Deliver a fan-out, accounting each entry exactly like ``send``.

        Admission runs under one lock acquisition in entry order (counters
        are deterministic regardless of strategy); the admitted deliveries
        then run through the configured :class:`DispatchStrategy` -- under
        :class:`~repro.transport.network.ParallelDispatch` the socket round
        trips of one wave overlap across destinations.  Per-entry failures
        are returned, never raised.
        """
        results: List[BatchResult] = [BatchResult() for _ in entries]
        if self.peer_manager is not None:
            admitted = self._admit_batch_via_manager(sender, entries, results)
        else:
            admitted = self._admit_batch(sender, entries, results)

        # Injected reordering: deterministically defer flagged entries to
        # the back of the wave (stable), mirroring the simulator.
        if any(entry[4] is not None and entry[4].reorder for entry in admitted):
            admitted = [
                e for e in admitted if e[4] is None or not e[4].reorder
            ] + [e for e in admitted if e[4] is not None and e[4].reorder]

        def make_unit(
            index: int,
            message: Message,
            endpoint: Optional[Endpoint],
            hostport: Optional[HostPort],
            decision: Optional[FaultDecision],
        ) -> Callable[[], None]:
            def unit() -> None:
                try:
                    if endpoint is not None:
                        results[index].result = self._deliver_local(
                            endpoint, message, decision
                        )
                    else:
                        results[index].result = self._deliver_remote(
                            hostport, message, decision
                        )
                except Exception as error:  # per-entry isolation, as simulated
                    results[index].error = error

            return unit

        self.dispatch.run([make_unit(*entry) for entry in admitted])
        return results

    def _admit_batch(
        self,
        sender: str,
        entries: List[Tuple[str, str, Any]],
        results: List[BatchResult],
    ) -> List[
        Tuple[
            int,
            Message,
            Optional[Endpoint],
            Optional[HostPort],
            Optional[FaultDecision],
        ]
    ]:
        """Admission + resolution + fault draws, one lock pass in entry order."""
        admitted = []
        trace_ctx = _tracing.current_ctx() if _OBS.tracing is not None else None
        with self._lock:
            for index, (destination, operation, payload) in enumerate(entries):
                message = Message(
                    sender=sender,
                    destination=destination,
                    operation=operation,
                    payload=payload,
                    message_id=self._message_counter.next(),
                    trace=trace_ctx,
                )
                self._admit_locked(message)
                try:
                    endpoint, hostport = self._resolve(destination)
                except UnknownEndpointError as error:
                    self.statistics.messages_dropped += 1
                    results[index].error = error
                    continue
                decision = self._decide_locked(message)
                admitted.append((index, message, endpoint, hostport, decision))
        return admitted

    def _admit_batch_via_manager(
        self,
        sender: str,
        entries: List[Tuple[str, str, Any]],
        results: List[BatchResult],
    ) -> List[
        Tuple[
            int,
            Message,
            Optional[Endpoint],
            Optional[HostPort],
            Optional[FaultDecision],
        ]
    ]:
        """Batch admission with lazy channel resolution between lock passes.

        Mirrors :meth:`_send_via_manager`: admission (entry order, one lock
        pass), then manager resolution outside the lock -- a wave touching
        many cold peers creates their channels here, possibly evicting
        others -- then fault draws in entry order for the entries that
        resolved, matching the manager-less draw sequence.
        """
        staged = []
        trace_ctx = _tracing.current_ctx() if _OBS.tracing is not None else None
        with self._lock:
            for index, (destination, operation, payload) in enumerate(entries):
                message = Message(
                    sender=sender,
                    destination=destination,
                    operation=operation,
                    payload=payload,
                    message_id=self._message_counter.next(),
                    trace=trace_ctx,
                )
                self._admit_locked(message)
                staged.append((index, message, self._endpoints.get(destination)))
        resolved = []
        for index, message, endpoint in staged:
            hostport = None
            if endpoint is None:
                try:
                    hostport = self.peer_manager.resolve(message.destination)
                except (UnknownEndpointError, DeliveryError) as error:
                    with self._lock:
                        self.statistics.messages_dropped += 1
                    results[index].error = error
                    continue
            resolved.append((index, message, endpoint, hostport))
        with self._lock:
            return [
                (index, message, endpoint, hostport, self._decide_locked(message))
                for index, message, endpoint, hostport in resolved
            ]

    # -- system (infrastructure) requests ------------------------------------------

    def system_request(self, hostport: HostPort, operation: str, payload: Any) -> Any:
        """Call a peer node's system handler (unaccounted infrastructure traffic).

        Same round-trip taxonomy as protocol traffic (see
        :meth:`_round_trip`) minus the statistics; raises the error the
        peer's system handler raised when the call itself failed there.
        """
        reply = self._round_trip(
            hostport, SYSTEM_ADDRESS, SYSTEM_ADDRESS, operation, payload, 0
        )
        if reply.get("status") == "ok":
            return reply.get("result")
        raise wirecodec.revive_error(
            reply.get("error_type", "DeliveryError"),
            reply.get("error_message", "peer reported an unspecified failure"),
        )

    # -- serving -------------------------------------------------------------------

    def _serve_frame(self, raw_request: bytes) -> bytes:
        """Handle one inbound frame; never raises (errors become replies)."""
        seq = 0
        try:
            request = wirecodec.decode_body(raw_request)
            if not isinstance(request, dict) or request.get("kind") != "call":
                raise wirecodec.WireCodecError("frame is not a call envelope")
            seq = request.get("seq", 0)
            destination = request.get("destination", "")
            operation = request.get("operation", "")
            if destination == SYSTEM_ADDRESS:
                result = self._serve_system(operation, request.get("payload"))
                return self._ok_reply(seq, result)
            with self._lock:
                endpoint = self._endpoints.get(destination)
            if endpoint is None:
                raise UnknownEndpointError(
                    f"no endpoint registered at {destination!r}"
                )
            if not endpoint.online:
                raise DeliveryError(f"endpoint {destination!r} is offline")
        except Exception as error:  # transport stage: message never delivered
            return self._error_reply(seq, error, delivered=False)
        message = Message(
            sender=request.get("sender", ""),
            destination=destination,
            operation=operation,
            payload=request.get("payload"),
            message_id=request.get("message_id", -1),
        )
        trace = request.get("trace")
        if trace is not None and isinstance(trace, (list, tuple)) and len(trace) == 2:
            message.trace = (str(trace[0]), str(trace[1]))
        try:
            # Activate the sender's propagated span context (if any) around
            # the handler: spans created while serving this frame join the
            # originating run's trace.
            result = _tracing.call_in_ctx(message.trace, endpoint.handler, message)
            return self._ok_reply(seq, result)
        except Exception as error:  # handler stage: delivered, then failed
            return self._error_reply(seq, error, delivered=True)

    def _serve_system(self, operation: str, payload: Any) -> Any:
        with self._lock:
            handler = self._system_handlers.get(operation)
        if handler is None:
            raise UnknownEndpointError(
                f"this node serves no system operation {operation!r}"
            )
        return handler(payload)

    def _ok_reply(self, seq: int, result: Any) -> bytes:
        try:
            reply = wirecodec.encode_body(
                {"kind": "reply", "seq": seq, "status": "ok", "result": result}
            )
        except wirecodec.WireCodecError as error:
            # The handler returned something the wire cannot carry; report
            # it as a delivered-but-failed call rather than killing the
            # connection.
            return self._error_reply(seq, error, delivered=True)
        if len(reply) > MAX_FRAME_BYTES:
            # An oversized reply would fail write_frame and kill the
            # connection -- which the sender would read as a retryable loss
            # and re-invoke the handler for.  Report the size violation as
            # a delivered-but-failed call instead.
            return self._error_reply(
                seq,
                FramingError(
                    f"handler reply of {len(reply)} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte frame limit"
                ),
                delivered=True,
            )
        return reply

    def _error_reply(self, seq: int, error: BaseException, delivered: bool) -> bytes:
        envelope = {"kind": "reply", "seq": seq, "status": "error", "delivered": delivered}
        envelope.update(wirecodec.flatten_error(error))
        return wirecodec.encode_body(envelope)

    # -- introspection / teardown ----------------------------------------------------

    @property
    def trace(self) -> List[Message]:
        """Originated messages (only populated when ``trace_enabled`` is set)."""
        return self._recorder.messages()

    def clear_trace(self) -> None:
        self._recorder.clear()

    def set_trace_capacity(self, cap: int) -> None:
        """Re-bound the message recorder (existing entries are kept FIFO)."""
        self._recorder.set_cap(cap)

    def reset_statistics(self) -> None:
        self.statistics = NetworkStatistics()

    def close(self) -> None:
        """Stop serving and close every client connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.server.close()
        self.pool.close()

    def __enter__(self) -> "WireNetwork":
        return self

    def __exit__(self, *_exc_info: Any) -> None:
        self.close()
