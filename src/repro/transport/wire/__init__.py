"""Wire transport: socket-based cross-process delivery.

The simulated network keeps every trusted interceptor in one process.  This
package provides the production-shaped alternative: organisations hosted in
*different OS processes* exchanging the same protocol messages over TCP
sockets, behind the same network surface, so every retry/dispatch/async
engine of the transport layer works unchanged.

Layers (bottom up):

* :mod:`repro.transport.wire.framing` -- length-prefixed frames over a
  stream socket.
* :mod:`repro.transport.wire.wirecodec` -- canonical frame bodies (reusing
  the encode-once :class:`repro.codec.Encoded` pipeline) plus revival of
  protocol objects and exceptions on the receiving side.
* :mod:`repro.transport.wire.peers` -- the address book mapping endpoint
  URIs to the ``host:port`` of the process hosting them.
* :mod:`repro.transport.wire.connection` -- per-peer connection pool with
  reconnect-on-failure; socket faults surface as retryable delivery errors.
* :mod:`repro.transport.wire.server` -- accept/serve loop dispatching
  inbound frames to registered endpoint handlers.
* :mod:`repro.transport.wire.network` -- :class:`WireNetwork`, the node
  object implementing the :class:`~repro.transport.network.SimulatedNetwork`
  surface over the pieces above.
* :mod:`repro.transport.wire.transport` -- :class:`WireTransport`, the
  per-process deployment bundle (hosted parties + credential exchange),
  threaded through ``TrustDomain.create(transport=...)``.
"""

from repro.transport.wire.connection import ConnectionPool
from repro.transport.wire.framing import (
    ConnectionClosed,
    FramingError,
    MAX_FRAME_BYTES,
    read_frame,
    write_frame,
)
from repro.transport.wire.network import SYSTEM_ADDRESS, WireNetwork
from repro.transport.wire.peers import PeerAddressBook
from repro.transport.wire.server import WireServer
from repro.transport.wire.transport import WireTransport
from repro.transport.wire.wirecodec import (
    WireCodecError,
    decode_body,
    encode_body,
    register_wire_type,
    revive_error,
    wire_type,
)

__all__ = [
    "ConnectionClosed",
    "ConnectionPool",
    "FramingError",
    "MAX_FRAME_BYTES",
    "PeerAddressBook",
    "SYSTEM_ADDRESS",
    "WireCodecError",
    "WireNetwork",
    "WireServer",
    "WireTransport",
    "decode_body",
    "encode_body",
    "read_frame",
    "register_wire_type",
    "revive_error",
    "wire_type",
    "write_frame",
]
