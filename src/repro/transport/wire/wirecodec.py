"""Canonical encoding and object revival for wire frames.

Encoding reuses the encode-once pipeline of :mod:`repro.codec` unchanged: a
frame envelope is an ordinary dictionary, and any pre-canonicalised content
inside it (a :class:`repro.codec.Encoded` payload, a protocol message or
evidence token with a cached ``canonical_encoded``) is spliced into the
output verbatim, so putting a message on the wire costs only the envelope --
exactly what the in-process network pays for traffic accounting.

Decoding is where the wire differs from the simulator: the simulator hands
the receiving handler the *same Python objects* the sender built, while a
socket hands it bytes.  :func:`decode_body` parses the canonical JSON and
*revives* tagged values:

* ``{"__bytes__": hex}`` -> ``bytes`` and ``{"__set__": [...]}`` -> ``set``
  (same as :func:`repro.codec.from_jsonable`);
* ``{"__object__": name, "data": {...}}`` -> an instance, when ``name`` is
  found in the wire type registry (a ``from_dict`` per class).  Protocol
  messages and evidence tokens are registered by default, which is what the
  B2B coordinator's exported methods expect to receive.  Unregistered object
  tags decay to their plain ``data`` dictionary -- the behaviour handlers
  already get from :func:`repro.codec.from_jsonable` -- so application
  payloads keep flowing as plain data.

Exceptions cross the wire by name: the serving side flattens a raised error
into ``(type name, message)`` and :func:`revive_error` reconstructs the
matching :mod:`repro.errors` class on the caller, so the retry layer's
distinction between retryable (:class:`DeliveryError`) and permanent
(:class:`UnknownEndpointError`) failures survives the socket hop.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, Mapping

from repro import codec
from repro import errors as _errors
from repro.errors import RemoteInvocationError, TransportError

__all__ = [
    "WireCodecError",
    "decode_body",
    "encode_body",
    "flatten_error",
    "register_wire_type",
    "revive_error",
    "wire_type",
]


class WireCodecError(TransportError):
    """A frame body could not be encoded or decoded."""


# -- wire type registry -------------------------------------------------------

_registry_lock = threading.Lock()
_registry: Dict[str, Callable[[Mapping[str, Any]], Any]] = {}
_defaults_installed = False


def register_wire_type(
    name: str, from_dict: Callable[[Mapping[str, Any]], Any]
) -> None:
    """Register a reviver for ``{"__object__": name}`` tags on the wire.

    ``from_dict`` receives the already-revived ``data`` mapping.  Used by
    applications whose protocol payloads carry their own value classes;
    the library's protocol types are pre-registered.
    """
    with _registry_lock:
        _registry[name] = from_dict


def wire_type(cls: Any = None, *, name: str = None):
    """Class decorator registering a payload class for wire revival.

    The codec tags any ``to_dict``-bearing object as
    ``{"__object__": <class name>, "data": to_dict()}``; decorating the
    class registers its ``from_dict`` under that tag, so instances survive
    the socket hop without a manual :func:`register_wire_type` call at every
    deployment site::

        @wire_type
        @dataclass(frozen=True)
        class PurchaseOrder:
            def to_dict(self): ...
            @classmethod
            def from_dict(cls, data): ...

    ``name`` overrides the registry tag (default: the class name, which is
    what the codec emits).  Usable bare or with arguments.
    """

    def apply(klass: type) -> type:
        from_dict = getattr(klass, "from_dict", None)
        if not callable(from_dict):
            raise TypeError(
                f"@wire_type class {klass.__name__!r} must define a callable "
                "from_dict(data) classmethod to be revivable"
            )
        if not callable(getattr(klass, "to_dict", None)):
            raise TypeError(
                f"@wire_type class {klass.__name__!r} must define to_dict() "
                "so the codec can put instances on the wire"
            )
        register_wire_type(name or klass.__name__, from_dict)
        return klass

    return apply if cls is None else apply(cls)


def _install_defaults() -> None:
    """Register the library's protocol types (lazily, to avoid import cycles)."""
    global _defaults_installed
    if _defaults_installed:
        return
    from repro.core.evidence import EvidenceToken
    from repro.core.messages import B2BProtocolMessage
    from repro.crypto.certificates import Certificate
    from repro.crypto.keys import PublicKey
    from repro.crypto.signature import Signature
    from repro.crypto.timestamp import TimestampToken

    with _registry_lock:
        # Reviver input is already walked bottom-up by decode_body;
        # from_dict implementations that would re-walk it get told so.
        _registry.setdefault(
            B2BProtocolMessage.__name__,
            lambda data: B2BProtocolMessage.from_dict(data, revived=True),
        )
        _registry.setdefault(
            EvidenceToken.__name__,
            lambda data: EvidenceToken.from_dict(data, revived=True),
        )
        for cls in (Certificate, PublicKey, Signature, TimestampToken):
            _registry.setdefault(cls.__name__, cls.from_dict)
        _defaults_installed = True


def _reviver_for(name: str) -> Callable[[Mapping[str, Any]], Any] | None:
    _install_defaults()
    with _registry_lock:
        return _registry.get(name)


# -- body encode / decode -----------------------------------------------------


def encode_body(envelope: Mapping[str, Any]) -> bytes:
    """Canonical bytes of a frame envelope (splices cached encodings)."""
    try:
        return codec.encode(dict(envelope))
    except codec.CodecError as error:
        raise WireCodecError(
            "frame content is not canonically encodable -- the wire transport "
            f"carries codec-encodable payloads only: {error}"
        ) from error


def _revive_object(name: str, data: Any) -> Any:
    """Object-tag hook for :func:`codec.from_jsonable` (one tag traversal)."""
    reviver = _reviver_for(name)
    if reviver is None:
        return data  # decay to plain data, codec's own default behaviour
    try:
        return reviver(data)
    except Exception as error:  # noqa: BLE001 - surface as codec error
        raise WireCodecError(
            f"reviving a wire {name!r} failed: {error}"
        ) from error


def decode_body(data: bytes) -> Any:
    """Parse canonical frame bytes, reviving registered protocol objects."""
    try:
        parsed = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireCodecError(f"malformed frame body: {error}") from error
    return codec.from_jsonable(parsed, object_reviver=_revive_object)


# -- exception marshalling ----------------------------------------------------

#: Exception classes a peer may legitimately raise across the wire: the
#: library hierarchy plus a handful of builtins handlers commonly raise.
_BUILTIN_ERRORS = {
    cls.__name__: cls
    for cls in (KeyError, ValueError, TypeError, RuntimeError, AssertionError)
}

#: Cap on a flattened error message.  An exception embedding a huge state
#: dump must never produce an error reply that itself violates the frame
#: bound -- that would kill the connection and turn a delivered-but-failed
#: call into a retryable-looking loss (re-invoking the handler per retry).
_MAX_ERROR_MESSAGE_CHARS = 16 * 1024


def flatten_error(error: BaseException) -> Dict[str, str]:
    """Flatten an exception into the wire's ``(type, message)`` form."""
    message = str(error)
    if len(message) > _MAX_ERROR_MESSAGE_CHARS:
        message = message[:_MAX_ERROR_MESSAGE_CHARS] + "... [truncated]"
    return {"error_type": type(error).__name__, "error_message": message}


def revive_error(error_type: str, error_message: str) -> Exception:
    """Reconstruct a remote exception from its wire form.

    Known :mod:`repro.errors` classes (and a few builtins) are revived as
    themselves so ``except DeliveryError`` / ``except UnknownEndpointError``
    keep their retry semantics; anything else becomes a
    :class:`RemoteInvocationError` carrying the original type name.
    """
    cls = getattr(_errors, error_type, None)
    if isinstance(cls, type) and issubclass(cls, _errors.ReproError):
        return cls(error_message)
    cls = _BUILTIN_ERRORS.get(error_type)
    if cls is not None:
        return cls(error_message)
    return RemoteInvocationError(f"{error_type}: {error_message}")
