"""Peer address book: endpoint names to ``host:port``.

The simulated network resolves a destination address (a URI such as
``urn:org:supplier``) to an in-process handler.  Across processes the same
URI must first resolve to the TCP endpoint of the *process hosting it*; the
:class:`PeerAddressBook` is that mapping.  Many URIs may map to one
``host:port`` (one process hosts one organisation's interceptors, which is
several endpoints), and entries can be added at runtime as peers introduce
themselves (see :class:`repro.transport.wire.transport.WireTransport`).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import UnknownEndpointError

__all__ = ["PeerAddressBook"]

HostPort = Tuple[str, int]


class PeerAddressBook:
    """Thread-safe mapping of endpoint addresses (URIs) to TCP endpoints."""

    def __init__(self, entries: Optional[Dict[str, HostPort]] = None) -> None:
        self._entries: Dict[str, HostPort] = {}
        self._lock = threading.Lock()
        for address, hostport in (entries or {}).items():
            self.add(address, hostport[0], hostport[1])

    def add(self, address: str, host: str, port: int) -> None:
        """Map ``address`` to ``host:port`` (replacing any previous entry)."""
        if not address:
            raise ValueError("cannot map an empty address")
        if not 0 < port < 65536:
            raise ValueError(f"port {port} out of range for {address!r}")
        with self._lock:
            self._entries[address] = (host, port)

    def remove(self, address: str) -> None:
        with self._lock:
            self._entries.pop(address, None)

    def resolve(self, address: str) -> HostPort:
        """Return the TCP endpoint hosting ``address``.

        Raises :class:`UnknownEndpointError` for unmapped addresses -- the
        same *permanent* failure an unregistered simulated endpoint raises,
        so retry layers give up instead of spinning on a name that no
        process claims.
        """
        with self._lock:
            hostport = self._entries.get(address)
        if hostport is None:
            raise UnknownEndpointError(
                f"no peer process is known to host endpoint {address!r}"
            )
        return hostport

    def knows(self, address: str) -> bool:
        with self._lock:
            return address in self._entries

    def addresses(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)
