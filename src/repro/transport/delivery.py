"""Reliable delivery on top of the lossy simulated network.

The trusted-interceptor assumptions only require *eventual* delivery under a
bounded number of temporary failures.  :class:`ReliableChannel` provides that
guarantee by retrying sends according to a :class:`RetryPolicy`; the retry
count and backoff are accounted against the simulated clock so liveness
benchmarks can report time-to-completion under injected faults.

Two retry execution modes share one policy:

* **Blocking** (no scheduler): the classic loop -- attempt, sleep the
  backoff on the calling thread, reattempt.  This is the reference
  behaviour; its statistics are the baseline every other mode is
  property-tested against.
* **Scheduled** (a :class:`repro.transport.scheduler.RetryScheduler` is
  attached to the channel or its network): each failed attempt registers a
  deferred reattempt with the scheduler and returns a
  :class:`~repro.transport.scheduler.DeliveryFuture` instead of sleeping.
  The state machine per send is attempt -> outcome -> either complete the
  future (success, permanent failure, exhausted budget) or schedule the next
  attempt at ``now + backoff``.  Waiting on the future drives the scheduler,
  so concurrent runs interleave their retry backoffs instead of summing
  them.  The blocking entry points (``send`` / ``send_batch``) transparently
  delegate to the scheduled machinery when a scheduler is present, which
  keeps every caller working unchanged.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.clock import Clock
from repro.errors import DeliveryError, UnknownEndpointError
from repro.transport.network import BatchResult, SimulatedNetwork
from repro.transport.scheduler import DeliveryFuture, RetryScheduler, TimerHandle

#: ``RetryPolicy.jitter`` values.
JITTER_NONE = "none"
JITTER_FULL = "full"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry behaviour for a reliable channel.

    ``jitter="full"`` opts into full-jitter backoff: each retry sleeps a
    deterministic pseudo-random fraction of the exponential delay, spreading
    the retry storms of many channels that tripped at the same instant.  The
    fraction is a pure function of ``(jitter_seed, attempt)`` -- no mutable
    RNG state -- so blocking and scheduled execution of the same policy stay
    byte-identical and a seeded test reproduces its exact timings.  The
    default (``jitter="none"``) preserves the historical fixed schedule.
    """

    max_attempts: int = 10
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0
    jitter: str = JITTER_NONE
    jitter_seed: bytes = b""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.jitter not in (JITTER_NONE, JITTER_FULL):
            raise ValueError(
                f"jitter must be {JITTER_NONE!r} or {JITTER_FULL!r}, "
                f"got {self.jitter!r}"
            )

    def backoff_for_attempt(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = self.backoff_seconds * (self.backoff_multiplier ** attempt)
        delay = min(delay, self.max_backoff_seconds)
        if self.jitter == JITTER_FULL and delay > 0:
            digest = hmac_module.new(
                self.jitter_seed or b"repro-retry-jitter",
                attempt.to_bytes(8, "big"),
                hashlib.sha256,
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            delay *= fraction
        return delay


class ReliableChannel:
    """Retrying sender bound to one source address on a network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        source: str,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        scheduler: Optional[RetryScheduler] = None,
        run_id: Optional[str] = None,
    ) -> None:
        self._network = network
        self._source = source
        self._policy = policy or RetryPolicy()
        self._clock = clock or network.clock
        self._scheduler = (
            scheduler if scheduler is not None else network.retry_scheduler
        )
        #: Protocol run this channel's deliveries belong to; scheduled retry
        #: timers carry the tag so ``RetryScheduler.cancel_run`` can withdraw
        #: them when the run is aborted (their futures then resolve through
        #: the same cancellation path ``close`` uses).
        self._run_id = run_id
        self._counter_lock = threading.Lock()
        self._pending: Dict[TimerHandle, Callable[[], None]] = {}
        self._closed = False
        self.attempts_made = 0
        self.retries_made = 0

    @property
    def source(self) -> str:
        return self._source

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    @property
    def scheduler(self) -> Optional[RetryScheduler]:
        return self._scheduler

    def _count(self, attempts: int, retries: int) -> None:
        """Update the retry accounting; scheduled reattempts fire on any thread."""
        with self._counter_lock:
            self.attempts_made += attempts
            self.retries_made += retries

    # -- circuit breaker ---------------------------------------------------------
    #
    # When the network carries a per-peer CircuitBreaker (see
    # ``SimulatedNetwork.attach_circuit_breaker`` /
    # ``WireNetwork.attach_circuit_breaker``), every attempt consults it
    # first: an open circuit turns the attempt into a local, retryable
    # refusal -- the retry budget still burns (so exhaustion semantics are
    # unchanged) but no socket is touched and no network attempt counter
    # moves.  The breaker is read at attempt time, so attaching one to a
    # network immediately covers its live channels.  Without a breaker the
    # behaviour is byte-identical to earlier releases.

    def _refused_by_breaker(self, destination: str) -> Optional[DeliveryError]:
        breaker = getattr(self._network, "circuit_breaker", None)
        if breaker is None or breaker.allow(destination):
            return None
        record = getattr(self._network, "record_circuit_refusal", None)
        if record is not None:
            record(destination)
        return DeliveryError(
            f"circuit for {destination!r} is open; attempt refused locally"
        )

    def _record_outcome(self, destination: str, error: Optional[Exception]) -> None:
        """Feed a network attempt's outcome to the breaker (if any).

        Only :class:`DeliveryError` counts as a failure -- permanent
        :class:`UnknownEndpointError` and handler-raised exceptions say
        nothing about link health.
        """
        breaker = getattr(self._network, "circuit_breaker", None)
        if breaker is None:
            return
        if error is None:
            breaker.record_success(destination)
        elif isinstance(error, DeliveryError):
            breaker.record_failure(destination)

    # -- blocking entry points --------------------------------------------------

    def send(self, destination: str, operation: str, payload: Any) -> Any:
        """Send with retries; raise :class:`DeliveryError` when the budget is spent.

        Unknown endpoints fail immediately (retrying cannot help), matching
        the distinction between temporary and permanent failures.  With a
        retry scheduler attached the wait is event-driven: this thread
        drives other runs' pending retries while its own backoffs elapse.
        """
        if self._scheduler is not None:
            return self.send_scheduled(destination, operation, payload).result()
        last_error: Optional[Exception] = None
        for attempt in range(self._policy.max_attempts):
            self._count(attempts=1, retries=1 if attempt > 0 else 0)
            if attempt > 0:
                self._clock.sleep(self._policy.backoff_for_attempt(attempt - 1))
            refused = self._refused_by_breaker(destination)
            if refused is not None:
                last_error = refused
                continue
            try:
                reply = self._network.send(
                    self._source, destination, operation, payload
                )
            except UnknownEndpointError:
                raise
            except DeliveryError as error:
                self._record_outcome(destination, error)
                last_error = error
                continue
            self._record_outcome(destination, None)
            return reply
        raise DeliveryError(
            f"delivery from {self._source!r} to {destination!r} failed after "
            f"{self._policy.max_attempts} attempts: {last_error}"
        )

    def send_batch(
        self, entries: List[Tuple[str, str, Any]]
    ) -> List[BatchResult]:
        """Send a fan-out of ``(destination, operation, payload)`` entries.

        Each entry gets the same retry guarantee as :meth:`send`, but all
        still-pending entries of one attempt go through a single
        :meth:`SimulatedNetwork.send_batch` call, and the backoff between
        attempts is paid once for the whole batch rather than once per
        destination.  Per-entry failures are reported in the returned
        :class:`BatchResult` list instead of being raised, so one unreachable
        peer never masks the other deliveries.

        Under a parallel network dispatch strategy the entries of one
        attempt are delivered concurrently; with a retry scheduler the
        backoff between attempts is a timer rather than a sleep, so the
        calling thread's wait overlaps with every other run's retries.
        """
        if self._scheduler is not None:
            futures = self.send_batch_scheduled(entries)
            return [future.outcome() for future in futures]
        results: List[BatchResult] = [BatchResult() for _ in entries]
        pending = list(range(len(entries)))
        for attempt in range(self._policy.max_attempts):
            if attempt > 0:
                self._count(attempts=0, retries=len(pending))
                self._clock.sleep(self._policy.backoff_for_attempt(attempt - 1))
            self._count(attempts=len(pending), retries=0)
            to_send: List[int] = []
            still_pending: List[int] = []
            for index in pending:
                refused = self._refused_by_breaker(entries[index][0])
                if refused is None:
                    to_send.append(index)
                else:
                    results[index] = BatchResult(error=refused)
                    still_pending.append(index)
            batch = (
                self._network.send_batch(
                    self._source, [entries[index] for index in to_send]
                )
                if to_send
                else []
            )
            for index, outcome in zip(to_send, batch):
                if outcome.error is None:
                    self._record_outcome(entries[index][0], None)
                    results[index] = outcome
                elif isinstance(outcome.error, UnknownEndpointError):
                    results[index] = outcome  # permanent: retrying cannot help
                elif isinstance(outcome.error, DeliveryError):
                    self._record_outcome(entries[index][0], outcome.error)
                    results[index] = outcome
                    still_pending.append(index)
                else:
                    results[index] = outcome  # handler-raised failure
            still_pending.sort()
            pending = still_pending
            if not pending:
                break
        for index in pending:
            results[index] = BatchResult(error=self._exhausted(entries[index][0], results[index].error))
        return results

    def _exhausted(self, destination: str, last_error: Optional[Exception]) -> DeliveryError:
        return DeliveryError(
            f"delivery from {self._source!r} to {destination!r} failed after "
            f"{self._policy.max_attempts} attempts: {last_error}"
        )

    def _closed_in_flight(
        self, destination: str, last_error: Optional[Exception]
    ) -> DeliveryError:
        return DeliveryError(
            f"channel at {self._source!r} closed with delivery "
            f"to {destination!r} in flight: {last_error}"
        )

    # -- scheduled state machines -----------------------------------------------

    def _require_scheduler(self) -> RetryScheduler:
        if self._scheduler is None:
            raise DeliveryError(
                f"channel at {self._source!r} has no retry scheduler attached"
            )
        return self._scheduler

    def _schedule_retry(
        self, delay: float, reattempt: Callable[[], None], on_cancel: Callable[[], None]
    ) -> None:
        """Register a deferred reattempt, tracked for cancellation.

        The timer carries the channel's run tag and its cancellation hook, so
        both :meth:`close` and a run-level ``RetryScheduler.cancel_run`` tear
        the reattempt down the same way: the timer leaves the heap and the
        affected futures resolve through ``on_cancel``.
        """
        scheduler = self._require_scheduler()
        cell: Dict[str, TimerHandle] = {}

        def fire() -> None:
            with self._counter_lock:
                self._pending.pop(cell.get("handle"), None)
                closed = self._closed
            if closed:
                on_cancel()
                return
            reattempt()

        def cancelled() -> None:
            with self._counter_lock:
                self._pending.pop(cell.get("handle"), None)
            on_cancel()

        with self._counter_lock:
            if self._closed:
                on_cancel()
                return
            handle = scheduler.schedule(
                delay, fire, run_id=self._run_id, on_cancel=cancelled
            )
            cell["handle"] = handle
            self._pending[handle] = on_cancel

    def send_scheduled(
        self, destination: str, operation: str, payload: Any
    ) -> DeliveryFuture:
        """Start the retrying send as a state machine; returns its future.

        The first attempt runs on the calling thread (so a healthy link is
        exactly as fast as a blocking send); failed attempts schedule their
        reattempt and return, leaving the thread free.  The future resolves
        to the destination handler's reply or fails with the same errors
        :meth:`send` raises.
        """
        scheduler = self._require_scheduler()
        future = DeliveryFuture(scheduler)

        def retry_or_exhaust(attempt_no: int, error: Exception) -> None:
            next_attempt = attempt_no + 1
            if next_attempt >= self._policy.max_attempts:
                future.fail(self._exhausted(destination, error))
                return
            self._schedule_retry(
                self._policy.backoff_for_attempt(attempt_no),
                lambda: attempt(next_attempt),
                on_cancel=lambda: future.fail(
                    self._closed_in_flight(destination, error)
                ),
            )

        def attempt(attempt_no: int) -> None:
            self._count(attempts=1, retries=1 if attempt_no > 0 else 0)
            refused = self._refused_by_breaker(destination)
            if refused is not None:
                retry_or_exhaust(attempt_no, refused)
                return
            try:
                reply = self._network.send(
                    self._source, destination, operation, payload
                )
            except UnknownEndpointError as error:
                future.fail(error)  # permanent: no reattempt is scheduled
                return
            except DeliveryError as error:
                self._record_outcome(destination, error)
                retry_or_exhaust(attempt_no, error)
                return
            except Exception as error:  # handler-raised: propagate, no retry
                future.fail(error)
                return
            self._record_outcome(destination, None)
            future.complete(reply)

        attempt(0)
        return future

    def send_batch_scheduled(
        self, entries: List[Tuple[str, str, Any]]
    ) -> List[DeliveryFuture]:
        """Start a retrying fan-out; returns one future per entry.

        Retry grouping matches :meth:`send_batch` exactly -- all
        still-pending entries of one attempt go through a single network
        batch and share one backoff timer -- so attempt accounting, network
        statistics and fault-model draws are identical to the blocking path.
        Entry futures resolve individually (to the entry's
        :class:`BatchResult`) as soon as their outcome is decided; only the
        still-failing remainder stays in the state machine.
        """
        scheduler = self._require_scheduler()
        futures = [DeliveryFuture(scheduler) for _ in entries]

        def attempt(attempt_no: int, pending: List[int], last: Dict[int, Exception]) -> None:
            self._count(
                attempts=len(pending),
                retries=len(pending) if attempt_no > 0 else 0,
            )
            to_send: List[int] = []
            still_pending: List[int] = []
            for index in pending:
                refused = self._refused_by_breaker(entries[index][0])
                if refused is None:
                    to_send.append(index)
                else:
                    last[index] = refused
                    still_pending.append(index)
            try:
                batch = (
                    self._network.send_batch(
                        self._source, [entries[index] for index in to_send]
                    )
                    if to_send
                    else []
                )
            except Exception as error:  # noqa: BLE001 - must resolve the wave
                # The first attempt runs on the calling thread: propagate,
                # exactly like the blocking loop would (programming errors
                # stay loud).  Deferred reattempts fire on arbitrary driving
                # threads, where an escaping exception would leave every
                # pending future unresolved (and its waiters spinning) -- so
                # there infrastructure failures resolve the wave instead.
                if attempt_no == 0:
                    raise
                for index in pending:
                    futures[index].complete(BatchResult(error=error))
                return
            for index, outcome in zip(to_send, batch):
                if outcome.error is None or isinstance(
                    outcome.error, UnknownEndpointError
                ):
                    if outcome.error is None:
                        self._record_outcome(entries[index][0], None)
                    futures[index].complete(outcome)
                elif isinstance(outcome.error, DeliveryError):
                    self._record_outcome(entries[index][0], outcome.error)
                    last[index] = outcome.error
                    still_pending.append(index)
                else:
                    futures[index].complete(outcome)  # handler-raised failure
            still_pending.sort()
            if not still_pending:
                return
            next_attempt = attempt_no + 1
            if next_attempt >= self._policy.max_attempts:
                for index in still_pending:
                    futures[index].complete(
                        BatchResult(
                            error=self._exhausted(entries[index][0], last.get(index))
                        )
                    )
                return

            def cancel_pending() -> None:
                for index in still_pending:
                    futures[index].complete(
                        BatchResult(
                            error=self._closed_in_flight(
                                entries[index][0], last.get(index)
                            )
                        )
                    )

            self._schedule_retry(
                self._policy.backoff_for_attempt(attempt_no),
                lambda: attempt(next_attempt, still_pending, last),
                on_cancel=cancel_pending,
            )

        if entries:
            attempt(0, list(range(len(entries))), {})
        return futures

    # -- teardown ---------------------------------------------------------------

    def pending_retries(self) -> int:
        """Number of reattempts currently parked on the scheduler."""
        with self._counter_lock:
            return len(self._pending)

    def close(self) -> None:
        """Cancel in-flight retries; their futures fail as 'channel closed'.

        Idempotent.  Every cancelled timer is removed from the scheduler (no
        leaked timers) and every affected future completes, so no waiter is
        left hanging.  Attempts already executing on another thread complete
        their current network call but schedule no further reattempt.
        """
        with self._counter_lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending)
            self._pending.clear()
        for handle in pending:
            # The timer's on_cancel hook (registered at schedule time) fails
            # the affected futures; a handle that already fired resolved (or
            # will resolve) its future through the fire path instead.
            handle.cancel()
