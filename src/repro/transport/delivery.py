"""Reliable delivery on top of the lossy simulated network.

The trusted-interceptor assumptions only require *eventual* delivery under a
bounded number of temporary failures.  :class:`ReliableChannel` provides that
guarantee by retrying sends according to a :class:`RetryPolicy`; the retry
count and backoff are accounted against the simulated clock so liveness
benchmarks can report time-to-completion under injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.clock import Clock
from repro.errors import DeliveryError, UnknownEndpointError
from repro.transport.network import BatchResult, SimulatedNetwork


@dataclass(frozen=True)
class RetryPolicy:
    """Retry behaviour for a reliable channel."""

    max_attempts: int = 10
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")

    def backoff_for_attempt(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = self.backoff_seconds * (self.backoff_multiplier ** attempt)
        return min(delay, self.max_backoff_seconds)


class ReliableChannel:
    """Retrying sender bound to one source address on a network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        source: str,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self._network = network
        self._source = source
        self._policy = policy or RetryPolicy()
        self._clock = clock or network.clock
        self.attempts_made = 0
        self.retries_made = 0

    @property
    def source(self) -> str:
        return self._source

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    def send(self, destination: str, operation: str, payload: Any) -> Any:
        """Send with retries; raise :class:`DeliveryError` when the budget is spent.

        Unknown endpoints fail immediately (retrying cannot help), matching
        the distinction between temporary and permanent failures.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self._policy.max_attempts):
            self.attempts_made += 1
            if attempt > 0:
                self.retries_made += 1
                self._clock.sleep(self._policy.backoff_for_attempt(attempt - 1))
            try:
                return self._network.send(self._source, destination, operation, payload)
            except UnknownEndpointError:
                raise
            except DeliveryError as error:
                last_error = error
        raise DeliveryError(
            f"delivery from {self._source!r} to {destination!r} failed after "
            f"{self._policy.max_attempts} attempts: {last_error}"
        )

    def send_batch(
        self, entries: List[Tuple[str, str, Any]]
    ) -> List[BatchResult]:
        """Send a fan-out of ``(destination, operation, payload)`` entries.

        Each entry gets the same retry guarantee as :meth:`send`, but all
        still-pending entries of one attempt go through a single
        :meth:`SimulatedNetwork.send_batch` call, and the backoff between
        attempts is paid once for the whole batch rather than once per
        destination.  Per-entry failures are reported in the returned
        :class:`BatchResult` list instead of being raised, so one unreachable
        peer never masks the other deliveries.

        Under a parallel network dispatch strategy the entries of one
        attempt are delivered concurrently; the channel's retry loop (and
        its ``attempts_made`` / ``retries_made`` counters) still runs on the
        calling thread, so the retry accounting needs no locking.
        """
        results: List[BatchResult] = [BatchResult() for _ in entries]
        pending = list(range(len(entries)))
        for attempt in range(self._policy.max_attempts):
            if attempt > 0:
                self.retries_made += len(pending)
                self._clock.sleep(self._policy.backoff_for_attempt(attempt - 1))
            self.attempts_made += len(pending)
            batch = self._network.send_batch(
                self._source, [entries[index] for index in pending]
            )
            still_pending: List[int] = []
            for index, outcome in zip(pending, batch):
                if outcome.error is None:
                    results[index] = outcome
                elif isinstance(outcome.error, UnknownEndpointError):
                    results[index] = outcome  # permanent: retrying cannot help
                elif isinstance(outcome.error, DeliveryError):
                    results[index] = outcome
                    still_pending.append(index)
                else:
                    results[index] = outcome  # handler-raised failure
            pending = still_pending
            if not pending:
                break
        for index in pending:
            results[index] = BatchResult(
                error=DeliveryError(
                    f"delivery from {self._source!r} to "
                    f"{entries[index][0]!r} failed after "
                    f"{self._policy.max_attempts} attempts: {results[index].error}"
                )
            )
        return results
