"""Event-driven retry scheduling for the transport layer.

:class:`repro.transport.delivery.ReliableChannel` originally slept through
every retry backoff on the calling thread, so one flaky link parked a whole
protocol run (and, under a simulated clock, *summed* the backoffs of
concurrent runs into the virtual timeline).  This module replaces the sleeps
with deadline timers:

* :class:`RetryScheduler` owns a heap of pending timers keyed on the
  channel's clock.  A failed send registers a deferred reattempt (a timer)
  and returns immediately; the worker that observed the failure is free to
  do other work during the backoff.
* :class:`DeliveryFuture` is the completion handle of one scheduled delivery.
  Waiting on a future *drives* the scheduler: the waiting thread fires due
  timers (its own or any other run's) and advances a virtual clock to the
  next deadline, so concurrent runs overlap their retry waits instead of
  queueing behind each other.
* :class:`TimerHandle` supports cancellation, which
  :meth:`ReliableChannel.close` uses to withdraw in-flight retries without
  leaking timers.  Timers carry an optional *run tag* so every timer
  belonging to one protocol run -- delivery retries and protocol deadlines
  alike -- can be withdrawn together with :meth:`RetryScheduler.cancel_run`
  when the run is aborted or times out.

Beyond retries, the same deadline heap schedules *protocol* timeouts: a
fair-exchange abort deadline or a membership-change expiry is just a timer
whose callback aborts the pending run and releases its resources, instead of
a thread parked in a wait.

Clock integration: on a *virtual* clock (``clock.virtual``) a driving thread
reaches the next deadline with the idempotent ``clock.advance_to`` -- racing
drivers advance time once, not once each, which is exactly the overlap the
event-driven design buys.  On a wall clock the driver waits on the scheduler
condition (so a newly scheduled earlier timer or a cancellation wakes it) and
fires whatever has become due; due callbacks are fanned out on the shared
executor (:func:`repro.parallel.submit`) so one driver can re-send over many
slow links concurrently.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, Iterable, List, Optional

from repro import parallel
from repro.clock import Clock
from repro.observability import tracing as _tracing
from repro.observability.runtime import STATE as _OBS

__all__ = [
    "AdvanceHold",
    "DeliveryFuture",
    "Quiescence",
    "RetryScheduler",
    "TimerHandle",
    "wait_all",
]

#: How long (wall seconds) a driver waits for other threads to make progress
#: when it has nothing due and no deadline of its own to advance to.
_IDLE_WAIT_SECONDS = 0.01

#: Upper bound on one wall-clock wait towards a deadline, so cancellations
#: and newly scheduled earlier timers are picked up promptly.
_MAX_WALL_WAIT_SECONDS = 0.05

_PENDING = "pending"
_FIRED = "fired"
_CANCELLED = "cancelled"


class TimerHandle:
    """One scheduled callback; cancellable until it fires.

    ``run_id`` tags the timer with the protocol run it belongs to (see
    :meth:`RetryScheduler.cancel_run`); ``on_cancel`` is invoked exactly once
    if the timer is withdrawn before firing, so the owner of the deferred
    work can resolve its completion future instead of leaving waiters
    hanging.
    """

    __slots__ = (
        "deadline",
        "run_id",
        "_scheduler",
        "_callback",
        "_on_cancel",
        "_state",
        "_trace_ctx",
    )

    def __init__(
        self,
        scheduler: "RetryScheduler",
        deadline: float,
        callback: Callable[[], None],
        run_id: Optional[str] = None,
        on_cancel: Optional[Callable[[], None]] = None,
        trace_ctx: Optional[Any] = None,
    ) -> None:
        self.deadline = deadline
        self.run_id = run_id
        self._scheduler = scheduler
        self._callback = callback
        self._on_cancel = on_cancel
        self._state = _PENDING
        # Ambient span context captured at scheduling time; restored around
        # the callback at fire time so retry waves, redelivery pushes and
        # deadline expiries stay attributed to the run that scheduled them.
        self._trace_ctx = trace_ctx

    def _run_callback(self) -> None:
        ctx = self._trace_ctx
        if ctx is None:
            self._callback()
        else:
            _tracing.call_in_ctx(ctx, self._callback)

    def cancel(self) -> bool:
        """Withdraw the timer; returns False when it already fired."""
        return self._scheduler._cancel(self)

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def fired(self) -> bool:
        return self._state == _FIRED


class AdvanceHold:
    """Handle of one :meth:`RetryScheduler.hold_advance`; release exactly once."""

    __slots__ = ("_scheduler",)

    def __init__(self, scheduler: "RetryScheduler") -> None:
        self._scheduler = scheduler

    def release(self) -> None:
        scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler._release_hold()


class Quiescence:
    """One sample of the scheduler's quiescence criterion.

    The engine is *quiescent up to time T* when nothing can still change
    the state of any run at or before T: no timer with a deadline at or
    before T is pending, no thread holds back virtual-time advancement (a
    hold means a continuation is mid-flight and may schedule earlier
    timers), and no engine work is queued or executing on the shared
    executor.  External drivers -- a wire serve loop, a benchmark
    orchestrator, a test -- use this to *check* "the simulation reached T"
    instead of sleeping and hoping.
    """

    __slots__ = ("pending_timers", "due_timers", "advance_holds", "executor_queue_depth")

    def __init__(
        self,
        pending_timers: int,
        due_timers: int,
        advance_holds: int,
        executor_queue_depth: int,
    ) -> None:
        self.pending_timers = pending_timers
        #: Pending timers that fall within the asked-about horizon (all of
        #: them when no horizon was given).
        self.due_timers = due_timers
        self.advance_holds = advance_holds
        self.executor_queue_depth = executor_queue_depth

    @property
    def idle(self) -> bool:
        """True when nothing within the horizon can still fire or run."""
        return (
            self.due_timers == 0
            and self.advance_holds == 0
            and self.executor_queue_depth == 0
        )

    def __repr__(self) -> str:
        return (
            f"Quiescence(pending_timers={self.pending_timers}, "
            f"due_timers={self.due_timers}, advance_holds={self.advance_holds}, "
            f"executor_queue_depth={self.executor_queue_depth})"
        )


class DeliveryFuture:
    """Completion handle for one scheduled delivery.

    Exactly one of ``complete``/``fail`` is ever called, by the retry state
    machine that owns the future.  ``result()`` drives the owning scheduler
    while waiting, so a thread blocked on its own delivery keeps the whole
    timer wheel moving (see module docstring).
    """

    def __init__(self, scheduler: Optional["RetryScheduler"] = None) -> None:
        self._scheduler = scheduler
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._callback_lock = threading.Lock()
        self._callbacks: List[Callable[["DeliveryFuture"], None]] = []

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, if the delivery failed (None while pending)."""
        return self._error

    def add_done_callback(self, callback: Callable[["DeliveryFuture"], None]) -> None:
        """Invoke ``callback(self)`` once the future resolves.

        An already-resolved future fires the callback immediately on the
        calling thread; otherwise it fires on whichever thread resolves the
        future.  Callbacks are the continuation hook of the async protocol
        engine -- they must not block (offload real work with
        :func:`repro.parallel.submit`) and must trap their own exceptions.
        """
        with self._callback_lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _resolve(self, result: Any, error: Optional[BaseException]) -> None:
        with self._callback_lock:
            if self._event.is_set():
                return
            self._result = result
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        if self._scheduler is not None:
            self._scheduler._notify()
        for callback in callbacks:
            callback(self)

    def complete(self, result: Any) -> None:
        self._resolve(result, None)

    def fail(self, error: BaseException) -> None:
        self._resolve(None, error)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Wait for completion; raise the delivery error if it failed.

        With a scheduler attached the calling thread participates in driving
        timers; without one it simply blocks.  ``timeout`` is wall-clock
        seconds and exists as a safety net for tests; the budget is shared
        between driving and the final wait, not paid twice.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._scheduler is not None:
            self._scheduler.drive_until(self.done, timeout=timeout)
        remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
        if not self._event.wait(remaining):
            raise TimeoutError("delivery future was not completed in time")
        if self._error is not None:
            raise self._error
        return self._result

    def outcome(self, timeout: Optional[float] = None) -> Any:
        """Like :meth:`result` but returns the stored error instead of raising.

        Only delivery failures (ordinary exceptions) are returned as values;
        ``TimeoutError`` from the safety net and interrupts
        (``KeyboardInterrupt`` etc.) still propagate.
        """
        try:
            return self.result(timeout)
        except TimeoutError:
            raise
        except Exception as error:  # noqa: BLE001 - mirror of BatchResult
            return error


def wait_all(futures: Iterable[DeliveryFuture], timeout: Optional[float] = None) -> None:
    """Drive the scheduler(s) until every future is done (errors not raised).

    ``timeout`` bounds the whole wait, shared across the set, not per future.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    for future in futures:
        if future.done():
            continue
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        future.outcome(remaining)


class RetryScheduler:
    """A deadline heap of pending retries, driven by the threads that wait.

    There is no dedicated timer thread: any thread waiting on a
    :class:`DeliveryFuture` (or calling :meth:`drive_until`) pops due timers,
    fires them, and -- on a virtual clock -- advances time to the earliest
    pending deadline.  This keeps virtual-clock runs deterministic (time
    moves only when every live thread has nothing due) and means pool
    workers that must wait for a nested delivery do useful timer work
    instead of sleeping through a backoff.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._heap: List[tuple] = []  # (deadline, seq, TimerHandle)
        self._seq = itertools.count()
        self._pending = 0
        # Advance holds: while > 0 (excluding holds taken by the asking
        # thread itself), drivers must not advance a virtual clock -- some
        # thread is doing real work (a firing callback, a protocol
        # continuation) that may schedule an earlier timer or complete the
        # awaited future; jumping to the next heap deadline would fire
        # protocol *deadlines* over runs that are actively progressing.
        self._holds = 0
        self._local_holds = threading.local()
        self.timers_scheduled = 0
        self.timers_fired = 0
        self.timers_cancelled = 0

    @property
    def clock(self) -> Clock:
        return self._clock

    # -- scheduling -------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        run_id: Optional[str] = None,
        on_cancel: Optional[Callable[[], None]] = None,
    ) -> TimerHandle:
        """Register ``callback`` to fire ``delay`` seconds from now.

        ``run_id`` tags the timer for bulk withdrawal via :meth:`cancel_run`;
        ``on_cancel`` runs (outside the scheduler lock, exactly once) if the
        timer is cancelled before it fires.
        """
        if delay < 0:
            raise ValueError("cannot schedule a timer in the past")
        trace_ctx = _tracing.current_ctx() if _OBS.tracing is not None else None
        with self._condition:
            handle = TimerHandle(
                self, self._clock.now() + delay, callback, run_id, on_cancel,
                trace_ctx=trace_ctx,
            )
            heapq.heappush(self._heap, (handle.deadline, next(self._seq), handle))
            self._pending += 1
            self.timers_scheduled += 1
            self._condition.notify_all()
            return handle

    def _cancel(self, handle: TimerHandle) -> bool:
        with self._condition:
            if handle._state != _PENDING:
                return False
            handle._state = _CANCELLED
            self._pending -= 1
            self.timers_cancelled += 1
            # Compact eagerly: a lazily discarded entry would keep the
            # callback closure (payloads, futures, the channel) referenced
            # until some later drive happened to pop past it.
            self._heap = [
                entry for entry in self._heap if entry[2]._state == _PENDING
            ]
            heapq.heapify(self._heap)
            self._condition.notify_all()  # wake drivers waiting on its deadline
        # Outside the lock: the hook typically completes a future, which
        # notifies this scheduler again (the lock is not reentrant).
        if handle._on_cancel is not None:
            handle._on_cancel()
        return True

    def cancel_run(self, run_id: str) -> int:
        """Withdraw every pending timer tagged with ``run_id``.

        The bulk-cancel path of a protocol-run abort: delivery retries and
        deadline timers belonging to the run are removed from the heap and
        their ``on_cancel`` hooks resolve the affected futures, so an aborted
        or timed-out run leaks no timers and leaves no waiter hanging.
        Returns the number of timers cancelled.  All matching timers are
        cancelled under one lock acquisition with a single heap compaction
        (per-handle ``cancel()`` would rebuild the heap once per timer);
        hooks run outside the lock, like every cancellation path.
        """
        with self._condition:
            cancelled: List[TimerHandle] = []
            for entry in self._heap:
                handle = entry[2]
                if handle.run_id == run_id and handle._state == _PENDING:
                    handle._state = _CANCELLED
                    cancelled.append(handle)
            if cancelled:
                self._pending -= len(cancelled)
                self.timers_cancelled += len(cancelled)
                self._heap = [
                    entry for entry in self._heap if entry[2]._state == _PENDING
                ]
                heapq.heapify(self._heap)
                self._condition.notify_all()
        for handle in cancelled:
            if handle._on_cancel is not None:
                handle._on_cancel()
        return len(cancelled)

    def pending_timers(self) -> int:
        """Number of live (scheduled, not yet fired or cancelled) timers."""
        with self._lock:
            return self._pending

    def pending_timers_for_run(self, run_id: str) -> int:
        """Number of live timers tagged with ``run_id`` (leak assertions)."""
        with self._lock:
            return sum(
                1
                for entry in self._heap
                if entry[2].run_id == run_id and entry[2]._state == _PENDING
            )

    def _notify(self) -> None:
        with self._condition:
            self._condition.notify_all()

    # -- advance holds ------------------------------------------------------------

    def hold_advance(self) -> "AdvanceHold":
        """Forbid virtual-time advancement until the hold is released.

        Taken by the async protocol engine around in-flight continuations:
        between "a fan-out completed" and "the next phase registered its own
        timers", a run is working, not waiting, and a driver that advanced
        the virtual clock to the next heap deadline could expire the run's
        own deadline out from under it.  The hold may be released from a
        different thread (continuations hop to the executor).
        """
        with self._condition:
            self._holds += 1
        return AdvanceHold(self)

    def _release_hold(self) -> None:
        with self._condition:
            self._holds -= 1
            self._condition.notify_all()

    def _blocked_on_work_locked(self) -> bool:
        """True when some *other* thread holds back virtual-time advancement.

        Holds taken by the asking thread itself are excluded so that work
        nested inside a firing callback (a handler that waits on a delivery
        of its own) can still drive time forward instead of livelocking on
        its own hold.
        """
        return self._holds - getattr(self._local_holds, "count", 0) > 0

    # -- quiescence ---------------------------------------------------------------

    def quiescence(self, until: Optional[float] = None) -> "Quiescence":
        """Sample the quiescence criterion (see :class:`Quiescence`).

        ``until`` bounds the horizon: timers strictly beyond it do not
        count against idleness, so ``quiescence(T).idle`` answers "has the
        simulation fully settled up to time T?".  Holds taken by the
        calling thread itself are excluded, mirroring the advance rule.
        """
        # Sample the executor BEFORE the timer/hold state: an in-flight
        # callback that schedules a timer and exits between the two samples
        # must be seen by at least one of them.  Depth-first ordering
        # guarantees that -- either the callback still counts as queued
        # work, or it finished and its timer is already on the heap.
        depth = parallel.executor_queue_depth()
        with self._lock:
            pending = self._pending
            if until is None:
                due = pending
            else:
                due = sum(
                    1
                    for entry in self._heap
                    if entry[2]._state == _PENDING and entry[2].deadline <= until
                )
            holds = self._holds - getattr(self._local_holds, "count", 0)
        return Quiescence(
            pending_timers=pending,
            due_timers=due,
            advance_holds=holds,
            executor_queue_depth=depth,
        )

    def is_quiescent(self, until: Optional[float] = None) -> bool:
        """True when nothing can still fire or run within the horizon."""
        return self.quiescence(until).idle

    def wait_quiescent(
        self, until: Optional[float] = None, timeout: Optional[float] = None
    ) -> bool:
        """Drive the engine until it is quiescent (within the horizon).

        Unlike :meth:`drive_until` this never advances a virtual clock
        *past* ``until``: timers inside the horizon are reached and fired,
        timers beyond it are left pending.  Returns the final
        :meth:`is_quiescent` value (False only on wall-clock ``timeout``).
        """
        deadline_wall = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.fire_due():
                continue
            if self.is_quiescent(until):
                return True
            if deadline_wall is not None and time.monotonic() >= deadline_wall:
                return self.is_quiescent(until)
            with self._condition:
                due_deadline = self._next_deadline_locked()
                in_horizon = due_deadline is not None and (
                    until is None or due_deadline <= until
                )
                if in_horizon and self._clock.virtual:
                    if not self._blocked_on_work_locked():
                        self._clock.advance_to(due_deadline)
                        continue
                    # In-flight work holds back virtual time; wait for it.
                    self._condition.wait(_IDLE_WAIT_SECONDS)
                elif in_horizon:
                    # Wall clock: sleep towards the deadline (bounded, so
                    # cancellations and earlier timers wake us), same as
                    # drive_until -- not a fixed-interval poll.
                    self._condition.wait(
                        min(
                            max(due_deadline - self._clock.now(), 0.0),
                            _MAX_WALL_WAIT_SECONDS,
                        )
                    )
                else:
                    # Waiting on executor work draining or another thread's
                    # hold being released.
                    self._condition.wait(_IDLE_WAIT_SECONDS)

    # -- driving ----------------------------------------------------------------

    def _pop_due_locked(self) -> List[TimerHandle]:
        """Claim every timer whose deadline has been reached."""
        now = self._clock.now()
        due: List[TimerHandle] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, handle = heapq.heappop(self._heap)
            if handle._state != _PENDING:
                continue  # cancelled; lazily discarded here
            handle._state = _FIRED
            self._pending -= 1
            self.timers_fired += 1
            due.append(handle)
        return due

    def _next_deadline_locked(self) -> Optional[float]:
        while self._heap and self._heap[0][2]._state != _PENDING:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def _fire(self, due: List[TimerHandle]) -> None:
        """Run claimed timers outside the lock.

        Virtual clock: inline and in deadline order, for determinism.  Wall
        clock: the earliest callback runs inline on the driving thread --
        claimed timers can only run here, so inline execution guarantees
        progress even when the shared executor is saturated by workers that
        are themselves blocked waiting on these timers -- and the rest fan
        out through the executor so concurrent resends overlap their link
        latency.  Completion is signalled through the futures the callbacks
        complete, so the driver need not join the submitted ones.
        """
        if self._clock.virtual or len(due) == 1:
            for handle in due:
                handle._run_callback()
            self._notify()
            return
        for handle in due[1:]:
            parallel.submit(handle._run_callback)
        due[0]._run_callback()
        self._notify()

    def fire_due(self) -> int:
        """Fire everything currently due; returns how many timers fired.

        The whole firing pass runs under an advance hold (owned by this
        thread), so a concurrent driver cannot advance a virtual clock while
        callbacks are mid-flight -- the callbacks may complete futures whose
        continuations take over the hold before it is dropped here.
        """
        with self._condition:
            due = self._pop_due_locked()
            if due:
                self._holds += 1
        if not due:
            return 0
        local = self._local_holds
        local.count = getattr(local, "count", 0) + 1
        try:
            self._fire(due)
        finally:
            local.count -= 1
            self._release_hold()
        return len(due)

    def drive_until(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        """Fire timers / advance time until ``predicate()`` holds.

        Returns the final predicate value (False only on wall-clock
        ``timeout``, which is a safety net -- the protocol layers above have
        bounded retry budgets, so a well-formed wait always terminates).
        """
        deadline_wall = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline_wall is not None and time.monotonic() >= deadline_wall:
                return predicate()
            if self.fire_due():
                if predicate():
                    return True
                continue
            if predicate():
                return True
            with self._condition:
                # Re-check under the lock: a timer may have become due (or
                # the predicate may have flipped) between fire_due and here.
                due_deadline = self._next_deadline_locked()
                now = self._clock.now()
                if due_deadline is not None and due_deadline <= now:
                    continue
                if predicate():
                    return True
                if due_deadline is None:
                    # Nothing scheduled: some other thread owns the work that
                    # completes the predicate.  Wait for it to notify.
                    self._condition.wait(_IDLE_WAIT_SECONDS)
                elif self._clock.virtual:
                    if self._blocked_on_work_locked():
                        # In-flight work may schedule something earlier than
                        # the heap's next deadline; wait for it to settle
                        # rather than jumping virtual time over it.
                        self._condition.wait(_IDLE_WAIT_SECONDS)
                    else:
                        self._clock.advance_to(due_deadline)
                else:
                    self._condition.wait(
                        min(due_deadline - now, _MAX_WALL_WAIT_SECONDS)
                    )

    # -- shutdown ---------------------------------------------------------------

    def cancel_all(self) -> int:
        """Cancel every pending timer (used by tests and channel teardown)."""
        with self._condition:
            handles = [entry[2] for entry in self._heap]
        cancelled = sum(1 for handle in handles if handle.cancel())
        return cancelled
