"""Event-driven retry scheduling for the transport layer.

:class:`repro.transport.delivery.ReliableChannel` originally slept through
every retry backoff on the calling thread, so one flaky link parked a whole
protocol run (and, under a simulated clock, *summed* the backoffs of
concurrent runs into the virtual timeline).  This module replaces the sleeps
with deadline timers:

* :class:`RetryScheduler` owns a heap of pending timers keyed on the
  channel's clock.  A failed send registers a deferred reattempt (a timer)
  and returns immediately; the worker that observed the failure is free to
  do other work during the backoff.
* :class:`DeliveryFuture` is the completion handle of one scheduled delivery.
  Waiting on a future *drives* the scheduler: the waiting thread fires due
  timers (its own or any other run's) and advances a virtual clock to the
  next deadline, so concurrent runs overlap their retry waits instead of
  queueing behind each other.
* :class:`TimerHandle` supports cancellation, which
  :meth:`ReliableChannel.close` uses to withdraw in-flight retries without
  leaking timers.

Clock integration: on a *virtual* clock (``clock.virtual``) a driving thread
reaches the next deadline with the idempotent ``clock.advance_to`` -- racing
drivers advance time once, not once each, which is exactly the overlap the
event-driven design buys.  On a wall clock the driver waits on the scheduler
condition (so a newly scheduled earlier timer or a cancellation wakes it) and
fires whatever has become due; due callbacks are fanned out on the shared
executor (:func:`repro.parallel.submit`) so one driver can re-send over many
slow links concurrently.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, Iterable, List, Optional

from repro import parallel
from repro.clock import Clock

__all__ = ["DeliveryFuture", "RetryScheduler", "TimerHandle", "wait_all"]

#: How long (wall seconds) a driver waits for other threads to make progress
#: when it has nothing due and no deadline of its own to advance to.
_IDLE_WAIT_SECONDS = 0.01

#: Upper bound on one wall-clock wait towards a deadline, so cancellations
#: and newly scheduled earlier timers are picked up promptly.
_MAX_WALL_WAIT_SECONDS = 0.05

_PENDING = "pending"
_FIRED = "fired"
_CANCELLED = "cancelled"


class TimerHandle:
    """One scheduled callback; cancellable until it fires."""

    __slots__ = ("deadline", "_scheduler", "_callback", "_state")

    def __init__(
        self, scheduler: "RetryScheduler", deadline: float, callback: Callable[[], None]
    ) -> None:
        self.deadline = deadline
        self._scheduler = scheduler
        self._callback = callback
        self._state = _PENDING

    def cancel(self) -> bool:
        """Withdraw the timer; returns False when it already fired."""
        return self._scheduler._cancel(self)

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def fired(self) -> bool:
        return self._state == _FIRED


class DeliveryFuture:
    """Completion handle for one scheduled delivery.

    Exactly one of ``complete``/``fail`` is ever called, by the retry state
    machine that owns the future.  ``result()`` drives the owning scheduler
    while waiting, so a thread blocked on its own delivery keeps the whole
    timer wheel moving (see module docstring).
    """

    def __init__(self, scheduler: Optional["RetryScheduler"] = None) -> None:
        self._scheduler = scheduler
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The failure, if the delivery failed (None while pending)."""
        return self._error

    def complete(self, result: Any) -> None:
        if self._event.is_set():
            return
        self._result = result
        self._event.set()
        if self._scheduler is not None:
            self._scheduler._notify()

    def fail(self, error: BaseException) -> None:
        if self._event.is_set():
            return
        self._error = error
        self._event.set()
        if self._scheduler is not None:
            self._scheduler._notify()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Wait for completion; raise the delivery error if it failed.

        With a scheduler attached the calling thread participates in driving
        timers; without one it simply blocks.  ``timeout`` is wall-clock
        seconds and exists as a safety net for tests; the budget is shared
        between driving and the final wait, not paid twice.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._scheduler is not None:
            self._scheduler.drive_until(self.done, timeout=timeout)
        remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
        if not self._event.wait(remaining):
            raise TimeoutError("delivery future was not completed in time")
        if self._error is not None:
            raise self._error
        return self._result

    def outcome(self, timeout: Optional[float] = None) -> Any:
        """Like :meth:`result` but returns the stored error instead of raising.

        Only delivery failures (ordinary exceptions) are returned as values;
        ``TimeoutError`` from the safety net and interrupts
        (``KeyboardInterrupt`` etc.) still propagate.
        """
        try:
            return self.result(timeout)
        except TimeoutError:
            raise
        except Exception as error:  # noqa: BLE001 - mirror of BatchResult
            return error


def wait_all(futures: Iterable[DeliveryFuture], timeout: Optional[float] = None) -> None:
    """Drive the scheduler(s) until every future is done (errors not raised).

    ``timeout`` bounds the whole wait, shared across the set, not per future.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    for future in futures:
        if future.done():
            continue
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        future.outcome(remaining)


class RetryScheduler:
    """A deadline heap of pending retries, driven by the threads that wait.

    There is no dedicated timer thread: any thread waiting on a
    :class:`DeliveryFuture` (or calling :meth:`drive_until`) pops due timers,
    fires them, and -- on a virtual clock -- advances time to the earliest
    pending deadline.  This keeps virtual-clock runs deterministic (time
    moves only when every live thread has nothing due) and means pool
    workers that must wait for a nested delivery do useful timer work
    instead of sleeping through a backoff.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._heap: List[tuple] = []  # (deadline, seq, TimerHandle)
        self._seq = itertools.count()
        self._pending = 0
        self.timers_scheduled = 0
        self.timers_fired = 0
        self.timers_cancelled = 0

    @property
    def clock(self) -> Clock:
        return self._clock

    # -- scheduling -------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Register ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule a timer in the past")
        with self._condition:
            handle = TimerHandle(self, self._clock.now() + delay, callback)
            heapq.heappush(self._heap, (handle.deadline, next(self._seq), handle))
            self._pending += 1
            self.timers_scheduled += 1
            self._condition.notify_all()
            return handle

    def _cancel(self, handle: TimerHandle) -> bool:
        with self._condition:
            if handle._state != _PENDING:
                return False
            handle._state = _CANCELLED
            self._pending -= 1
            self.timers_cancelled += 1
            # Compact eagerly: a lazily discarded entry would keep the
            # callback closure (payloads, futures, the channel) referenced
            # until some later drive happened to pop past it.
            self._heap = [
                entry for entry in self._heap if entry[2]._state == _PENDING
            ]
            heapq.heapify(self._heap)
            self._condition.notify_all()  # wake drivers waiting on its deadline
            return True

    def pending_timers(self) -> int:
        """Number of live (scheduled, not yet fired or cancelled) timers."""
        with self._lock:
            return self._pending

    def _notify(self) -> None:
        with self._condition:
            self._condition.notify_all()

    # -- driving ----------------------------------------------------------------

    def _pop_due_locked(self) -> List[TimerHandle]:
        """Claim every timer whose deadline has been reached."""
        now = self._clock.now()
        due: List[TimerHandle] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, handle = heapq.heappop(self._heap)
            if handle._state != _PENDING:
                continue  # cancelled; lazily discarded here
            handle._state = _FIRED
            self._pending -= 1
            self.timers_fired += 1
            due.append(handle)
        return due

    def _next_deadline_locked(self) -> Optional[float]:
        while self._heap and self._heap[0][2]._state != _PENDING:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def _fire(self, due: List[TimerHandle]) -> None:
        """Run claimed timers outside the lock.

        Virtual clock: inline and in deadline order, for determinism.  Wall
        clock: the earliest callback runs inline on the driving thread --
        claimed timers can only run here, so inline execution guarantees
        progress even when the shared executor is saturated by workers that
        are themselves blocked waiting on these timers -- and the rest fan
        out through the executor so concurrent resends overlap their link
        latency.  Completion is signalled through the futures the callbacks
        complete, so the driver need not join the submitted ones.
        """
        if self._clock.virtual or len(due) == 1:
            for handle in due:
                handle._callback()
            self._notify()
            return
        for handle in due[1:]:
            parallel.submit(handle._callback)
        due[0]._callback()
        self._notify()

    def fire_due(self) -> int:
        """Fire everything currently due; returns how many timers fired."""
        with self._condition:
            due = self._pop_due_locked()
        if due:
            self._fire(due)
        return len(due)

    def drive_until(
        self, predicate: Callable[[], bool], timeout: Optional[float] = None
    ) -> bool:
        """Fire timers / advance time until ``predicate()`` holds.

        Returns the final predicate value (False only on wall-clock
        ``timeout``, which is a safety net -- the protocol layers above have
        bounded retry budgets, so a well-formed wait always terminates).
        """
        deadline_wall = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline_wall is not None and time.monotonic() >= deadline_wall:
                return predicate()
            if self.fire_due():
                if predicate():
                    return True
                continue
            if predicate():
                return True
            with self._condition:
                # Re-check under the lock: a timer may have become due (or
                # the predicate may have flipped) between fire_due and here.
                due_deadline = self._next_deadline_locked()
                now = self._clock.now()
                if due_deadline is not None and due_deadline <= now:
                    continue
                if predicate():
                    return True
                if due_deadline is None:
                    # Nothing scheduled: some other thread owns the work that
                    # completes the predicate.  Wait for it to notify.
                    self._condition.wait(_IDLE_WAIT_SECONDS)
                elif self._clock.virtual:
                    self._clock.advance_to(due_deadline)
                else:
                    self._condition.wait(
                        min(due_deadline - now, _MAX_WALL_WAIT_SECONDS)
                    )

    # -- shutdown ---------------------------------------------------------------

    def cancel_all(self) -> int:
        """Cancel every pending timer (used by tests and channel teardown)."""
        with self._condition:
            handles = [entry[2] for entry in self._heap]
        cancelled = sum(1 for handle in handles if handle.cancel())
        return cancelled
