"""Remote method invocation over the simulated network.

In the paper's prototype, each trusted interceptor exports its
``B2BCoordinator`` "as a remote object that remote trusted interceptors make
invocations on to deliver messages" (Section 4.1).  This module provides that
remote-object machinery:

* a :class:`RemoteStub` exposes a local object's methods as a network
  endpoint (address + per-object registry of exported names);
* a :class:`RemoteProxy` is a client-side dynamic proxy whose attribute
  accesses become network sends (mirroring JBoss's dynamic proxies);
* a :class:`RemoteInvoker` owns the endpoint for one address (one
  organisation / server) and can host many exported objects.

Exceptions raised by the remote implementation are propagated to the caller
wrapped in :class:`RemoteInvocationError` with the original type preserved in
the payload.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RemoteInvocationError, UnknownEndpointError
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.network import BatchResult, Message, SimulatedNetwork
from repro.transport.scheduler import DeliveryFuture, wait_all

#: One entry of a batched remote call:
#: ``(remote_address, object_name, method, args, kwargs)``.
RemoteCall = Tuple[str, str, str, List[Any], Dict[str, Any]]

#: Operation name used for all RMI traffic on the network.
RMI_OPERATION = "rmi.invoke"


class RemoteStub:
    """Server-side wrapper exporting selected methods of a target object."""

    def __init__(self, target: Any, exported_methods: Optional[List[str]] = None) -> None:
        self._target = target
        if exported_methods is None:
            exported_methods = [
                name
                for name in dir(target)
                if not name.startswith("_") and callable(getattr(target, name))
            ]
        self._exported = set(exported_methods)

    @property
    def target(self) -> Any:
        return self._target

    def invoke(self, method: str, args: List[Any], kwargs: Dict[str, Any]) -> Any:
        """Invoke ``method`` on the wrapped target."""
        if method not in self._exported:
            raise RemoteInvocationError(
                f"method {method!r} is not exported by {type(self._target).__name__}"
            )
        return getattr(self._target, method)(*args, **kwargs)


class RemoteInvoker:
    """Hosts exported objects behind one network address."""

    def __init__(self, network: SimulatedNetwork, address: str) -> None:
        self._network = network
        self._address = address
        self._stubs: Dict[str, RemoteStub] = {}
        network.register(address, self._handle)

    @property
    def address(self) -> str:
        return self._address

    def export(self, object_name: str, target: Any, methods: Optional[List[str]] = None) -> None:
        """Export ``target`` under ``object_name`` at this invoker's address."""
        self._stubs[object_name] = RemoteStub(target, methods)

    def unexport(self, object_name: str) -> None:
        self._stubs.pop(object_name, None)

    def exported_names(self) -> List[str]:
        return sorted(self._stubs)

    def _handle(self, message: Message) -> Any:
        if message.operation != RMI_OPERATION:
            raise RemoteInvocationError(
                f"unsupported operation {message.operation!r} at {self._address!r}"
            )
        payload = message.payload
        object_name = payload["object"]
        try:
            stub = self._stubs.get(object_name)
            if stub is None:
                raise UnknownEndpointError(
                    f"no object {object_name!r} exported at {self._address!r}"
                )
            result = stub.invoke(payload["method"], payload.get("args", []), payload.get("kwargs", {}))
            return {"status": "ok", "result": result}
        except Exception as error:  # propagate remote failures to the caller
            return {
                "status": "error",
                "error_type": type(error).__name__,
                "error_message": str(error),
            }

    def proxy_for(
        self,
        remote_address: str,
        object_name: str,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "RemoteProxy":
        """Create a client-side proxy for an object exported elsewhere."""
        return RemoteProxy(
            network=self._network,
            source=self._address,
            destination=remote_address,
            object_name=object_name,
            retry_policy=retry_policy,
        )

    def call_batch(
        self,
        calls: List[RemoteCall],
        retry_policy: Optional[RetryPolicy] = None,
    ) -> List[Tuple[Any, Optional[Exception]]]:
        """Invoke many remote methods through one batched, retried fan-out.

        Returns one ``(result, error)`` pair per call, in order.  Shared
        argument content (pre-encoded protocol messages and tokens) is sized
        from its cached canonical form, so the fan-out never re-encodes the
        common body per recipient.  When the network runs a parallel
        dispatch strategy the remote invocations of one attempt execute
        concurrently, so every exported object reached through a batched
        call must be thread-safe.
        """
        return self.call_batch_async(calls, retry_policy).results()

    def call_batch_async(
        self,
        calls: List[RemoteCall],
        retry_policy: Optional[RetryPolicy] = None,
        run_id: Optional[str] = None,
    ) -> "RemoteCallBatch":
        """Start a batched remote fan-out; returns its completion handle.

        With a retry scheduler on the network the call returns as soon as
        the first delivery attempts have run: failed entries wait for their
        backoff as scheduler timers, not as sleeps, and resolve through
        per-entry futures.  Without a scheduler the batch executes eagerly
        (the classic blocking loop) and the returned handle is already
        complete -- callers can treat both cases uniformly through
        :meth:`RemoteCallBatch.results`.  ``run_id`` tags the fan-out's retry
        timers with the protocol run they serve, so aborting the run
        (``RetryScheduler.cancel_run``) withdraws them in one sweep.
        """
        channel = ReliableChannel(
            self._network, self._address, retry_policy, run_id=run_id
        )
        entries = [
            (
                address,
                RMI_OPERATION,
                {"object": object_name, "method": method, "args": args, "kwargs": kwargs},
            )
            for address, object_name, method, args, kwargs in calls
        ]
        if channel.scheduler is not None:
            return RemoteCallBatch(
                calls, futures=channel.send_batch_scheduled(entries), channel=channel
            )
        return RemoteCallBatch(calls, outcomes=channel.send_batch(entries))


class RemoteCallBatch:
    """Completion handle of one :meth:`RemoteInvoker.call_batch_async` fan-out."""

    def __init__(
        self,
        calls: List[RemoteCall],
        futures: Optional[List[DeliveryFuture]] = None,
        outcomes: Optional[List[BatchResult]] = None,
        channel: Optional[ReliableChannel] = None,
    ) -> None:
        self._calls = calls
        self._futures = futures
        self._outcomes = outcomes
        self._channel = channel

    def done(self) -> bool:
        if self._futures is None:
            return True
        return all(future.done() for future in self._futures)

    def cancel(self) -> None:
        """Withdraw the batch's pending retries; their futures fail "closed".

        Goes through :meth:`ReliableChannel.close`, whose closed flag is
        re-checked by every firing reattempt -- so even a retry wave that is
        mid-flight when the cancel lands schedules no further timers.  An
        eager (schedulerless) batch is already complete; cancelling it is a
        no-op.
        """
        if self._channel is not None:
            self._channel.close()

    def add_done_callback(self, callback: Callable[["RemoteCallBatch"], None]) -> None:
        """Invoke ``callback(self)`` once every entry of the batch resolved.

        The continuation hook of the async protocol engine: an eager
        (schedulerless) batch fires immediately on the calling thread, a
        scheduled batch fires on whichever thread resolves the last pending
        entry.  Same contract as :meth:`DeliveryFuture.add_done_callback` --
        do not block, trap your own exceptions.
        """
        if self._futures is None or not self._futures:
            callback(self)
            return
        remaining = {"count": len(self._futures)}
        lock = threading.Lock()

        def entry_done(_future: DeliveryFuture) -> None:
            with lock:
                remaining["count"] -= 1
                last = remaining["count"] == 0
            if last:
                callback(self)

        for future in self._futures:
            future.add_done_callback(entry_done)

    def results(self) -> List[Tuple[Any, Optional[Exception]]]:
        """Wait for every entry and unwrap replies into (result, error) pairs.

        Waiting drives the retry scheduler, so a caller blocked here fires
        other runs' due retries instead of idling.
        """
        if self._outcomes is None:
            wait_all(self._futures)
            self._outcomes = [future.outcome() for future in self._futures]
        results: List[Tuple[Any, Optional[Exception]]] = []
        for call, outcome in zip(self._calls, self._outcomes):
            if outcome.error is not None:
                results.append((None, outcome.error))
                continue
            reply = outcome.result
            if reply["status"] == "ok":
                results.append((reply["result"], None))
            else:
                address, object_name, method = call[0], call[1], call[2]
                results.append(
                    (
                        None,
                        RemoteInvocationError(
                            f"remote invocation of {object_name}.{method} at "
                            f"{address} failed: {reply['error_type']}: "
                            f"{reply['error_message']}"
                        ),
                    )
                )
        return results


class _RemoteMethod:
    """Callable bound to one remote method name."""

    def __init__(self, proxy: "RemoteProxy", method: str) -> None:
        self._proxy = proxy
        self._method = method

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._proxy.invoke(self._method, list(args), dict(kwargs))


class RemoteProxy:
    """Client-side dynamic proxy: attribute access yields remote calls."""

    def __init__(
        self,
        network: SimulatedNetwork,
        source: str,
        destination: str,
        object_name: str,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._channel = ReliableChannel(network, source, retry_policy)
        self._destination = destination
        self._object_name = object_name

    @property
    def destination(self) -> str:
        return self._destination

    @property
    def object_name(self) -> str:
        return self._object_name

    def invoke(self, method: str, args: List[Any], kwargs: Dict[str, Any]) -> Any:
        """Invoke ``method`` remotely, unwrapping errors raised remotely."""
        reply = self._channel.send(
            self._destination,
            RMI_OPERATION,
            {
                "object": self._object_name,
                "method": method,
                "args": args,
                "kwargs": kwargs,
            },
        )
        if reply["status"] == "ok":
            return reply["result"]
        raise RemoteInvocationError(
            f"remote invocation of {self._object_name}.{method} at "
            f"{self._destination} failed: {reply['error_type']}: {reply['error_message']}"
        )

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        return _RemoteMethod(self, name)
