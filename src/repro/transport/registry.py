"""Naming registry for remote objects.

Plays the role of the RMI registry / JNDI naming service in the paper's
prototype: services (coordinators, TTP services, containers) are bound under
URIs so remote parties can resolve and invoke them by name.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.errors import UnknownEndpointError


class ObjectRegistry:
    """Thread-safe mapping of names (URIs) to local service objects."""

    def __init__(self) -> None:
        self._bindings: Dict[str, Any] = {}
        self._lock = threading.RLock()

    def bind(self, name: str, obj: Any, replace: bool = False) -> None:
        """Bind ``obj`` under ``name``.

        Raises :class:`ValueError` if the name is taken and ``replace`` is
        false.
        """
        if not name:
            raise ValueError("cannot bind an empty name")
        with self._lock:
            if name in self._bindings and not replace:
                raise ValueError(f"name {name!r} is already bound")
            self._bindings[name] = obj

    def rebind(self, name: str, obj: Any) -> None:
        """Bind ``obj`` under ``name``, replacing any existing binding."""
        self.bind(name, obj, replace=True)

    def unbind(self, name: str) -> None:
        with self._lock:
            self._bindings.pop(name, None)

    def lookup(self, name: str) -> Any:
        """Resolve ``name`` or raise :class:`UnknownEndpointError`."""
        with self._lock:
            try:
                return self._bindings[name]
            except KeyError:
                raise UnknownEndpointError(f"nothing bound under {name!r}") from None

    def lookup_optional(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._bindings.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._bindings
