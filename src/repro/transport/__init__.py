"""Simulated network and remote-invocation substrate.

The paper's prototype runs over JBoss remote invocation (RMI) between
organisations' application servers.  The reproduction replaces the physical
network with an in-process simulator that exposes exactly the failure model
the protocols assume (Section 3.1, assumption 2): *eventual message delivery
with a bounded number of temporary network and computer related failures*.

* :mod:`repro.transport.network` -- endpoints, fault models, delivery,
  message statistics (used by the communication-overhead benchmarks).
* :mod:`repro.transport.delivery` -- retrying reliable channel.
* :mod:`repro.transport.scheduler` -- event-driven retry timers and
  delivery futures (backoffs overlap across concurrent protocol runs).
* :mod:`repro.transport.registry` -- naming registry of remote objects.
* :mod:`repro.transport.rmi` -- dynamic proxies for remote method invocation.
"""

from repro.transport.network import (
    Endpoint,
    FaultModel,
    Message,
    NetworkPartition,
    NetworkStatistics,
    SimulatedNetwork,
)
from repro.transport.delivery import ReliableChannel, RetryPolicy
from repro.transport.registry import ObjectRegistry
from repro.transport.rmi import RemoteCallBatch, RemoteInvoker, RemoteProxy, RemoteStub
from repro.transport.scheduler import DeliveryFuture, RetryScheduler, TimerHandle, wait_all

__all__ = [
    "DeliveryFuture",
    "Endpoint",
    "FaultModel",
    "Message",
    "NetworkPartition",
    "NetworkStatistics",
    "ObjectRegistry",
    "ReliableChannel",
    "RemoteCallBatch",
    "RemoteInvoker",
    "RemoteProxy",
    "RemoteStub",
    "RetryPolicy",
    "RetryScheduler",
    "SimulatedNetwork",
    "TimerHandle",
    "wait_all",
]
