"""Shared bounded message-capture recorder.

Both transports used to keep their own unbounded ``_trace`` list guarded by
a ``trace_enabled`` flag — copied code, and a memory leak on any long-lived
node that left tracing on.  This recorder is the single implementation: a
bounded deque (default cap 10k messages) that both ``SimulatedNetwork`` and
``WireNetwork`` append admitted messages to.  The networks keep their
public ``trace_enabled`` / ``trace`` / ``clear_trace()`` surface.
"""

from __future__ import annotations

from collections import deque
from typing import Any, List

__all__ = ["MessageTraceRecorder", "DEFAULT_TRACE_CAP"]

DEFAULT_TRACE_CAP = 10_000


class MessageTraceRecorder:
    """Bounded FIFO of captured messages (oldest dropped past the cap)."""

    def __init__(self, cap: int = DEFAULT_TRACE_CAP) -> None:
        self._messages: deque = deque(maxlen=max(1, int(cap)))

    def record(self, message: Any) -> None:
        self._messages.append(message)

    def messages(self) -> List[Any]:
        return list(self._messages)

    def clear(self) -> None:
        self._messages.clear()

    def set_cap(self, cap: int) -> None:
        self._messages = deque(self._messages, maxlen=max(1, int(cap)))

    @property
    def cap(self) -> int:
        return self._messages.maxlen or 0

    def __len__(self) -> int:
        return len(self._messages)
