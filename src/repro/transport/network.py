"""In-process simulated network.

Organisations register :class:`Endpoint` handlers under their address
(a URI).  Senders deliver :class:`Message` objects through
:meth:`SimulatedNetwork.send`; the network applies the configured faults
(message loss, duplication, latency, reordering, partitions) before
dispatching to the destination handler and accounting the traffic in
:class:`NetworkStatistics`.

Faults come from either the legacy :class:`FaultModel` (probabilistic
drop/latency/duplicate, preserved draw-for-draw for seeded tests) or a
declarative :class:`repro.faults.FaultPlan` -- both are evaluated by one
:class:`repro.faults.FaultInjector`, the same engine the wire transport
consults, so a seeded plan produces the identical fault sequence on either
transport.

The simulation is synchronous: ``send`` returns the handler's reply, which
keeps protocol code easy to follow while still exercising loss/duplication/
partition behaviour through explicit retry layers
(:mod:`repro.transport.delivery`).

Concurrency model: admission (fault decisions, statistics, trace) always
happens under one lock, in entry order, so traffic accounting is
deterministic and bit-identical regardless of how handlers are then
dispatched.  The dispatch phase is pluggable through a
:class:`DispatchStrategy`: :class:`SequentialDispatch` (the default) invokes
handlers one at a time in entry order, while :class:`ParallelDispatch` runs
the admitted handlers of one ``send_batch`` concurrently on a thread pool --
link-latency sleeps and GIL-releasing signature work then overlap across
destinations.  Handlers reached through a parallel network must be
thread-safe (every store and coordinator in this package is lock-protected).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import codec, parallel
from repro.clock import Clock, MonotonicCounter, SimulatedClock
from repro.errors import DeliveryError, UnknownEndpointError
from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import FaultDecision, FaultInjector, FaultPlan
from repro.observability import tracing as _tracing
from repro.observability.runtime import STATE as _OBS
from repro.transport.recorder import MessageTraceRecorder
from repro.transport.scheduler import RetryScheduler


#: ``Message.sizing`` values: how the byte size of a message was obtained.
SIZING_CANONICAL = "canonical"
SIZING_REPR = "repr"

#: Audit-log category used for transport-level events (circuit-breaker
#: transitions, load shedding, frame-decode failures) on both transports.
AUDIT_CATEGORY_TRANSPORT = "transport"


@dataclass
class Message:
    """A unit of network traffic.

    Attributes:
        sender / destination: endpoint addresses (URIs).
        operation: logical operation name at the destination (e.g.
            ``"deliver"`` on a coordinator).
        payload: arbitrary, canonically encodable content.
        message_id: unique id assigned by the network, used for duplicate
            suppression by receivers that need at-most-once behaviour.
    """

    sender: str
    destination: str
    operation: str
    payload: Any
    message_id: int = -1

    #: How this message was sized: ``"canonical"`` for the canonical codec
    #: encoding, ``"repr"`` for the lossy fallback (set by ``encoded_size``).
    sizing: str = SIZING_CANONICAL

    #: Ambient ``(trace_id, span_id)`` at construction time, when tracing is
    #: enabled.  Carried out-of-band: never part of the canonical envelope,
    #: so byte accounting is identical with tracing on or off.
    trace: Optional[Tuple[str, str]] = None

    def encoded_size(self) -> int:
        """Size of the message payload in canonical bytes, computed once.

        Payloads that cannot be canonically encoded (e.g. application objects
        passed through plain, non-NR invocations) are sized by their ``repr``
        so traffic accounting still works; such messages are marked with
        ``sizing == "repr"`` and surfaced in
        :attr:`NetworkStatistics.messages_sized_by_repr` so benchmark byte
        counts are honest about the fallback.  The computed size is cached on
        the message (messages are immutable once handed to the network).
        """
        cached = self.__dict__.get("_size")
        if cached is not None:
            return cached
        envelope = {
            "sender": self.sender,
            "destination": self.destination,
            "operation": self.operation,
            "payload": self.payload,
        }
        try:
            size = codec.encoded_size(envelope)
        except codec.CodecError:
            size = len(repr(envelope).encode("utf-8"))
            self.sizing = SIZING_REPR
        self.__dict__["_size"] = size
        return size


@dataclass
class BatchResult:
    """Outcome of one entry of a batched send: a reply or an error."""

    result: Any = None
    error: Optional[Exception] = None

    @property
    def delivered(self) -> bool:
        return self.error is None


#: An endpoint handler maps (operation, payload, message) to a reply payload.
EndpointHandler = Callable[[Message], Any]


@dataclass
class Endpoint:
    """A registered network endpoint."""

    address: str
    handler: EndpointHandler
    online: bool = True


@dataclass
class FaultModel:
    """Configurable failure injection.

    ``drop_probability`` and ``duplicate_probability`` apply per send attempt.
    ``max_consecutive_drops`` enforces the paper's *bounded* failure
    assumption: after that many consecutive injected drops on a link the next
    attempt is allowed through, guaranteeing eventual delivery for retrying
    senders.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    latency_seconds: float = 0.0
    jitter_seconds: float = 0.0
    max_consecutive_drops: int = 5
    seed: Optional[bytes] = None

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.latency_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("latency and jitter must be non-negative")
        if self.max_consecutive_drops < 0:
            raise ValueError("max_consecutive_drops must be non-negative")


@dataclass
class NetworkPartition:
    """A set of links that are currently severed."""

    severed_links: Set[Tuple[str, str]] = field(default_factory=set)

    def sever(self, a: str, b: str) -> None:
        """Cut connectivity between ``a`` and ``b`` (both directions)."""
        self.severed_links.add((a, b))
        self.severed_links.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b``."""
        self.severed_links.discard((a, b))
        self.severed_links.discard((b, a))

    def heal_all(self) -> None:
        self.severed_links.clear()

    def is_severed(self, a: str, b: str) -> bool:
        return (a, b) in self.severed_links


@dataclass
class NetworkStatistics:
    """Aggregate traffic counters used by the benchmarks."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    #: Messages an injected fault deferred to the end of their batch wave.
    messages_reordered: int = 0
    #: Inbound frames refused by wire-server backpressure (load shedding).
    messages_shed: int = 0
    #: Inbound frames that failed to decode (corrupt/oversized); each one
    #: cost the peer its connection.
    frame_decode_failures: int = 0
    #: Send attempts refused locally because the destination's circuit
    #: breaker was open (no socket touched, no attempt counter burned).
    circuit_open_refusals: int = 0
    bytes_delivered: int = 0
    #: Messages whose size came from the lossy ``repr`` fallback rather than
    #: the canonical encoding; nonzero means byte counters are approximate.
    messages_sized_by_repr: int = 0
    total_latency: float = 0.0
    per_operation: Dict[str, int] = field(default_factory=dict)
    #: Delivery effort per destination: every send *attempt* (including
    #: retries and attempts that were dropped) versus the attempts that were
    #: actually delivered.  The difference is the retry traffic a flaky link
    #: cost, which benchmarks and dispute reports surface as
    #: ``attempts - deliveries`` without needing access to every channel.
    attempts_per_destination: Dict[str, int] = field(default_factory=dict)
    deliveries_per_destination: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def _dict_delta(current: Dict[str, int], earlier: Dict[str, int]) -> Dict[str, int]:
        merged = dict(current)
        for key, count in earlier.items():
            merged[key] = merged.get(key, 0) - count
        return {key: value for key, value in merged.items() if value}

    def failed_attempts_per_destination(self) -> Dict[str, int]:
        """Attempts that did not result in delivery, per destination.

        Note this counts every undelivered attempt -- including a
        destination's *first* attempt when it too failed -- so for a
        never-delivered destination it reads ``max_attempts``, one more than
        the channel-level ``retries_made`` (which counts reattempts only).
        """
        return {
            destination: attempts
            - self.deliveries_per_destination.get(destination, 0)
            for destination, attempts in self.attempts_per_destination.items()
            if attempts != self.deliveries_per_destination.get(destination, 0)
        }

    def snapshot(self) -> "NetworkStatistics":
        """Return a copy of the current counters."""
        return NetworkStatistics(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
            messages_duplicated=self.messages_duplicated,
            messages_reordered=self.messages_reordered,
            messages_shed=self.messages_shed,
            frame_decode_failures=self.frame_decode_failures,
            circuit_open_refusals=self.circuit_open_refusals,
            bytes_delivered=self.bytes_delivered,
            messages_sized_by_repr=self.messages_sized_by_repr,
            total_latency=self.total_latency,
            per_operation=dict(self.per_operation),
            attempts_per_destination=dict(self.attempts_per_destination),
            deliveries_per_destination=dict(self.deliveries_per_destination),
        )

    def delta(self, earlier: "NetworkStatistics") -> "NetworkStatistics":
        """Return the difference between this snapshot and ``earlier``."""
        return NetworkStatistics(
            messages_sent=self.messages_sent - earlier.messages_sent,
            messages_delivered=self.messages_delivered - earlier.messages_delivered,
            messages_dropped=self.messages_dropped - earlier.messages_dropped,
            messages_duplicated=self.messages_duplicated - earlier.messages_duplicated,
            messages_reordered=self.messages_reordered - earlier.messages_reordered,
            messages_shed=self.messages_shed - earlier.messages_shed,
            frame_decode_failures=(
                self.frame_decode_failures - earlier.frame_decode_failures
            ),
            circuit_open_refusals=(
                self.circuit_open_refusals - earlier.circuit_open_refusals
            ),
            bytes_delivered=self.bytes_delivered - earlier.bytes_delivered,
            messages_sized_by_repr=(
                self.messages_sized_by_repr - earlier.messages_sized_by_repr
            ),
            total_latency=self.total_latency - earlier.total_latency,
            per_operation=self._dict_delta(self.per_operation, earlier.per_operation),
            attempts_per_destination=self._dict_delta(
                self.attempts_per_destination, earlier.attempts_per_destination
            ),
            deliveries_per_destination=self._dict_delta(
                self.deliveries_per_destination, earlier.deliveries_per_destination
            ),
        )


class DispatchStrategy:
    """How the admitted handlers of one ``send_batch`` are executed.

    Admission and accounting always run first, under the network lock, in
    entry order -- a strategy only chooses how the already-admitted handler
    invocations (each packaged as a self-contained thunk that records its own
    result or error) are scheduled.  Strategies must run every thunk exactly
    once and return only when all have finished.
    """

    name: str = ""

    def run(self, units: List[Callable[[], None]]) -> None:
        raise NotImplementedError


class SequentialDispatch(DispatchStrategy):
    """Default strategy: invoke handlers one at a time, in entry order.

    The reference semantics the parallel mode is property-tested against:
    traffic accounting is bit-identical to pre-strategy releases.  (When
    link latency is modelled, handler-observed virtual-clock times differ
    slightly from older releases, because latency is now paid per entry at
    dispatch instead of being summed during admission; statistics are
    unaffected.)
    """

    name = "sequential"

    def run(self, units: List[Callable[[], None]]) -> None:
        for unit in units:
            unit()


class ParallelDispatch(DispatchStrategy):
    """Dispatch admitted handlers concurrently on a thread pool.

    Per-destination link-latency sleeps and GIL-releasing crypto
    (``BN_mod_exp`` via ctypes) overlap across the fan-out, so an 8-party
    proposal round pays one round-trip latency instead of eight.  Nested
    fan-outs issued from a worker thread run inline sequentially (see
    :mod:`repro.parallel`), which keeps pool-exhaustion deadlocks impossible.

    ``max_workers=None`` (the default) draws threads from the process-wide
    shared executor; passing an explicit ``max_workers`` gives this strategy
    a private pool of that size (release it with :meth:`close` when the
    strategy is no longer needed).  Private-pool workers are marked exactly
    like shared-pool workers, so the nested-runs-inline rule holds for both.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._own_executor = None
        if max_workers is not None:
            from concurrent.futures import ThreadPoolExecutor

            self._own_executor = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="repro-dispatch",
                initializer=parallel.mark_worker_thread,
            )

    def run(self, units: List[Callable[[], None]]) -> None:
        if len(units) <= 1 or parallel.in_worker_thread():
            for unit in units:
                unit()
            return
        if self._own_executor is not None:
            futures = [self._own_executor.submit(unit) for unit in units]
            for future in futures:
                future.result()
            return
        # Units trap their own exceptions into the batch results, so run_all
        # outcomes only surface unexpected infrastructure failures.
        for _, error in parallel.run_all(units):
            if error is not None:
                raise error

    def close(self) -> None:
        """Shut down the private pool, if any (the shared executor is untouched)."""
        if self._own_executor is not None:
            self._own_executor.shutdown(wait=True)
            self._own_executor = None


class SimulatedNetwork:
    """The message fabric connecting organisations, TTPs and services."""

    def __init__(
        self,
        fault_model: Optional[FaultModel] = None,
        clock: Optional[Clock] = None,
        dispatch: Optional[DispatchStrategy] = None,
        retry_scheduler: Optional["RetryScheduler"] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if fault_model is not None and fault_plan is not None:
            raise ValueError("pass either fault_model= or fault_plan=, not both")
        self.fault_model = fault_model or FaultModel()
        self.fault_plan = fault_plan
        self.clock = clock or SimulatedClock()
        self.dispatch = dispatch or SequentialDispatch()
        #: When set, every :class:`repro.transport.delivery.ReliableChannel`
        #: created on this network defaults to event-driven (scheduled)
        #: retries instead of blocking backoff sleeps.
        self.retry_scheduler = retry_scheduler
        self.partition = NetworkPartition()
        self.statistics = NetworkStatistics()
        #: Optional per-peer breaker consulted by channels over this network
        #: (see :meth:`attach_circuit_breaker`).
        self.circuit_breaker: Optional[CircuitBreaker] = None
        self.audit_log = None
        self._endpoints: Dict[str, Endpoint] = {}
        if fault_plan is not None:
            self._injector = FaultInjector(plan=fault_plan)
        else:
            self._injector = FaultInjector(model=self.fault_model)
        self._message_counter = MonotonicCounter(1)
        self._lock = threading.RLock()
        self._recorder = MessageTraceRecorder()
        self.trace_enabled = False

    def set_dispatch(self, dispatch: DispatchStrategy) -> None:
        """Switch the handler-dispatch strategy for subsequent batches."""
        self.dispatch = dispatch

    def set_retry_scheduler(self, scheduler: Optional["RetryScheduler"]) -> None:
        """Attach (or detach, with ``None``) the event-driven retry scheduler.

        Only channels created after the switch pick the scheduler up; live
        channels keep the mode they were created with.
        """
        self.retry_scheduler = scheduler

    # -- endpoint management ---------------------------------------------------

    def register(self, address: str, handler: EndpointHandler) -> Endpoint:
        """Register (or replace) the handler for ``address``."""
        with self._lock:
            endpoint = Endpoint(address=address, handler=handler)
            self._endpoints[address] = endpoint
            return endpoint

    def unregister(self, address: str) -> None:
        with self._lock:
            self._endpoints.pop(address, None)

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise UnknownEndpointError(f"no endpoint registered at {address!r}") from None

    def addresses(self) -> List[str]:
        return sorted(self._endpoints)

    def set_online(self, address: str, online: bool) -> None:
        """Simulate a node crash (``online=False``) or recovery."""
        self.endpoint(address).online = online

    # -- fault plane / observability --------------------------------------------

    def attach_audit_log(self, audit_log) -> None:
        """Route transport-level events (breaker transitions, shedding) to
        ``audit_log`` under the ``"transport"`` category."""
        self.audit_log = audit_log

    def attach_circuit_breaker(self, breaker: CircuitBreaker) -> None:
        """Install a per-peer breaker; channels over this network consult it.

        The breaker is bound to this network's clock and its transitions are
        appended to the attached audit log (attach the log first if both are
        wanted).
        """
        breaker.bind(clock=self.clock, on_event=self._on_breaker_event)
        self.circuit_breaker = breaker

    def record_circuit_refusal(self, destination: str) -> None:
        """Count one locally-refused attempt (open circuit) for statistics."""
        with self._lock:
            self.statistics.circuit_open_refusals += 1

    def _on_breaker_event(
        self, destination: str, old_state: str, new_state: str, reason: str
    ) -> None:
        self._audit(
            destination,
            {
                "event": "circuit-breaker-transition",
                "from": old_state,
                "to": new_state,
                "reason": reason,
            },
        )

    def _audit(self, subject: str, details: Dict[str, Any]) -> None:
        log = self.audit_log
        if log is None:
            return
        try:
            log.append(
                category=AUDIT_CATEGORY_TRANSPORT, subject=subject, details=details
            )
        except Exception:  # noqa: BLE001 - observability must not break delivery
            pass

    # -- sending ----------------------------------------------------------------

    def _admit_locked(self, message: Message) -> Tuple[Endpoint, FaultDecision]:
        """Account and fault-check one message; caller must hold the lock.

        Returns ``(endpoint, decision)`` on admission; raises
        :class:`DeliveryError` / :class:`UnknownEndpointError` on loss.  All
        statistics -- including the duplicate counter -- are taken here, under
        the lock and before any handler runs, so accounting is identical for
        ``send`` and ``send_batch`` and independent of the dispatch strategy.
        The decision's latency is *paid* by the caller during dispatch,
        outside the lock, so concurrent deliveries of a parallel batch
        overlap their link latency instead of serialising it through
        admission.
        """
        sender, destination = message.sender, message.destination
        self.statistics.messages_sent += 1
        self.statistics.per_operation[message.operation] = (
            self.statistics.per_operation.get(message.operation, 0) + 1
        )
        self.statistics.attempts_per_destination[destination] = (
            self.statistics.attempts_per_destination.get(destination, 0) + 1
        )
        if self.trace_enabled:
            self._recorder.record(message)

        if self.partition.is_severed(sender, destination):
            self.statistics.messages_dropped += 1
            raise DeliveryError(f"link {sender!r} -> {destination!r} is partitioned")
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            self.statistics.messages_dropped += 1
            raise UnknownEndpointError(f"no endpoint registered at {destination!r}")
        if not endpoint.online:
            self.statistics.messages_dropped += 1
            raise DeliveryError(f"endpoint {destination!r} is offline")

        decision = self._injector.decide(sender, destination, message.operation)
        if decision.partitioned:
            self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"link {sender!r} -> {destination!r} severed by fault plan: "
                f"{decision.reason}"
            )
        if decision.drop:
            self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"message {message.message_id} from {sender!r} to "
                f"{destination!r} was lost"
            )
        if decision.corrupt:
            self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"message {message.message_id} from {sender!r} to "
                f"{destination!r} was corrupted in transit"
            )
        if decision.reset:
            self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"connection {sender!r} -> {destination!r} was reset by "
                "fault injection"
            )

        self.statistics.total_latency += decision.latency
        self.statistics.messages_delivered += 1
        self.statistics.deliveries_per_destination[destination] = (
            self.statistics.deliveries_per_destination.get(destination, 0) + 1
        )
        self.statistics.bytes_delivered += message.encoded_size()
        if message.sizing == SIZING_REPR:
            self.statistics.messages_sized_by_repr += 1

        if decision.duplicate:
            self.statistics.messages_duplicated += 1
        if decision.reorder:
            self.statistics.messages_reordered += 1
        return endpoint, decision

    def send(self, sender: str, destination: str, operation: str, payload: Any) -> Any:
        """Deliver a message and return the destination handler's reply.

        Raises :class:`DeliveryError` when the message is lost (injected drop,
        partitioned link or offline destination).  Callers needing guaranteed
        delivery wrap sends in a :class:`repro.transport.delivery.ReliableChannel`.
        """
        with self._lock:
            message = Message(
                sender=sender,
                destination=destination,
                operation=operation,
                payload=payload,
                message_id=self._message_counter.next(),
            )
            if _OBS.tracing is not None:
                message.trace = _tracing.current_ctx()
            endpoint, decision = self._admit_locked(message)

        # Dispatch outside the lock so handlers can themselves send messages.
        # The handler runs on the calling thread, where the message's span
        # context (if any) is already ambient -- no activation needed here.
        self.clock.sleep(decision.latency)
        if decision.duplicate:
            endpoint.handler(message)
        return endpoint.handler(message)

    def send_batch(
        self, sender: str, entries: List[Tuple[str, str, Any]]
    ) -> List[BatchResult]:
        """Deliver a fan-out of messages, accounting each exactly like ``send``.

        ``entries`` is a list of ``(destination, operation, payload)``
        triples.  Payloads that share pre-canonicalised content (tokens,
        proposal bodies) are sized from their cached encodings, so the shared
        body is never re-encoded per recipient; per-message statistics
        (``messages_sent``, ``bytes_delivered``, ``per_operation``) are
        identical to an equivalent sequence of individual sends.  Admission
        and accounting happen under one lock acquisition, in entry order;
        the admitted handlers are then executed outside the lock by the
        configured :class:`DispatchStrategy` (in entry order under
        :class:`SequentialDispatch`, concurrently under
        :class:`ParallelDispatch`).  Failures are returned per entry
        (:class:`BatchResult`) rather than raised, so one lost link never
        masks the remaining deliveries.
        """
        admitted: List[Tuple[int, Message, Endpoint, FaultDecision]] = []
        results: List[BatchResult] = [BatchResult() for _ in entries]
        trace_ctx = _tracing.current_ctx() if _OBS.tracing is not None else None
        with self._lock:
            for index, (destination, operation, payload) in enumerate(entries):
                message = Message(
                    sender=sender,
                    destination=destination,
                    operation=operation,
                    payload=payload,
                    message_id=self._message_counter.next(),
                    trace=trace_ctx,
                )
                try:
                    endpoint, decision = self._admit_locked(message)
                except (DeliveryError, UnknownEndpointError) as error:
                    results[index].error = error
                    continue
                admitted.append((index, message, endpoint, decision))

        # Injected reordering: flagged entries are deferred behind the rest
        # of the wave (a stable shuffle, so the fault sequence stays
        # deterministic).  Statistics were taken at admission in entry order
        # and are unaffected.
        if any(entry[3].reorder for entry in admitted):
            admitted = [e for e in admitted if not e[3].reorder] + [
                e for e in admitted if e[3].reorder
            ]

        def make_unit(
            index: int,
            message: Message,
            endpoint: Endpoint,
            decision: FaultDecision,
        ) -> Callable[[], None]:
            def invoke() -> Any:
                if decision.duplicate:
                    endpoint.handler(message)
                return endpoint.handler(message)

            def unit() -> None:
                try:
                    self.clock.sleep(decision.latency)
                    # Parallel dispatch may hop threads: restore the sender's
                    # span context around the handler so responder spans stay
                    # parented to the run.
                    results[index].result = _tracing.call_in_ctx(
                        message.trace, invoke
                    )
                except Exception as error:  # per-entry isolation, mirrors
                    results[index].error = error  # callers' per-peer semantics

            return unit

        self.dispatch.run([make_unit(*entry) for entry in admitted])
        return results

    # -- introspection -----------------------------------------------------------

    @property
    def trace(self) -> List[Message]:
        """Recorded messages (only populated when ``trace_enabled`` is set)."""
        return self._recorder.messages()

    def clear_trace(self) -> None:
        self._recorder.clear()

    def set_trace_capacity(self, cap: int) -> None:
        """Re-bound the message recorder (existing entries are kept FIFO)."""
        self._recorder.set_cap(cap)

    def reset_statistics(self) -> None:
        self.statistics = NetworkStatistics()
