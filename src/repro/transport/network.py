"""In-process simulated network.

Organisations register :class:`Endpoint` handlers under their address
(a URI).  Senders deliver :class:`Message` objects through
:meth:`SimulatedNetwork.send`; the network applies the configured
:class:`FaultModel` (message loss, duplication, latency, partitions) before
dispatching to the destination handler and accounting the traffic in
:class:`NetworkStatistics`.

The simulation is synchronous: ``send`` returns the handler's reply, which
keeps protocol code easy to follow while still exercising loss/duplication/
partition behaviour through explicit retry layers
(:mod:`repro.transport.delivery`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import codec
from repro.clock import Clock, MonotonicCounter, SimulatedClock
from repro.crypto.rng import SecureRandom
from repro.errors import DeliveryError, UnknownEndpointError


#: ``Message.sizing`` values: how the byte size of a message was obtained.
SIZING_CANONICAL = "canonical"
SIZING_REPR = "repr"


@dataclass
class Message:
    """A unit of network traffic.

    Attributes:
        sender / destination: endpoint addresses (URIs).
        operation: logical operation name at the destination (e.g.
            ``"deliver"`` on a coordinator).
        payload: arbitrary, canonically encodable content.
        message_id: unique id assigned by the network, used for duplicate
            suppression by receivers that need at-most-once behaviour.
    """

    sender: str
    destination: str
    operation: str
    payload: Any
    message_id: int = -1

    #: How this message was sized: ``"canonical"`` for the canonical codec
    #: encoding, ``"repr"`` for the lossy fallback (set by ``encoded_size``).
    sizing: str = SIZING_CANONICAL

    def encoded_size(self) -> int:
        """Size of the message payload in canonical bytes, computed once.

        Payloads that cannot be canonically encoded (e.g. application objects
        passed through plain, non-NR invocations) are sized by their ``repr``
        so traffic accounting still works; such messages are marked with
        ``sizing == "repr"`` and surfaced in
        :attr:`NetworkStatistics.messages_sized_by_repr` so benchmark byte
        counts are honest about the fallback.  The computed size is cached on
        the message (messages are immutable once handed to the network).
        """
        cached = self.__dict__.get("_size")
        if cached is not None:
            return cached
        envelope = {
            "sender": self.sender,
            "destination": self.destination,
            "operation": self.operation,
            "payload": self.payload,
        }
        try:
            size = codec.encoded_size(envelope)
        except codec.CodecError:
            size = len(repr(envelope).encode("utf-8"))
            self.sizing = SIZING_REPR
        self.__dict__["_size"] = size
        return size


@dataclass
class BatchResult:
    """Outcome of one entry of a batched send: a reply or an error."""

    result: Any = None
    error: Optional[Exception] = None

    @property
    def delivered(self) -> bool:
        return self.error is None


#: An endpoint handler maps (operation, payload, message) to a reply payload.
EndpointHandler = Callable[[Message], Any]


@dataclass
class Endpoint:
    """A registered network endpoint."""

    address: str
    handler: EndpointHandler
    online: bool = True


@dataclass
class FaultModel:
    """Configurable failure injection.

    ``drop_probability`` and ``duplicate_probability`` apply per send attempt.
    ``max_consecutive_drops`` enforces the paper's *bounded* failure
    assumption: after that many consecutive injected drops on a link the next
    attempt is allowed through, guaranteeing eventual delivery for retrying
    senders.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    latency_seconds: float = 0.0
    jitter_seconds: float = 0.0
    max_consecutive_drops: int = 5
    seed: Optional[bytes] = None

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.latency_seconds < 0 or self.jitter_seconds < 0:
            raise ValueError("latency and jitter must be non-negative")
        if self.max_consecutive_drops < 0:
            raise ValueError("max_consecutive_drops must be non-negative")


@dataclass
class NetworkPartition:
    """A set of links that are currently severed."""

    severed_links: Set[Tuple[str, str]] = field(default_factory=set)

    def sever(self, a: str, b: str) -> None:
        """Cut connectivity between ``a`` and ``b`` (both directions)."""
        self.severed_links.add((a, b))
        self.severed_links.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b``."""
        self.severed_links.discard((a, b))
        self.severed_links.discard((b, a))

    def heal_all(self) -> None:
        self.severed_links.clear()

    def is_severed(self, a: str, b: str) -> bool:
        return (a, b) in self.severed_links


@dataclass
class NetworkStatistics:
    """Aggregate traffic counters used by the benchmarks."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    bytes_delivered: int = 0
    #: Messages whose size came from the lossy ``repr`` fallback rather than
    #: the canonical encoding; nonzero means byte counters are approximate.
    messages_sized_by_repr: int = 0
    total_latency: float = 0.0
    per_operation: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "NetworkStatistics":
        """Return a copy of the current counters."""
        return NetworkStatistics(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
            messages_duplicated=self.messages_duplicated,
            bytes_delivered=self.bytes_delivered,
            messages_sized_by_repr=self.messages_sized_by_repr,
            total_latency=self.total_latency,
            per_operation=dict(self.per_operation),
        )

    def delta(self, earlier: "NetworkStatistics") -> "NetworkStatistics":
        """Return the difference between this snapshot and ``earlier``."""
        per_operation = dict(self.per_operation)
        for operation, count in earlier.per_operation.items():
            per_operation[operation] = per_operation.get(operation, 0) - count
        return NetworkStatistics(
            messages_sent=self.messages_sent - earlier.messages_sent,
            messages_delivered=self.messages_delivered - earlier.messages_delivered,
            messages_dropped=self.messages_dropped - earlier.messages_dropped,
            messages_duplicated=self.messages_duplicated - earlier.messages_duplicated,
            bytes_delivered=self.bytes_delivered - earlier.bytes_delivered,
            messages_sized_by_repr=(
                self.messages_sized_by_repr - earlier.messages_sized_by_repr
            ),
            total_latency=self.total_latency - earlier.total_latency,
            per_operation={k: v for k, v in per_operation.items() if v},
        )


class SimulatedNetwork:
    """The message fabric connecting organisations, TTPs and services."""

    def __init__(
        self,
        fault_model: Optional[FaultModel] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.fault_model = fault_model or FaultModel()
        self.clock = clock or SimulatedClock()
        self.partition = NetworkPartition()
        self.statistics = NetworkStatistics()
        self._endpoints: Dict[str, Endpoint] = {}
        self._rng = SecureRandom(self.fault_model.seed)
        self._message_counter = MonotonicCounter(1)
        self._consecutive_drops: Dict[Tuple[str, str], int] = {}
        self._lock = threading.RLock()
        self._trace: List[Message] = []
        self.trace_enabled = False

    # -- endpoint management ---------------------------------------------------

    def register(self, address: str, handler: EndpointHandler) -> Endpoint:
        """Register (or replace) the handler for ``address``."""
        with self._lock:
            endpoint = Endpoint(address=address, handler=handler)
            self._endpoints[address] = endpoint
            return endpoint

    def unregister(self, address: str) -> None:
        with self._lock:
            self._endpoints.pop(address, None)

    def endpoint(self, address: str) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise UnknownEndpointError(f"no endpoint registered at {address!r}") from None

    def addresses(self) -> List[str]:
        return sorted(self._endpoints)

    def set_online(self, address: str, online: bool) -> None:
        """Simulate a node crash (``online=False``) or recovery."""
        self.endpoint(address).online = online

    # -- fault decisions -------------------------------------------------------

    def _should_drop(self, link: Tuple[str, str]) -> bool:
        model = self.fault_model
        if model.drop_probability <= 0.0:
            return False
        consecutive = self._consecutive_drops.get(link, 0)
        if consecutive >= model.max_consecutive_drops:
            self._consecutive_drops[link] = 0
            return False
        roll = self._rng.random_int_below(1_000_000) / 1_000_000.0
        if roll < model.drop_probability:
            self._consecutive_drops[link] = consecutive + 1
            return True
        self._consecutive_drops[link] = 0
        return False

    def _should_duplicate(self) -> bool:
        model = self.fault_model
        if model.duplicate_probability <= 0.0:
            return False
        roll = self._rng.random_int_below(1_000_000) / 1_000_000.0
        return roll < model.duplicate_probability

    def _latency(self) -> float:
        model = self.fault_model
        latency = model.latency_seconds
        if model.jitter_seconds > 0:
            jitter = self._rng.random_int_below(1_000_000) / 1_000_000.0
            latency += jitter * model.jitter_seconds
        return latency

    # -- sending ----------------------------------------------------------------

    def _admit_locked(self, message: Message) -> Tuple[Endpoint, bool]:
        """Account and fault-check one message; caller must hold the lock.

        Returns ``(endpoint, duplicate)`` on admission; raises
        :class:`DeliveryError` / :class:`UnknownEndpointError` on loss.
        """
        sender, destination = message.sender, message.destination
        self.statistics.messages_sent += 1
        self.statistics.per_operation[message.operation] = (
            self.statistics.per_operation.get(message.operation, 0) + 1
        )
        if self.trace_enabled:
            self._trace.append(message)

        link = (sender, destination)
        if self.partition.is_severed(sender, destination):
            self.statistics.messages_dropped += 1
            raise DeliveryError(f"link {sender!r} -> {destination!r} is partitioned")
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            self.statistics.messages_dropped += 1
            raise UnknownEndpointError(f"no endpoint registered at {destination!r}")
        if not endpoint.online:
            self.statistics.messages_dropped += 1
            raise DeliveryError(f"endpoint {destination!r} is offline")
        if self._should_drop(link):
            self.statistics.messages_dropped += 1
            raise DeliveryError(
                f"message {message.message_id} from {sender!r} to "
                f"{destination!r} was lost"
            )

        latency = self._latency()
        self.clock.sleep(latency)
        self.statistics.total_latency += latency
        self.statistics.messages_delivered += 1
        self.statistics.bytes_delivered += message.encoded_size()
        if message.sizing == SIZING_REPR:
            self.statistics.messages_sized_by_repr += 1

        return endpoint, self._should_duplicate()

    def send(self, sender: str, destination: str, operation: str, payload: Any) -> Any:
        """Deliver a message and return the destination handler's reply.

        Raises :class:`DeliveryError` when the message is lost (injected drop,
        partitioned link or offline destination).  Callers needing guaranteed
        delivery wrap sends in a :class:`repro.transport.delivery.ReliableChannel`.
        """
        with self._lock:
            message = Message(
                sender=sender,
                destination=destination,
                operation=operation,
                payload=payload,
                message_id=self._message_counter.next(),
            )
            endpoint, duplicate = self._admit_locked(message)

        # Dispatch outside the lock so handlers can themselves send messages.
        if duplicate:
            with self._lock:
                self.statistics.messages_duplicated += 1
            endpoint.handler(message)
        return endpoint.handler(message)

    def send_batch(
        self, sender: str, entries: List[Tuple[str, str, Any]]
    ) -> List[BatchResult]:
        """Deliver a fan-out of messages, accounting each exactly like ``send``.

        ``entries`` is a list of ``(destination, operation, payload)``
        triples.  Payloads that share pre-canonicalised content (tokens,
        proposal bodies) are sized from their cached encodings, so the shared
        body is never re-encoded per recipient; per-message statistics
        (``messages_sent``, ``bytes_delivered``, ``per_operation``) are
        identical to an equivalent sequence of individual sends.  Admission
        and accounting happen under one lock acquisition; handlers are then
        dispatched outside the lock in entry order.  Failures are returned
        per entry (:class:`BatchResult`) rather than raised, so one lost link
        never masks the remaining deliveries.
        """
        admitted: List[Tuple[int, Message, Endpoint, bool]] = []
        results: List[BatchResult] = [BatchResult() for _ in entries]
        with self._lock:
            for index, (destination, operation, payload) in enumerate(entries):
                message = Message(
                    sender=sender,
                    destination=destination,
                    operation=operation,
                    payload=payload,
                    message_id=self._message_counter.next(),
                )
                try:
                    endpoint, duplicate = self._admit_locked(message)
                except (DeliveryError, UnknownEndpointError) as error:
                    results[index].error = error
                    continue
                if duplicate:
                    self.statistics.messages_duplicated += 1
                admitted.append((index, message, endpoint, duplicate))

        for index, message, endpoint, duplicate in admitted:
            try:
                if duplicate:
                    endpoint.handler(message)
                results[index].result = endpoint.handler(message)
            except Exception as error:  # per-entry isolation, mirrors callers'
                results[index].error = error  # per-peer try/except semantics
        return results

    # -- introspection -----------------------------------------------------------

    @property
    def trace(self) -> List[Message]:
        """Recorded messages (only populated when ``trace_enabled`` is set)."""
        return list(self._trace)

    def clear_trace(self) -> None:
        self._trace.clear()

    def reset_statistics(self) -> None:
        self.statistics = NetworkStatistics()
