"""Invocations and interceptor chains.

The central mechanism of the paper's implementation: "An application-level
invocation passes through a chain of interceptors, each interceptor
completing some task before passing the invocation to the next interceptor in
the chain."  A JBoss interceptor's ``invoke`` operation "takes an Invocation
object as a parameter ... the interceptor then passes the Invocation to the
next interceptor in the chain by calling that interceptor's invoke
operation."  (Section 4 / 4.2.)

:class:`Interceptor` implementations receive the :class:`Invocation` and a
``next_interceptor`` callable.  Calling ``next_interceptor(invocation)`` runs
the remainder of the chain (ending at the component's business method on the
server side, or at the transport step on the client side); not calling it
short-circuits the invocation -- which is exactly how the client-side NR
interceptor takes control to run the non-repudiation protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import InterceptorError


@dataclass
class Invocation:
    """Encapsulation of one application-level invocation.

    Mirrors the JBoss ``Invocation`` object: the target component, the
    method, its arguments and a mutable context that interceptors use to
    propagate information (security principals, protocol messages,
    transaction ids...).
    """

    component: str
    method: str
    args: List[Any] = field(default_factory=list)
    kwargs: Dict[str, Any] = field(default_factory=dict)
    context: Dict[str, Any] = field(default_factory=dict)
    caller: str = ""

    def copy(self) -> "Invocation":
        """Return a shallow copy (used when an interceptor rewrites arguments)."""
        return Invocation(
            component=self.component,
            method=self.method,
            args=list(self.args),
            kwargs=dict(self.kwargs),
            context=dict(self.context),
            caller=self.caller,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "method": self.method,
            "args": list(self.args),
            "kwargs": dict(self.kwargs),
            "context": dict(self.context),
            "caller": self.caller,
        }


@dataclass
class InvocationResult:
    """Outcome of an invocation as it travels back down the chain."""

    value: Any = None
    exception: Optional[str] = None
    exception_type: Optional[str] = None
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.exception is None

    def unwrap(self) -> Any:
        """Return the value or re-raise the failure as :class:`InterceptorError`."""
        if self.succeeded:
            return self.value
        raise InterceptorError(
            f"invocation failed remotely: {self.exception_type}: {self.exception}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "exception": self.exception,
            "exception_type": self.exception_type,
            "context": dict(self.context),
        }


#: Signature of "the rest of the chain" handed to each interceptor.
NextInterceptor = Callable[[Invocation], InvocationResult]


class Interceptor:
    """Base class for container interceptors."""

    #: name used in deployment descriptors to request this interceptor
    name: str = "interceptor"

    def invoke(self, invocation: Invocation, next_interceptor: NextInterceptor) -> InvocationResult:
        """Process ``invocation``; call ``next_interceptor`` to continue."""
        return next_interceptor(invocation)


class InterceptorChain:
    """An ordered chain of interceptors terminating in a final handler.

    The final handler is the innermost step: on the server side it invokes
    the component's business method; on the client side it ships the
    invocation to the remote container.
    """

    def __init__(
        self,
        interceptors: Optional[List[Interceptor]] = None,
        final_handler: Optional[NextInterceptor] = None,
    ) -> None:
        self._interceptors: List[Interceptor] = list(interceptors or [])
        self._final_handler = final_handler

    @property
    def interceptors(self) -> List[Interceptor]:
        return list(self._interceptors)

    def add(self, interceptor: Interceptor, position: Optional[int] = None) -> None:
        """Append (or insert at ``position``) an interceptor."""
        if position is None:
            self._interceptors.append(interceptor)
        else:
            self._interceptors.insert(position, interceptor)

    def add_first(self, interceptor: Interceptor) -> None:
        """Insert at the head of the chain.

        The NR interceptors are installed first in the chain on the outgoing
        path so they see the request exactly as the client constructed it and
        the response exactly as it leaves the server (Section 4.2).
        """
        self.add(interceptor, position=0)

    def set_final_handler(self, handler: NextInterceptor) -> None:
        self._final_handler = handler

    def invoke(self, invocation: Invocation) -> InvocationResult:
        """Run ``invocation`` through the chain."""
        if self._final_handler is None:
            raise InterceptorError("interceptor chain has no final handler")

        def make_next(index: int) -> NextInterceptor:
            def call_next(inv: Invocation) -> InvocationResult:
                if index < len(self._interceptors):
                    interceptor = self._interceptors[index]
                    return interceptor.invoke(inv, make_next(index + 1))
                return self._final_handler(inv)

            return call_next

        return make_next(0)(invocation)


def business_method_handler(component: Any) -> NextInterceptor:
    """Final handler that calls the business method on ``component``.

    Exceptions raised by the business method are captured in the
    :class:`InvocationResult` so they can travel back through the chain (and
    across the simulated network) without losing the failure information.
    """

    def handler(invocation: Invocation) -> InvocationResult:
        try:
            value = component.invoke_business_method(
                invocation.method, invocation.args, invocation.kwargs
            )
            return InvocationResult(value=value, context=dict(invocation.context))
        except Exception as error:
            return InvocationResult(
                exception=str(error),
                exception_type=type(error).__name__,
                context=dict(invocation.context),
            )

    return handler
