"""Components and deployment descriptors.

A :class:`Component` is the EJB analogue: a plain Python object whose public
methods form its application interface.  A :class:`ComponentDescriptor` is
the deployment descriptor: it names the component, classifies it (session or
entity bean), and carries the configuration the paper puts in the EJB
deployment descriptor -- whether non-repudiation is required, which platform
and protocol to use for the ``B2BInvocationHandler``, whether the component
is a B2BObject, which validator components validate proposed updates, and
which application-interface methods roll up multiple operations into a single
coordination event (Section 4.2/4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import DeploymentError


class ComponentType(Enum):
    """Kinds of deployable components (mirrors session/entity EJBs)."""

    SESSION = "session"
    ENTITY = "entity"
    SERVICE = "service"


@dataclass
class ComponentDescriptor:
    """Deployment descriptor for a component.

    Attributes:
        name: JNDI-style name the component is bound under.
        component_type: session, entity or service.
        non_repudiation: whether invocations on this component must be
            non-repudiable (activates the server-side NR interceptor).
        nr_platform / nr_protocol: identify the ``B2BInvocationHandler``
            implementation and the non-repudiation protocol to execute, as in
            ``B2BInvocationHandler.getInstance("JBossJ2EE", "direct")``.
        b2b_object: whether the (entity) component's state is shared and must
            be coordinated as a B2BObject.
        validators: names of deployed validator components consulted before
            accepting a remote party's proposed update.
        rollup_methods: application-interface methods whose nested B2BObject
            operations are coordinated as a single event.
        interceptors: extra named container interceptors for this component.
        metadata: free-form descriptor entries.
    """

    name: str
    component_type: ComponentType = ComponentType.SESSION
    non_repudiation: bool = False
    nr_platform: str = "python"
    nr_protocol: str = "direct"
    b2b_object: bool = False
    validators: List[str] = field(default_factory=list)
    rollup_methods: List[str] = field(default_factory=list)
    interceptors: List[str] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise DeploymentError("component descriptor requires a name")
        if self.b2b_object and self.component_type is not ComponentType.ENTITY:
            raise DeploymentError(
                f"component {self.name!r}: only entity components can be B2BObjects"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "component_type": self.component_type.value,
            "non_repudiation": self.non_repudiation,
            "nr_platform": self.nr_platform,
            "nr_protocol": self.nr_protocol,
            "b2b_object": self.b2b_object,
            "validators": list(self.validators),
            "rollup_methods": list(self.rollup_methods),
            "interceptors": list(self.interceptors),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ComponentDescriptor":
        return cls(
            name=payload["name"],
            component_type=ComponentType(payload.get("component_type", "session")),
            non_repudiation=payload.get("non_repudiation", False),
            nr_platform=payload.get("nr_platform", "python"),
            nr_protocol=payload.get("nr_protocol", "direct"),
            b2b_object=payload.get("b2b_object", False),
            validators=list(payload.get("validators", [])),
            rollup_methods=list(payload.get("rollup_methods", [])),
            interceptors=list(payload.get("interceptors", [])),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass
class Component:
    """A deployed component: descriptor plus the application instance."""

    descriptor: ComponentDescriptor
    instance: Any

    @property
    def name(self) -> str:
        return self.descriptor.name

    def business_methods(self) -> List[str]:
        """Public callable attributes of the instance (the bean interface)."""
        return sorted(
            name
            for name in dir(self.instance)
            if not name.startswith("_") and callable(getattr(self.instance, name))
        )

    def invoke_business_method(
        self, method: str, args: Optional[List[Any]] = None, kwargs: Optional[Dict[str, Any]] = None
    ) -> Any:
        """Call a business method directly (bypassing the interceptor chain).

        The container uses this as the innermost step of the server-side
        chain; application code should go through the container so services
        (NR, access control, auditing) are applied.
        """
        if not hasattr(self.instance, method):
            raise DeploymentError(
                f"component {self.name!r} has no business method {method!r}"
            )
        target = getattr(self.instance, method)
        if not callable(target):
            raise DeploymentError(
                f"attribute {method!r} of component {self.name!r} is not callable"
            )
        return target(*(args or []), **(kwargs or {}))
