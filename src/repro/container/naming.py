"""JNDI-like naming context for deployed components and services.

Components, validators and middleware services (coordinators, controllers)
are bound under hierarchical names so application code and interceptors can
resolve them without holding direct references, mirroring how the paper's
beans locate validators and the coordinator service through the container.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from repro.errors import NoSuchComponentError


class NamingContext:
    """A hierarchical (``/``-separated) name to object mapping."""

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix.rstrip("/")
        self._bindings: Dict[str, Any] = {}
        self._lock = threading.RLock()

    def _full_name(self, name: str) -> str:
        name = name.strip("/")
        if not name:
            raise ValueError("cannot bind an empty name")
        if self._prefix:
            return f"{self._prefix}/{name}"
        return name

    def bind(self, name: str, obj: Any, replace: bool = False) -> str:
        """Bind ``obj`` under ``name`` and return the fully qualified name."""
        full = self._full_name(name)
        with self._lock:
            if full in self._bindings and not replace:
                raise ValueError(f"{full!r} is already bound")
            self._bindings[full] = obj
        return full

    def rebind(self, name: str, obj: Any) -> str:
        return self.bind(name, obj, replace=True)

    def unbind(self, name: str) -> None:
        full = self._full_name(name)
        with self._lock:
            self._bindings.pop(full, None)

    def lookup(self, name: str) -> Any:
        """Resolve ``name`` or raise :class:`NoSuchComponentError`."""
        full = self._full_name(name)
        with self._lock:
            if full in self._bindings:
                return self._bindings[full]
        raise NoSuchComponentError(f"nothing bound under {full!r}")

    def lookup_optional(self, name: str) -> Optional[Any]:
        try:
            return self.lookup(name)
        except NoSuchComponentError:
            return None

    def names(self, subcontext: str = "") -> List[str]:
        """List bound names, optionally restricted to a subcontext prefix."""
        prefix = self._full_name(subcontext) + "/" if subcontext else (
            self._prefix + "/" if self._prefix else ""
        )
        with self._lock:
            return sorted(name for name in self._bindings if name.startswith(prefix))

    def subcontext(self, name: str) -> "NamingContext":
        """Return a context view rooted at ``name`` sharing the same bindings."""
        child = NamingContext(self._full_name(name))
        child._bindings = self._bindings
        child._lock = self._lock
        return child
