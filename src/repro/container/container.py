"""The component container.

The container is the organisation's service-delivery platform: components
are deployed into it with a descriptor, every invocation runs through the
component's server-side interceptor chain, and the container can be exposed
on the simulated network so remote clients (other organisations) can invoke
deployed components through dynamic proxies -- exactly the structure of
Figures 6 and 7 in the paper.

Middleware extensions (such as the non-repudiation service) plug in through
*interceptor providers*: callables consulted at deployment time that may
contribute an interceptor for a component based on its descriptor, which is
how the JBoss prototype inserts the NR interceptor for beans whose deployment
descriptor requests non-repudiation.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.container.component import Component, ComponentDescriptor
from repro.container.interceptor import (
    Interceptor,
    InterceptorChain,
    Invocation,
    InvocationResult,
    business_method_handler,
)
from repro.container.naming import NamingContext
from repro.container.proxy import ClientProxy
from repro.errors import DeploymentError, NoSuchComponentError
from repro.transport.network import SimulatedNetwork
from repro.transport.rmi import RemoteInvoker

#: Consulted at deployment; may return an interceptor for the component.
InterceptorProvider = Callable[["Container", ComponentDescriptor], Optional[Interceptor]]

#: Name under which the container itself is exported for remote dispatch.
CONTAINER_OBJECT_NAME = "container"


class Container:
    """An application server hosting deployed components for one organisation."""

    def __init__(
        self,
        name: str,
        network: Optional[SimulatedNetwork] = None,
        address: Optional[str] = None,
    ) -> None:
        self.name = name
        self.naming = NamingContext()
        self._components: Dict[str, Component] = {}
        self._chains: Dict[str, InterceptorChain] = {}
        self._default_interceptors: List[Interceptor] = []
        self._named_interceptors: Dict[str, Interceptor] = {}
        self._interceptor_providers: List[InterceptorProvider] = []
        self._lock = threading.RLock()
        self._network = network
        self._address = address or f"urn:container:{name}"
        self._invoker: Optional[RemoteInvoker] = None
        if network is not None:
            self._invoker = RemoteInvoker(network, self._address)
            self._invoker.export(CONTAINER_OBJECT_NAME, self, methods=["dispatch"])

    # -- configuration ----------------------------------------------------------

    @property
    def address(self) -> str:
        """Network address of the container (where remote clients dispatch to)."""
        return self._address

    @property
    def network(self) -> Optional[SimulatedNetwork]:
        return self._network

    @property
    def invoker(self) -> Optional[RemoteInvoker]:
        """The RMI invoker hosting this container (for exporting extra services)."""
        return self._invoker

    def add_default_interceptor(self, interceptor: Interceptor) -> None:
        """Add an interceptor applied to every component deployed *after* this call."""
        self._default_interceptors.append(interceptor)

    def register_interceptor(self, name: str, interceptor: Interceptor) -> None:
        """Register a named interceptor that descriptors can request."""
        self._named_interceptors[name] = interceptor

    def add_interceptor_provider(self, provider: InterceptorProvider) -> None:
        """Register a provider consulted for every subsequent deployment."""
        self._interceptor_providers.append(provider)

    # -- deployment ----------------------------------------------------------------

    def deploy(self, instance: Any, descriptor: ComponentDescriptor) -> Component:
        """Deploy ``instance`` under ``descriptor`` and build its server chain.

        The chain order is: provider-contributed interceptors (NR first, as
        required by Section 4.2), then descriptor-requested named
        interceptors, then the container's default interceptors, ending at
        the business method.
        """
        with self._lock:
            if descriptor.name in self._components:
                raise DeploymentError(
                    f"component {descriptor.name!r} is already deployed in {self.name!r}"
                )
            component = Component(descriptor=descriptor, instance=instance)

            chain = InterceptorChain(final_handler=business_method_handler(component))
            for interceptor in self._default_interceptors:
                chain.add(interceptor)
            for interceptor_name in descriptor.interceptors:
                named = self._named_interceptors.get(interceptor_name)
                if named is None:
                    raise DeploymentError(
                        f"component {descriptor.name!r} requests unknown "
                        f"interceptor {interceptor_name!r}"
                    )
                chain.add(named)
            # Providers contribute last but are inserted first so they sit at
            # the head of the chain (first on the incoming path).
            for provider in self._interceptor_providers:
                contributed = provider(self, descriptor)
                if contributed is not None:
                    chain.add_first(contributed)

            self._components[descriptor.name] = component
            self._chains[descriptor.name] = chain
            self.naming.bind(f"components/{descriptor.name}", component, replace=True)
            return component

    def undeploy(self, name: str) -> None:
        with self._lock:
            self._components.pop(name, None)
            self._chains.pop(name, None)
            self.naming.unbind(f"components/{name}")

    def component(self, name: str) -> Component:
        with self._lock:
            try:
                return self._components[name]
            except KeyError:
                raise NoSuchComponentError(
                    f"no component {name!r} deployed in container {self.name!r}"
                ) from None

    def has_component(self, name: str) -> bool:
        with self._lock:
            return name in self._components

    def component_names(self) -> List[str]:
        with self._lock:
            return sorted(self._components)

    def chain_for(self, name: str) -> InterceptorChain:
        """Return the server-side interceptor chain of a deployed component."""
        with self._lock:
            try:
                return self._chains[name]
            except KeyError:
                raise NoSuchComponentError(
                    f"no component {name!r} deployed in container {self.name!r}"
                ) from None

    # -- dispatch --------------------------------------------------------------------

    def dispatch(self, invocation: Invocation) -> InvocationResult:
        """Run an invocation through the target component's server-side chain."""
        chain = self.chain_for(invocation.component)
        return chain.invoke(invocation)

    # -- proxies ---------------------------------------------------------------------

    def create_local_proxy(
        self,
        component_name: str,
        client_interceptors: Optional[List[Interceptor]] = None,
        caller: str = "",
    ) -> ClientProxy:
        """Create a proxy for a client co-located with this container."""
        self.component(component_name)  # fail fast if not deployed
        return ClientProxy(
            component_name=component_name,
            dispatcher=self.dispatch,
            client_interceptors=client_interceptors,
            caller=caller or self.name,
        )

    def create_remote_proxy(
        self,
        client_invoker: RemoteInvoker,
        component_name: str,
        client_interceptors: Optional[List[Interceptor]] = None,
        caller: str = "",
    ) -> ClientProxy:
        """Create a proxy used by a remote client hosted on ``client_invoker``.

        The proxy's final handler ships the invocation across the simulated
        network to this container's ``dispatch`` method, mirroring the
        server-generated dynamic proxy of the JBoss prototype.
        """
        remote = client_invoker.proxy_for(self._address, CONTAINER_OBJECT_NAME)

        def remote_dispatch(invocation: Invocation) -> InvocationResult:
            return remote.invoke("dispatch", [invocation], {})

        return ClientProxy(
            component_name=component_name,
            dispatcher=remote_dispatch,
            client_interceptors=client_interceptors,
            caller=caller or client_invoker.address,
        )
