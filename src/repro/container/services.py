"""Standard container services implemented as interceptors.

The paper's Figure 6 shows the container invoking "appropriate low-level
services, such as persistence and transaction management, for each operation
on the bean", with non-repudiation added as one more such service.  This
module provides the ordinary (non-NR) services used by the examples and
benchmarks: audit logging, role-based access control and call statistics.
The NR interceptors themselves live in :mod:`repro.core.nr_interceptors`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.access.policy import AccessPolicy
from repro.access.roles import RoleManager
from repro.container.interceptor import (
    Interceptor,
    Invocation,
    InvocationResult,
    NextInterceptor,
)
from repro.errors import AccessDeniedError
from repro.persistence.audit_log import AuditLog


class LoggingInterceptor(Interceptor):
    """Writes an audit record for every invocation passing through."""

    name = "logging"

    def __init__(self, audit_log: AuditLog, category: str = "container.invocation") -> None:
        self._audit_log = audit_log
        self._category = category

    def invoke(self, invocation: Invocation, next_interceptor: NextInterceptor) -> InvocationResult:
        result = next_interceptor(invocation)
        self._audit_log.append(
            category=self._category,
            subject=invocation.component,
            details={
                "method": invocation.method,
                "caller": invocation.caller,
                "succeeded": result.succeeded,
            },
        )
        return result


class AccessControlInterceptor(Interceptor):
    """Enforces the organisation's local access policy on invocations.

    The invocation's ``caller`` is the subject; the component name is the
    resource; the method name is the operation.  Denied calls never reach the
    component and return a failed :class:`InvocationResult`.
    """

    name = "access-control"

    def __init__(self, policy: AccessPolicy, role_manager: RoleManager) -> None:
        self._policy = policy
        self._role_manager = role_manager

    def invoke(self, invocation: Invocation, next_interceptor: NextInterceptor) -> InvocationResult:
        try:
            self._policy.check(
                self._role_manager,
                subject=invocation.caller,
                resource=invocation.component,
                operation=invocation.method,
            )
        except AccessDeniedError as error:
            return InvocationResult(
                exception=str(error),
                exception_type=type(error).__name__,
                context=dict(invocation.context),
            )
        return next_interceptor(invocation)


@dataclass
class CallStatistics:
    """Counters collected by :class:`CallStatisticsInterceptor`."""

    calls: int = 0
    failures: int = 0
    per_method: Dict[str, int] = field(default_factory=dict)


class CallStatisticsInterceptor(Interceptor):
    """Counts invocations per component method (used by benchmarks)."""

    name = "call-statistics"

    def __init__(self) -> None:
        self._statistics: Dict[str, CallStatistics] = {}
        self._lock = threading.Lock()

    def invoke(self, invocation: Invocation, next_interceptor: NextInterceptor) -> InvocationResult:
        result = next_interceptor(invocation)
        with self._lock:
            stats = self._statistics.setdefault(invocation.component, CallStatistics())
            stats.calls += 1
            if not result.succeeded:
                stats.failures += 1
            stats.per_method[invocation.method] = (
                stats.per_method.get(invocation.method, 0) + 1
            )
        return result

    def statistics_for(self, component: str) -> Optional[CallStatistics]:
        with self._lock:
            return self._statistics.get(component)

    def total_calls(self) -> int:
        with self._lock:
            return sum(stats.calls for stats in self._statistics.values())
