"""Component container substrate (the J2EE / JBoss analogue).

The paper's prototype extends the JBoss application server: "an
application-level invocation passes through a chain of interceptors, each
interceptor completing some task before passing the invocation to the next
interceptor in the chain.  Existing services can be modified or new services
added to a container by inserting additional interceptors in the chain."
(Section 4.)  This package reproduces that mechanism in Python:

* :mod:`repro.container.component` -- components (the EJB analogue) and their
  deployment descriptors;
* :mod:`repro.container.interceptor` -- invocation objects and interceptor
  chains (client- and server-side);
* :mod:`repro.container.container` -- the container: deployment, server-side
  chains, dynamic client proxies, remote exposure;
* :mod:`repro.container.services` -- standard container services implemented
  as interceptors (logging, access control, call statistics);
* :mod:`repro.container.naming` -- the JNDI-like naming context.
"""

from repro.container.component import Component, ComponentDescriptor, ComponentType
from repro.container.container import Container
from repro.container.interceptor import (
    Interceptor,
    InterceptorChain,
    Invocation,
    InvocationResult,
)
from repro.container.naming import NamingContext
from repro.container.proxy import ClientProxy
from repro.container.services import (
    AccessControlInterceptor,
    CallStatisticsInterceptor,
    LoggingInterceptor,
)

__all__ = [
    "AccessControlInterceptor",
    "CallStatisticsInterceptor",
    "ClientProxy",
    "Component",
    "ComponentDescriptor",
    "ComponentType",
    "Container",
    "Interceptor",
    "InterceptorChain",
    "Invocation",
    "InvocationResult",
    "LoggingInterceptor",
    "NamingContext",
]
