"""Embedded-KV storage backend on stdlib ``sqlite3``.

The in-memory and file backends answer prefix queries by walking every
key, so any store keeping a derived index (the evidence store's per-run
index, the journal's run listing, the audit chain) has to rebuild that
index in memory when it opens -- O(all records) per open, per process.
:class:`SQLiteBackend` is the embedded-KV answer: one database file that
many organisations and many OS processes share, with ``scan(prefix)``
served as an *indexed range query* (``key >= prefix AND key < bound``
over the unique key index), so reopening a store costs O(queried).

Concurrency:

* within a process, one connection guarded by an ``RLock``
  (``check_same_thread=False``: protocol handlers store evidence from
  dispatch threads);
* across processes, WAL journal mode plus a busy timeout -- readers never
  block the single writer and vice versa, which is the sharing model the
  multi-process benchmarks exercise.

Durability: every ``put``/``delete`` commits its own transaction, so a
killed process can never leave a torn record -- SQLite's journal gives
the same record-or-nothing guarantee the crash-atomic ``FileBackend``
provides via fsync+rename.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import List, Optional, Tuple

from repro.errors import PersistenceError
from repro.persistence.storage import StorageBackend

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kv (
    seq   INTEGER PRIMARY KEY AUTOINCREMENT,
    key   TEXT NOT NULL UNIQUE,
    value BLOB NOT NULL
)
"""


def _scan_bound(prefix: str) -> Optional[str]:
    """Smallest string greater than every string with ``prefix``.

    Computed by incrementing the last incrementable character; ``None``
    means unbounded (empty prefix or a prefix of only ``chr(0x10FFFF)``).
    """
    for index in range(len(prefix) - 1, -1, -1):
        if ord(prefix[index]) < 0x10FFFF:
            return prefix[:index] + chr(ord(prefix[index]) + 1)
    return None


class SQLiteBackend(StorageBackend):
    """Shared embedded key/value store with indexed prefix scans.

    ``keys()`` preserves the interface's insertion-order contract through
    a monotonic ``seq`` column; overwriting an existing key keeps its
    original position, matching the dictionary semantics of
    :class:`~repro.persistence.storage.InMemoryBackend`.
    """

    supports_prefix_scan = True

    def __init__(self, path: str, *, busy_timeout_seconds: float = 30.0) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        try:
            self._connection = sqlite3.connect(
                path, timeout=busy_timeout_seconds, check_same_thread=False
            )
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute(_SCHEMA)
            self._connection.commit()
        except sqlite3.Error as error:
            raise PersistenceError(f"cannot open sqlite store {path!r}: {error}")

    # -- core interface ------------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise PersistenceError("storage values must be bytes")
        with self._lock:
            try:
                self._connection.execute(
                    "INSERT INTO kv(key, value) VALUES(?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                    (key, sqlite3.Binary(bytes(value))),
                )
                self._connection.commit()
            except sqlite3.Error as error:
                raise PersistenceError(f"sqlite put failed for {key!r}: {error}")

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM kv WHERE key = ?", (key,)
            ).fetchone()
        return bytes(row[0]) if row is not None else None

    def delete(self, key: str) -> None:
        with self._lock:
            self._connection.execute("DELETE FROM kv WHERE key = ?", (key,))
            self._connection.commit()

    def keys(self) -> List[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT key FROM kv ORDER BY seq"
            ).fetchall()
        return [row[0] for row in rows]

    # -- indexed prefix scans ------------------------------------------------

    def _range_clause(self, prefix: str) -> Tuple[str, Tuple[str, ...]]:
        bound = _scan_bound(prefix)
        if bound is None:
            return "key >= ?", (prefix,)
        return "key >= ? AND key < ?", (prefix, bound)

    def scan(self, prefix: str) -> List[Tuple[str, bytes]]:
        clause, params = self._range_clause(prefix)
        with self._lock:
            rows = self._connection.execute(
                f"SELECT key, value FROM kv WHERE {clause} ORDER BY key", params
            ).fetchall()
        return [(row[0], bytes(row[1])) for row in rows]

    def scan_keys(self, prefix: str) -> List[str]:
        clause, params = self._range_clause(prefix)
        with self._lock:
            rows = self._connection.execute(
                f"SELECT key FROM kv WHERE {clause} ORDER BY key", params
            ).fetchall()
        return [row[0] for row in rows]

    def scan_stats(self, prefix: str) -> Tuple[int, int]:
        clause, params = self._range_clause(prefix)
        with self._lock:
            count, total = self._connection.execute(
                f"SELECT COUNT(*), COALESCE(SUM(LENGTH(value)), 0) "
                f"FROM kv WHERE {clause}",
                params,
            ).fetchone()
        return int(count), int(total)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
