"""Append-only, hash-chained audit log.

"Audit ensures that evidence is available in case of dispute and to inform
future interactions" (Section 2).  Every record appended to the log is
included in a hash chain, so any later modification, reordering or deletion
of stored evidence is detectable by :meth:`AuditLog.verify_integrity`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import codec
from repro.clock import Clock, SystemClock
from repro.crypto.hashing import HashChain
from repro.errors import AuditLogError, AuditLogTamperedError
from repro.observability import tracing as _tracing
from repro.observability.runtime import STATE as _OBS
from repro.persistence.storage import InMemoryBackend, StorageBackend


@dataclass(frozen=True)
class AuditRecord:
    """One audit log entry."""

    index: int
    category: str
    subject: str
    timestamp: float
    details: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "category": self.category,
            "subject": self.subject,
            "timestamp": self.timestamp,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AuditRecord":
        return cls(
            index=payload["index"],
            category=payload["category"],
            subject=payload["subject"],
            timestamp=payload["timestamp"],
            details=dict(payload.get("details", {})),
        )


class AuditLog:
    """Hash-chained audit trail owned by one party (or TTP)."""

    def __init__(
        self,
        owner: str,
        backend: Optional[StorageBackend] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.owner = owner
        self._backend = backend or InMemoryBackend()
        self._clock = clock or SystemClock()
        self._chain = HashChain()
        self._count = 0
        self._lock = threading.RLock()
        self._replay_existing()

    def _key_for(self, index: int) -> str:
        return f"audit:{self.owner}:{index:012d}"

    def _replay_existing(self) -> None:
        """Rebuild the in-memory hash chain from a pre-populated backend.

        On a prefix-scan backend this is one range query: the zero-padded
        index in each key makes lexicographic scan order equal append
        order.  (The suffix check keeps an owner whose URI prefixes
        another owner's URI from absorbing that owner's records in a
        shared database.)  Plain backends replay by sequential gets.
        """
        index = 0
        if self._backend.supports_prefix_scan:
            prefix = f"audit:{self.owner}:"
            for key, raw in self._backend.scan(prefix):
                suffix = key[len(prefix):]
                if len(suffix) != 12 or not suffix.isdigit():
                    continue
                self._chain.append(raw)
                index += 1
            self._count = index
            return
        while True:
            raw = self._backend.get(self._key_for(index))
            if raw is None:
                break
            self._chain.append(raw)
            index += 1
        self._count = index

    def __len__(self) -> int:
        return self._count

    @property
    def head_digest(self) -> bytes:
        """Digest of the whole log so far; changes with every append."""
        return self._chain.head

    def append(
        self,
        category: str,
        subject: str,
        details: Optional[Mapping[str, Any]] = None,
    ) -> AuditRecord:
        """Append a record and return it.

        ``category`` classifies the event (e.g. ``"nr.invocation"``,
        ``"nr.sharing.decision"``); ``subject`` is normally the protocol run
        identifier so all evidence of one interaction can be retrieved
        together.

        When tracing is enabled and a span is active on the appending
        thread, the record's details gain ``trace_id``/``span_id`` so audit
        events can be joined against the exported span tree (explicit
        ``trace_id``/``span_id`` keys in ``details`` win).
        """
        if not category:
            raise AuditLogError("audit record category must not be empty")
        details = dict(details or {})
        if _OBS.tracing is not None and "trace_id" not in details:
            ctx = _tracing.current_ctx()
            if ctx is not None:
                details["trace_id"], details["span_id"] = ctx
        with self._lock:
            record = AuditRecord(
                index=self._count,
                category=category,
                subject=subject,
                timestamp=self._clock.now(),
                details=details,
            )
            raw = codec.encode(record.to_dict())
            self._backend.put(self._key_for(record.index), raw)
            self._chain.append(raw)
            self._count += 1
            return record

    def record(self, index: int) -> AuditRecord:
        """Return the record at ``index``."""
        raw = self._backend.get(self._key_for(index))
        if raw is None:
            raise AuditLogError(f"no audit record at index {index}")
        return AuditRecord.from_dict(codec.decode(raw))

    def records(
        self,
        category: Optional[str] = None,
        subject: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[AuditRecord]:
        """Return records, optionally filtered by category, subject and/or
        the ``trace_id`` their details were stamped with at append time."""
        results = []
        for index in range(self._count):
            record = self.record(index)
            if category is not None and record.category != category:
                continue
            if subject is not None and record.subject != subject:
                continue
            if trace_id is not None and record.details.get("trace_id") != trace_id:
                continue
            results.append(record)
        return results

    def verify_integrity(self) -> bool:
        """Re-derive the hash chain from storage and compare to the live chain.

        Returns ``True`` when the stored records exactly reproduce the chain.
        """
        raw_records = []
        for index in range(self._count):
            raw = self._backend.get(self._key_for(index))
            if raw is None:
                return False
            raw_records.append(raw)
        return self._chain.verify(raw_records)

    def require_integrity(self) -> None:
        """Raise :class:`AuditLogTamperedError` if verification fails."""
        if not self.verify_integrity():
            raise AuditLogTamperedError(
                f"audit log of {self.owner!r} failed hash-chain verification"
            )
