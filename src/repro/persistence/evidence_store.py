"""Evidence store.

Trusted interceptors "have persistent storage for messages (or, more
precisely, evidence extracted from messages)" (assumption 3, Section 3.1).
The :class:`EvidenceStore` keeps evidence records indexed by protocol run so
that all tokens belonging to one interaction can be produced together during
dispute resolution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import codec
from repro.clock import Clock, SystemClock
from repro.errors import PersistenceError
from repro.persistence.storage import InMemoryBackend, StorageBackend


@dataclass(frozen=True)
class StoredEvidence:
    """A stored evidence record.

    ``token`` holds the serialised non-repudiation token (dictionary form of
    :class:`repro.core.evidence.EvidenceToken`); ``role`` records whether the
    owning party generated or received it, which matters when the record is
    later presented in a dispute.
    """

    run_id: str
    token_type: str
    role: str
    stored_at: float
    token: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "token_type": self.token_type,
            "role": self.role,
            "stored_at": self.stored_at,
            "token": dict(self.token),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StoredEvidence":
        return cls(
            run_id=payload["run_id"],
            token_type=payload["token_type"],
            role=payload["role"],
            stored_at=payload["stored_at"],
            token=dict(payload["token"]),
        )


class EvidenceStore:
    """Evidence records indexed by protocol run identifier.

    Dispute-time queries are index-backed: besides the per-run key index the
    store maintains a per-``(run, token_type)`` index (so
    :meth:`tokens_of_type` touches only matching records), a per-record size
    cache with a running total (so :meth:`storage_bytes` is O(1) and never
    re-reads the backend) and a decoded-record memo (so repeated
    :meth:`evidence_for_run` calls decode each record at most once per
    process).  All indexes are derived state: they are rebuilt from the
    backend on construction and maintained incrementally by :meth:`store`.

    On a backend advertising ``supports_prefix_scan`` (the embedded-KV
    SQLite backend) the in-memory indexes are not built at all: opening
    the store reads *nothing*, and every query is an indexed backend
    range scan over the key layout
    ``evidence:{owner}:{run}:{type}:{role}:{seq}`` -- so reopening costs
    O(queried) rather than O(all records), and many processes share one
    store without each paying a full rebuild.  Only the decoded-record
    memo survives in that mode, purely as a cache.
    """

    ROLE_GENERATED = "generated"
    ROLE_RECEIVED = "received"

    def __init__(
        self,
        owner: str,
        backend: Optional[StorageBackend] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.owner = owner
        self._backend = backend or InMemoryBackend()
        self._clock = clock or SystemClock()
        self._index: Dict[str, List[str]] = {}
        self._type_index: Dict[Tuple[str, str], List[str]] = {}
        self._sizes: Dict[str, int] = {}
        self._total_bytes = 0
        self._decoded: Dict[str, StoredEvidence] = {}
        self._lock = threading.RLock()
        # Scan-backed mode: the backend answers prefix queries natively, so
        # no derived state is rebuilt on open -- only per-run next-sequence
        # counters, primed lazily on the first store() touching a run.
        self._scan_backed = bool(self._backend.supports_prefix_scan)
        self._sequences: Dict[str, int] = {}
        if not self._scan_backed:
            self._rebuild_index()

    @staticmethod
    def _sequence_of(key: str) -> Optional[int]:
        """The storage-order sequence suffix of an evidence key, if parsable."""
        try:
            return int(key.rsplit(":", 1)[1])
        except (IndexError, ValueError):
            return None

    def _register_locked(
        self, key: str, record: StoredEvidence, size: int
    ) -> None:
        """Add one record to every derived index; caller must hold the lock."""
        self._index.setdefault(record.run_id, []).append(key)
        self._type_index.setdefault((record.run_id, record.token_type), []).append(key)
        self._sizes[key] = size
        self._total_bytes += size
        self._decoded[key] = record

    def _rebuild_index(self) -> None:
        """Recover the indexes from the backend.

        Backend ``keys()`` order is *insertion* order of that backend
        instance, which for a reopened store is not necessarily the original
        storage order (e.g. a file backend whose index was compacted, or a
        replicated backend filled out of order).  Records are therefore
        ordered per run by the monotonic sequence suffix baked into each key;
        keys with an unparsable suffix sort after the well-formed ones, in
        backend order.
        """
        per_run: Dict[str, List[Tuple[int, int, str, StoredEvidence, int]]] = {}
        for position, key in enumerate(self._backend.keys()):
            if not key.startswith("evidence:"):
                continue
            raw = self._backend.get(key)
            if raw is None:
                continue
            record = StoredEvidence.from_dict(codec.decode(raw))
            sequence = self._sequence_of(key)
            sort_key = (0, sequence) if sequence is not None else (1, position)
            per_run.setdefault(record.run_id, []).append(
                (sort_key[0], sort_key[1], key, record, len(raw))
            )
        with self._lock:
            for entries in per_run.values():
                for _, _, key, record, size in sorted(
                    entries, key=lambda entry: (entry[0], entry[1])
                ):
                    self._register_locked(key, record, size)

    def _key_for(self, run_id: str, token_type: str, role: str, sequence: int) -> str:
        return f"evidence:{self.owner}:{run_id}:{token_type}:{role}:{sequence}"

    def _owner_prefix(self) -> str:
        return f"evidence:{self.owner}:"

    def _run_prefix(self, run_id: str) -> str:
        return f"evidence:{self.owner}:{run_id}:"

    def _next_sequence_locked(self, run_id: str) -> int:
        """Next per-run sequence number; caller must hold the lock.

        In scan-backed mode the counter is primed from the backend the
        first time a run is touched (one key-only range scan); otherwise
        the in-memory per-run index carries it.
        """
        if not self._scan_backed:
            return len(self._index.get(run_id, []))
        next_sequence = self._sequences.get(run_id)
        if next_sequence is None:
            sequences = [
                self._sequence_of(key)
                for key in self._backend.scan_keys(self._run_prefix(run_id))
            ]
            next_sequence = (
                max((s for s in sequences if s is not None), default=-1) + 1
            )
        return next_sequence

    def _scan_records_locked(
        self, prefix: str, run_id: str, token_type: Optional[str] = None
    ) -> List[StoredEvidence]:
        """Range-scan records under ``prefix`` in storage order.

        Scan order is lexicographic by key, but the sequence suffix is an
        unpadded integer (``10`` sorts before ``2``), so records are
        re-ordered by the parsed suffix.  Decoded records are double-checked
        against ``run_id``/``token_type``: a run id that is a ``:``-joined
        prefix of another run id would otherwise leak that run's records
        into the scan.
        """
        entries = []
        for position, (key, raw) in enumerate(self._backend.scan(prefix)):
            record = self._decoded.get(key)
            if record is None:
                record = StoredEvidence.from_dict(codec.decode(raw))
                self._decoded[key] = record
            if record.run_id != run_id:
                continue
            if token_type is not None and record.token_type != token_type:
                continue
            sequence = self._sequence_of(key)
            sort_key = (0, sequence) if sequence is not None else (1, position)
            entries.append((sort_key, record))
        return [record for _, record in sorted(entries, key=lambda e: e[0])]

    def store(
        self,
        run_id: str,
        token_type: str,
        token: Any,
        role: str = ROLE_RECEIVED,
    ) -> StoredEvidence:
        """Persist one evidence token for ``run_id``.

        ``token`` is either the dictionary form of a token or a token object
        (anything exposing ``to_dict``).  Token objects that also carry their
        canonical encoding (``data_encoded``, e.g.
        :class:`repro.core.evidence.EvidenceToken`) are persisted by splicing
        that cached encoding into the stored record, so a token that is
        stored by several parties is canonically encoded only once.
        """
        if role not in (self.ROLE_GENERATED, self.ROLE_RECEIVED):
            raise PersistenceError(f"unknown evidence role {role!r}")
        to_dict = getattr(token, "to_dict", None)
        token_mapping = to_dict() if callable(to_dict) else dict(token)
        data_encoded = getattr(token, "data_encoded", None)
        with self._lock:
            record = StoredEvidence(
                run_id=run_id,
                token_type=token_type,
                role=role,
                stored_at=self._clock.now(),
                token=token_mapping,
            )
            payload = record.to_dict()
            if callable(data_encoded):
                payload["token"] = data_encoded()  # spliced pre-computed bytes
            sequence = self._next_sequence_locked(run_id)
            key = self._key_for(run_id, token_type, role, sequence)
            encoded = codec.encode(payload)
            self._backend.put(key, encoded)
            if self._scan_backed:
                self._sequences[run_id] = sequence + 1
                self._decoded[key] = record
            else:
                self._register_locked(key, record, len(encoded))
            return record

    def _record_for_locked(self, key: str) -> StoredEvidence:
        """Decoded record for ``key``, memoised; caller must hold the lock."""
        record = self._decoded.get(key)
        if record is None:
            raw = self._backend.get(key)
            if raw is None:
                raise PersistenceError(f"evidence record {key!r} disappeared")
            record = StoredEvidence.from_dict(codec.decode(raw))
            self._decoded[key] = record
        return record

    def evidence_for_run(self, run_id: str) -> List[StoredEvidence]:
        """Return every stored record for ``run_id`` in storage order.

        Records are served from the decoded-record memo; treat them (and
        their ``token`` mappings) as read-only.
        """
        with self._lock:
            if self._scan_backed:
                return self._scan_records_locked(self._run_prefix(run_id), run_id)
            return [
                self._record_for_locked(key) for key in self._index.get(run_id, [])
            ]

    def tokens_of_type(self, run_id: str, token_type: str) -> List[StoredEvidence]:
        """Return records of one token type for ``run_id``, in storage order.

        Served from the per-``(run, token_type)`` index: records of other
        types are neither read from the backend nor decoded.
        """
        with self._lock:
            if self._scan_backed:
                return self._scan_records_locked(
                    f"{self._run_prefix(run_id)}{token_type}:", run_id, token_type
                )
            return [
                self._record_for_locked(key)
                for key in self._type_index.get((run_id, token_type), [])
            ]

    def run_ids(self) -> List[str]:
        with self._lock:
            if self._scan_backed:
                prefix = self._owner_prefix()
                runs = {
                    key[len(prefix):].rsplit(":", 3)[0]
                    for key in self._backend.scan_keys(prefix)
                }
                return sorted(runs)
            return sorted(self._index)

    def total_records(self) -> int:
        with self._lock:
            if self._scan_backed:
                return self._backend.scan_stats(self._owner_prefix())[0]
            return sum(len(keys) for keys in self._index.values())

    def storage_bytes(self) -> int:
        """Total size of stored evidence in canonical bytes, in O(1).

        Used by the evidence-space-overhead benchmark (paper Section 6 names
        "the space overhead of evidence generated" as a cost dimension).
        Maintained as a running total from the per-record size cache, so no
        backend reads or re-encodes happen here.  In scan-backed mode the
        total is one backend aggregate query instead (SQL ``SUM`` over the
        owner's key range).
        """
        with self._lock:
            if self._scan_backed:
                return self._backend.scan_stats(self._owner_prefix())[1]
            return self._total_bytes
