"""Evidence store.

Trusted interceptors "have persistent storage for messages (or, more
precisely, evidence extracted from messages)" (assumption 3, Section 3.1).
The :class:`EvidenceStore` keeps evidence records indexed by protocol run so
that all tokens belonging to one interaction can be produced together during
dispute resolution.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro import codec
from repro.clock import Clock, SystemClock
from repro.errors import PersistenceError
from repro.persistence.storage import InMemoryBackend, StorageBackend


@dataclass(frozen=True)
class StoredEvidence:
    """A stored evidence record.

    ``token`` holds the serialised non-repudiation token (dictionary form of
    :class:`repro.core.evidence.EvidenceToken`); ``role`` records whether the
    owning party generated or received it, which matters when the record is
    later presented in a dispute.
    """

    run_id: str
    token_type: str
    role: str
    stored_at: float
    token: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "token_type": self.token_type,
            "role": self.role,
            "stored_at": self.stored_at,
            "token": dict(self.token),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StoredEvidence":
        return cls(
            run_id=payload["run_id"],
            token_type=payload["token_type"],
            role=payload["role"],
            stored_at=payload["stored_at"],
            token=dict(payload["token"]),
        )


class EvidenceStore:
    """Evidence records indexed by protocol run identifier."""

    ROLE_GENERATED = "generated"
    ROLE_RECEIVED = "received"

    def __init__(
        self,
        owner: str,
        backend: Optional[StorageBackend] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.owner = owner
        self._backend = backend or InMemoryBackend()
        self._clock = clock or SystemClock()
        self._index: Dict[str, List[str]] = {}
        self._lock = threading.RLock()
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        for key in self._backend.keys():
            if not key.startswith("evidence:"):
                continue
            raw = self._backend.get(key)
            if raw is None:
                continue
            record = StoredEvidence.from_dict(codec.decode(raw))
            self._index.setdefault(record.run_id, []).append(key)

    def _key_for(self, run_id: str, token_type: str, role: str, sequence: int) -> str:
        return f"evidence:{self.owner}:{run_id}:{token_type}:{role}:{sequence}"

    def store(
        self,
        run_id: str,
        token_type: str,
        token: Any,
        role: str = ROLE_RECEIVED,
    ) -> StoredEvidence:
        """Persist one evidence token for ``run_id``.

        ``token`` is either the dictionary form of a token or a token object
        (anything exposing ``to_dict``).  Token objects that also carry their
        canonical encoding (``data_encoded``, e.g.
        :class:`repro.core.evidence.EvidenceToken`) are persisted by splicing
        that cached encoding into the stored record, so a token that is
        stored by several parties is canonically encoded only once.
        """
        if role not in (self.ROLE_GENERATED, self.ROLE_RECEIVED):
            raise PersistenceError(f"unknown evidence role {role!r}")
        to_dict = getattr(token, "to_dict", None)
        token_mapping = to_dict() if callable(to_dict) else dict(token)
        data_encoded = getattr(token, "data_encoded", None)
        with self._lock:
            record = StoredEvidence(
                run_id=run_id,
                token_type=token_type,
                role=role,
                stored_at=self._clock.now(),
                token=token_mapping,
            )
            payload = record.to_dict()
            if callable(data_encoded):
                payload["token"] = data_encoded()  # spliced pre-computed bytes
            sequence = len(self._index.get(run_id, []))
            key = self._key_for(run_id, token_type, role, sequence)
            self._backend.put(key, codec.encode(payload))
            self._index.setdefault(run_id, []).append(key)
            return record

    def evidence_for_run(self, run_id: str) -> List[StoredEvidence]:
        """Return every stored record for ``run_id`` in storage order."""
        with self._lock:
            keys = list(self._index.get(run_id, []))
        records = []
        for key in keys:
            raw = self._backend.get(key)
            if raw is None:
                raise PersistenceError(f"evidence record {key!r} disappeared")
            records.append(StoredEvidence.from_dict(codec.decode(raw)))
        return records

    def tokens_of_type(self, run_id: str, token_type: str) -> List[StoredEvidence]:
        """Return records of one token type for ``run_id``."""
        return [
            record
            for record in self.evidence_for_run(run_id)
            if record.token_type == token_type
        ]

    def run_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._index)

    def total_records(self) -> int:
        with self._lock:
            return sum(len(keys) for keys in self._index.values())

    def storage_bytes(self) -> int:
        """Total size of stored evidence in canonical bytes.

        Used by the evidence-space-overhead benchmark (paper Section 6 names
        "the space overhead of evidence generated" as a cost dimension).
        """
        total = 0
        with self._lock:
            keys = [key for keys in self._index.values() for key in keys]
        for key in keys:
            raw = self._backend.get(key)
            if raw is not None:
                total += len(raw)
        return total
