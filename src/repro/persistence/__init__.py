"""Persistence substrate: evidence store, state store and audit log.

Section 3.5 requires persistence services "both to log non-repudiation
evidence and to store the state of invocation parameters/results and of
shared information", including "the mapping of the state digest to the
representation of state in the state store".

* :mod:`repro.persistence.storage` -- in-memory and file-backed key/value
  backends shared by the stores, plus the ``storage=`` profile selector
  (:class:`StorageProfile`) that provisions them consistently.
* :mod:`repro.persistence.sqlite_backend` -- embedded-KV backend with
  indexed prefix scans; many processes share one database file and
  stores reopen without rebuilding derived indexes.
* :mod:`repro.persistence.audit_log` -- append-only, hash-chained log with
  tamper detection.
* :mod:`repro.persistence.evidence_store` -- evidence records indexed by
  protocol run.
* :mod:`repro.persistence.state_store` -- digest -> state mapping.
* :mod:`repro.persistence.run_journal` -- write-ahead journal of in-flight
  coordination runs (crash recovery).
"""

from repro.persistence.audit_log import AuditLog, AuditRecord
from repro.persistence.evidence_store import EvidenceStore, StoredEvidence
from repro.persistence.run_journal import JournaledRun, RunJournal
from repro.persistence.sqlite_backend import SQLiteBackend
from repro.persistence.state_store import StateStore
from repro.persistence.storage import (
    FileBackend,
    InMemoryBackend,
    StorageBackend,
    StorageProfile,
)

__all__ = [
    "AuditLog",
    "AuditRecord",
    "EvidenceStore",
    "FileBackend",
    "InMemoryBackend",
    "JournaledRun",
    "RunJournal",
    "SQLiteBackend",
    "StateStore",
    "StorageBackend",
    "StorageProfile",
    "StoredEvidence",
]
