"""Write-ahead journal for coordination runs.

A crash mid-coordination must never silently lose a run: the proposer's
peers hold half-collected evidence and timers for a round that would
otherwise never settle.  The :class:`RunJournal` records each
:class:`~repro.core.sharing._CoordinationRun` phase transition *before its
side effects dispatch*, so a restarted interceptor can replay the journal
and either resume the run or deterministically abort it
(:meth:`Organisation.recover_runs`).

Three record kinds cover the run state machine:

* ``proposed`` -- written after the phase-1 proposal (and its origin
  evidence) is built but before the fan-out dispatches.  Carries the
  canonical proposal (spliced encode-once via :class:`repro.codec.Encoded`),
  the fan-out wave membership and the run kind.  A journal that ends here
  means the commit barrier was never passed: *no peer can have applied
  anything*, so recovery aborts the run and notifies the wave.
* ``committed`` -- written inside the commit barrier, after the run flipped
  to committed but before any outcome message leaves.  Carries everything
  needed to re-send the outcome fan-out verbatim (payload, attributes,
  recipients, the original per-recipient message ids so re-delivery
  deduplicates, and the signed ``NR_OUTCOME`` token).  A journal that ends
  here means peers may already hold the outcome, so recovery must *resume
  to completion* -- re-sending and re-applying -- never abort.
* ``settled`` -- written when the run resolves (completed, aborted or
  failed).  A settled run needs no recovery; :meth:`open_runs` skips it.

Records are keyed ``runjournal:{owner}:{run_id}:{phase}`` behind the
ordinary :class:`~repro.persistence.storage.StorageBackend` interface, so
the same backend factory that persists evidence across processes persists
run state (one durable write per phase transition, three per run).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro import codec
from repro.errors import PersistenceError
from repro.persistence.storage import InMemoryBackend, StorageBackend

PHASE_PROPOSED = "proposed"
PHASE_COMMITTED = "committed"
PHASE_SETTLED = "settled"

_PHASES = (PHASE_PROPOSED, PHASE_COMMITTED, PHASE_SETTLED)

#: Precedence when deriving a run's recovery phase from its records.
_PHASE_RANK = {phase: rank for rank, phase in enumerate(_PHASES)}


@dataclass(frozen=True)
class JournaledRun:
    """One run's journal, reduced to its furthest recorded phase.

    ``phase`` is the latest phase with a record; ``proposed``/``committed``/
    ``settled`` hold the decoded record payloads (``None`` where the run
    never reached that phase).
    """

    run_id: str
    phase: str
    proposed: Optional[Dict[str, Any]] = None
    committed: Optional[Dict[str, Any]] = None
    settled: Optional[Dict[str, Any]] = None

    @property
    def open(self) -> bool:
        """True while the run still needs recovery on restart."""
        return self.settled is None


class RunJournal:
    """Durable write-ahead record of in-flight coordination runs."""

    def __init__(self, owner: str, backend: Optional[StorageBackend] = None) -> None:
        self.owner = owner
        self._backend = backend or InMemoryBackend()
        self._lock = threading.RLock()

    # -- writing (one durable put per phase transition) ----------------------------

    def _key_for(self, run_id: str, phase: str) -> str:
        return f"runjournal:{self.owner}:{run_id}:{phase}"

    def _write(self, run_id: str, phase: str, record: Mapping[str, Any]) -> None:
        payload = {"run_id": run_id, "phase": phase, **record}
        with self._lock:
            self._backend.put(self._key_for(run_id, phase), codec.encode(payload))

    def record_proposed(
        self,
        run_id: str,
        *,
        kind: str,
        object_id: str,
        proposer: str,
        peers: List[str],
        proposal: Any,
        deadline: Optional[float] = None,
    ) -> None:
        """Journal a run's phase-1 intent before the proposal fan-out leaves.

        ``proposal`` should be the run's canonical :class:`~repro.codec.Encoded`
        proposal so the journal write splices the already-computed bytes.
        """
        self._write(
            run_id,
            PHASE_PROPOSED,
            {
                "kind": kind,
                "object_id": object_id,
                "proposer": proposer,
                "peers": list(peers),
                "proposal": proposal,
                "deadline": deadline,
            },
        )

    def record_committed(
        self,
        run_id: str,
        *,
        payload: Any,
        attributes: Mapping[str, Any],
        recipients: List[str],
        message_ids: Mapping[str, str],
        step: int,
        nr_outcome: Any,
        apply: Mapping[str, Any],
    ) -> None:
        """Journal the commit-barrier decision before any outcome message leaves.

        Everything a restarted proposer needs to re-dispatch the outcome wave
        verbatim rides in this record: the canonical outcome ``payload`` and
        message ``attributes`` (both spliced when pre-encoded), the
        ``recipients`` and their original per-recipient ``message_ids`` (so a
        resent outcome deduplicates at peers that already processed it), the
        signed ``nr_outcome`` token, and the declarative ``apply`` spec for
        the local state change.
        """
        encoded_token = getattr(nr_outcome, "data_encoded", None)
        self._write(
            run_id,
            PHASE_COMMITTED,
            {
                "payload": payload,
                "attributes": dict(attributes),
                "recipients": list(recipients),
                "message_ids": dict(message_ids),
                "step": step,
                "nr_outcome": encoded_token() if callable(encoded_token) else nr_outcome,
                "apply": dict(apply),
            },
        )

    def record_settled(
        self, run_id: str, *, agreed: bool, reason: str = ""
    ) -> None:
        """Journal that the run resolved; recovery will skip it from now on."""
        self._write(run_id, PHASE_SETTLED, {"agreed": agreed, "reason": reason})

    # -- reading (recovery replay) ---------------------------------------------------

    def _prefix(self) -> str:
        return f"runjournal:{self.owner}:"

    def all_runs(self) -> Dict[str, JournaledRun]:
        """Decode every journaled run, keyed by run id.

        On a prefix-scan backend (SQLite) this is one indexed range query
        over the owner's ``runjournal:`` keyspace; on plain backends it
        filters ``keys()`` as before.
        """
        prefix = self._prefix()
        per_run: Dict[str, Dict[str, Dict[str, Any]]] = {}
        with self._lock:
            if self._backend.supports_prefix_scan:
                records = self._backend.scan(prefix)
            else:
                records = (
                    (key, self._backend.get(key))
                    for key in self._backend.keys()
                    if key.startswith(prefix)
                )
            for key, raw in records:
                if raw is None:
                    continue
                try:
                    record = codec.decode(raw)
                except (codec.CodecError, ValueError) as error:
                    raise PersistenceError(
                        f"corrupt run-journal record {key!r}: {error}"
                    ) from error
                phase = record.get("phase")
                run_id = record.get("run_id")
                if phase not in _PHASE_RANK or not run_id:
                    raise PersistenceError(
                        f"run-journal record {key!r} has no valid phase/run id"
                    )
                per_run.setdefault(run_id, {})[phase] = record
        runs: Dict[str, JournaledRun] = {}
        for run_id, records in per_run.items():
            phase = max(records, key=lambda name: _PHASE_RANK[name])
            runs[run_id] = JournaledRun(
                run_id=run_id,
                phase=phase,
                proposed=records.get(PHASE_PROPOSED),
                committed=records.get(PHASE_COMMITTED),
                settled=records.get(PHASE_SETTLED),
            )
        return runs

    def run(self, run_id: str) -> Optional[JournaledRun]:
        return self.all_runs().get(run_id)

    def open_runs(self) -> List[JournaledRun]:
        """Runs with no settled record, ordered by run id (deterministic replay)."""
        return sorted(
            (run for run in self.all_runs().values() if run.open),
            key=lambda run: run.run_id,
        )

    # -- pruning ---------------------------------------------------------------------

    def forget(self, run_id: str) -> None:
        """Drop every record of one run (post-recovery or audit-driven GC)."""
        with self._lock:
            for phase in _PHASES:
                self._backend.delete(self._key_for(run_id, phase))

    def prune_settled(self) -> int:
        """Drop the records of every settled run; returns how many runs went."""
        settled = [run.run_id for run in self.all_runs().values() if not run.open]
        for run_id in settled:
            self.forget(run_id)
        return len(settled)
