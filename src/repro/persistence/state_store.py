"""State store mapping state digests to state representations.

"Non-repudiation evidence will include a signed secure digest of state that
is held in a state store.  Persistence services should support the mapping of
the state digest to the representation of state in the state store."
(Section 3.5.)  For shared information the store additionally keeps the
agreed version history so "a subsequent reconstruction of information state
is a state previously agreed by the organisations who share the information"
(Section 3.4) can be demonstrated.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import codec
from repro.crypto.hashing import secure_hash
from repro.errors import StateStoreError
from repro.persistence.storage import InMemoryBackend, StorageBackend


class StateStore:
    """Digest-addressed storage of state snapshots with per-object history."""

    def __init__(self, owner: str, backend: Optional[StorageBackend] = None) -> None:
        self.owner = owner
        self._backend = backend or InMemoryBackend()
        self._history: Dict[str, List[str]] = {}
        self._lock = threading.RLock()

    # -- digest-addressed snapshots -------------------------------------------

    def store_state(self, state: Any) -> bytes:
        """Store a snapshot of ``state`` and return its digest.

        The digest is computed over the canonical encoding of the state, so
        two parties that agree on a state value necessarily agree on its
        digest.
        """
        encoded = codec.encode(state)
        digest = secure_hash(encoded)
        with self._lock:
            self._backend.put(self._snapshot_key(digest), encoded)
        return digest

    def resolve_digest(self, digest: bytes) -> Any:
        """Return the state previously stored under ``digest``."""
        raw = self._backend.get(self._snapshot_key(digest))
        if raw is None:
            raise StateStoreError(
                f"state store of {self.owner!r} has no state for digest {digest.hex()}"
            )
        return codec.decode(raw)

    def has_digest(self, digest: bytes) -> bool:
        return self._backend.get(self._snapshot_key(digest)) is not None

    @staticmethod
    def digest_of(state: Any) -> bytes:
        """Compute the canonical digest of ``state`` without storing it."""
        return secure_hash(codec.encode(state))

    def _snapshot_key(self, digest: bytes) -> str:
        return f"state:{self.owner}:snapshot:{digest.hex()}"

    # -- per-object agreed history ---------------------------------------------

    def record_version(self, object_id: str, state: Any) -> Tuple[int, bytes]:
        """Record ``state`` as the next agreed version of ``object_id``.

        Returns ``(version_number, digest)``.
        """
        digest = self.store_state(state)
        with self._lock:
            history = self._history.setdefault(object_id, [])
            history.append(digest.hex())
            return len(history) - 1, digest

    def version_count(self, object_id: str) -> int:
        with self._lock:
            return len(self._history.get(object_id, []))

    def version_digest(self, object_id: str, version: int) -> bytes:
        with self._lock:
            history = self._history.get(object_id, [])
            if version < 0 or version >= len(history):
                raise StateStoreError(
                    f"{object_id!r} has no agreed version {version}"
                )
            return bytes.fromhex(history[version])

    def latest_digest(self, object_id: str) -> Optional[bytes]:
        with self._lock:
            history = self._history.get(object_id, [])
            if not history:
                return None
            return bytes.fromhex(history[-1])

    def state_at_version(self, object_id: str, version: int) -> Any:
        """Reconstruct the agreed state of ``object_id`` at ``version``."""
        return self.resolve_digest(self.version_digest(object_id, version))

    def is_agreed_state(self, object_id: str, state: Any) -> bool:
        """Return ``True`` if ``state`` matches any previously agreed version."""
        digest_hex = self.digest_of(state).hex()
        with self._lock:
            return digest_hex in self._history.get(object_id, [])

    def object_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._history)
